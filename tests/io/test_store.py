"""Tests for the on-disk JSONL result store (repro.io.store).

The load-bearing guarantees:

* a sweep killed mid-flight and resumed produces a result set bit-identical
  to an uninterrupted run, with the persisted pairs not re-executed,
* a truncated (partially written) trailing line is detected, dropped and the
  corresponding pair re-run,
* numpy scalars/arrays round-trip through store -> export.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.sweep import SweepTask
from repro.experiments import run_scenario
from repro.experiments.scenarios import ScenarioSpec
from repro.io.store import ResultStore, config_hash


def _task(key=("a", 1), params=None, repetition=0, seed=7):
    return SweepTask(key=key, params=dict(params or {"x": 1}), repetition=repetition, seed=seed)


def counting_task(task: SweepTask) -> dict:
    """Module-level task (picklable) that logs every execution to a file."""
    with open(task.params["log"], "a") as handle:
        handle.write(f"{task.key}:{task.repetition}\n")
    return {"value": task.params["x"] * 2, "n": task.params["x"]}


def _counting_spec(log_path) -> ScenarioSpec:
    return ScenarioSpec(
        name="counting",
        result_name="counting",
        description="counting scenario for store tests",
        task=counting_task,
        grid=lambda config: [
            (("cfg", x), {"x": x, "log": str(log_path)}) for x in (1, 2, 3)
        ],
        group_by=("n",),
        metrics=("value",),
    )


def _config(repetitions=2, seed=11):
    return SimpleNamespace(repetitions=repetitions, seed=seed, n_jobs=1)


class TestConfigHash:
    def test_stable_and_order_independent(self):
        a = config_hash(("k", 1), {"x": 1, "y": 2})
        b = config_hash(("k", 1), {"y": 2, "x": 1})
        assert a == b
        assert len(a) == 16

    def test_sensitive_to_key_and_params(self):
        base = config_hash(("k", 1), {"x": 1})
        assert config_hash(("k", 2), {"x": 1}) != base
        assert config_hash(("k", 1), {"x": 2}) != base


class TestAppendAndScan:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        task = _task()
        stored = store.append(
            "demo",
            key=task.key,
            params=task.params,
            repetition=task.repetition,
            seed=task.seed,
            record={"value": 3.5},
        )
        store.close()
        assert stored == {"value": 3.5}
        fresh = ResultStore(tmp_path)
        pair = (config_hash(task.key, task.params), 0)
        assert fresh.completed("demo") == {pair: {"value": 3.5}}
        assert fresh.records("demo") == [{"value": 3.5}]
        assert fresh.index()["demo"]["records"] == 1

    def test_numpy_round_trip_through_store_and_export(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = {
            "count": np.int64(4),
            "cost": np.float64(2.5),
            "flag": np.bool_(True),
            "series": np.asarray([1.0, 2.0]),
        }
        stored = store.append(
            "demo", key="k", params={}, repetition=0, seed=1, record=record
        )
        assert stored == {"count": 4, "cost": 2.5, "flag": True, "series": [1.0, 2.0]}
        paths = store.export("demo", tmp_path / "export")
        store.close()
        loaded = json.loads(paths["records_json"].read_text())
        assert loaded == [{"count": 4, "cost": 2.5, "flag": True, "series": [1.0, 2.0]}]
        csv_text = paths["records_csv"].read_text()
        assert "count" in csv_text and "2.5" in csv_text

    def test_invalid_scenario_name(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../escape")

    def test_two_writers_interleave_appends_safely(self, tmp_path):
        # The lock is held per append, not per handle lifetime, so two live
        # stores can interleave writes to the same scenario file.
        first = ResultStore(tmp_path)
        second = ResultStore(tmp_path)
        first.append("demo", key="k", params={}, repetition=0, seed=1, record={"v": 1})
        second.append("demo", key="k", params={}, repetition=1, seed=2, record={"v": 2})
        first.append("demo", key="k", params={}, repetition=2, seed=3, record={"v": 3})
        first.close()
        second.close()
        fresh = ResultStore(tmp_path)
        assert [r["v"] for r in fresh.records("demo")] == [1, 2, 3]
        assert not fresh.corruption("demo")

    def test_writer_does_not_clobber_records_from_a_finished_writer(self, tmp_path):
        # A store whose scan predates another writer's appends must not
        # truncate those records away when it starts writing.
        reader_then_writer = ResultStore(tmp_path)
        assert reader_then_writer.completed("demo") == {}  # cache a stale scan
        other = ResultStore(tmp_path)
        other.append("demo", key="k", params={}, repetition=0, seed=1, record={"v": 1})
        other.close()
        reader_then_writer.append(
            "demo", key="k", params={}, repetition=1, seed=2, record={"v": 2}
        )
        reader_then_writer.close()
        assert len(ResultStore(tmp_path).records("demo")) == 2


class TestTruncatedTail:
    def _populate(self, directory, entries=3):
        store = ResultStore(directory)
        for index in range(entries):
            store.append(
                "demo",
                key=("k", index),
                params={"x": index},
                repetition=0,
                seed=index,
                record={"value": index},
            )
        store.close()
        return directory / "demo.jsonl"

    def test_partial_last_line_detected_and_dropped(self, tmp_path):
        path = self._populate(tmp_path)
        full = path.read_bytes()
        lines = full.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        store = ResultStore(tmp_path)
        assert store.had_truncated_tail("demo")
        assert len(store.completed("demo")) == 2

    def test_append_repairs_truncated_file(self, tmp_path):
        path = self._populate(tmp_path)
        full = path.read_bytes()
        lines = full.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        store = ResultStore(tmp_path)
        store.append(
            "demo", key=("k", 2), params={"x": 2}, repetition=0, seed=2, record={"value": 2}
        )
        store.close()
        # The repaired file is byte-identical to the uninterrupted one.
        assert path.read_bytes() == full

    def test_garbage_line_treated_as_truncated(self, tmp_path):
        path = self._populate(tmp_path)
        with path.open("ab") as handle:
            handle.write(b"{not json}\n")
        store = ResultStore(tmp_path)
        assert store.had_truncated_tail("demo")
        assert len(store.completed("demo")) == 3


class TestLineIntegrity:
    def _populate(self, directory, entries=3):
        store = ResultStore(directory)
        for index in range(entries):
            store.append(
                "demo",
                key=("k", index),
                params={"x": index},
                repetition=0,
                seed=index,
                record={"value": index},
            )
        store.close()
        return directory / "demo.jsonl"

    def test_lines_carry_crc(self, tmp_path):
        path = self._populate(tmp_path, entries=1)
        parsed = json.loads(path.read_text())
        assert len(parsed["crc"]) == 8
        int(parsed["crc"], 16)  # 8-hex crc32

    def test_bit_flip_in_middle_line_is_skipped_and_reported(self, tmp_path):
        path = self._populate(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        # Tamper with the payload of line 2 while keeping it valid JSON: only
        # the CRC check can catch this.
        assert b'"value":1' in lines[1]
        lines[1] = lines[1].replace(b'"value":1', b'"value":7')
        path.write_bytes(b"".join(lines))
        store = ResultStore(tmp_path)
        assert [r["value"] for r in store.records("demo")] == [0, 2]
        (item,) = store.corruption("demo")
        assert item["line"] == 2 and not item["tail"]
        assert "CRC" in item["reason"]
        # Mid-file damage is not a truncated tail (valid data follows it).
        assert not store.had_truncated_tail("demo")

    def test_mid_file_garbage_is_not_truncated_by_appends(self, tmp_path):
        path = self._populate(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        garbled = b"\xff" * (len(lines[1]) - 1) + b"\n"
        path.write_bytes(lines[0] + garbled + lines[2])
        store = ResultStore(tmp_path)
        store.append(
            "demo", key=("k", 9), params={"x": 9}, repetition=0, seed=9, record={"value": 9}
        )
        store.close()
        # The corrupt line stays on disk (only tail garbage is repaired) and
        # readers keep skipping it.
        assert garbled in path.read_bytes()
        fresh = ResultStore(tmp_path)
        assert [r["value"] for r in fresh.records("demo")] == [0, 2, 9]
        assert len(fresh.corruption("demo")) == 1

    def test_crc_less_lines_from_older_versions_still_read(self, tmp_path):
        from repro.io.results import canonical_json

        path = tmp_path / "demo.jsonl"
        legacy = {
            "config": config_hash(("k", 0), {"x": 0}),
            "key": ["k", 0],
            "repetition": 0,
            "seed": 5,
            "record": {"value": 41},
        }
        path.write_text(canonical_json(legacy) + "\n")
        store = ResultStore(tmp_path)
        assert store.records("demo") == [{"value": 41}]
        assert not store.corruption("demo")

    def test_index_reports_corruption_and_failures(self, tmp_path):
        path = self._populate(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"value":1', b'"value":7')
        path.write_bytes(b"".join(lines))
        store = ResultStore(tmp_path)
        store.append_failure(
            "demo",
            key=("k", 9),
            params={"x": 9},
            repetition=0,
            seed=9,
            failure={"kind": "error", "message": "boom"},
        )
        store.close()
        index = ResultStore(tmp_path).index()["demo"]
        assert index["records"] == 2
        assert index["failures"] == 1
        assert index["corrupt_lines"] == 1


class TestFailureEntries:
    def _append_failure(self, store, repetition=0):
        return store.append_failure(
            "demo",
            key=("k", 0),
            params={"x": 0},
            repetition=repetition,
            seed=3,
            failure={"kind": "error", "message": "boom", "attempts": 3},
        )

    def test_failures_never_satisfy_resume(self, tmp_path):
        store = ResultStore(tmp_path)
        self._append_failure(store)
        store.close()
        fresh = ResultStore(tmp_path)
        pair = (config_hash(("k", 0), {"x": 0}), 0)
        assert fresh.completed("demo") == {}  # quarantined pairs re-run
        assert fresh.failures("demo") == {
            pair: {"kind": "error", "message": "boom", "attempts": 3}
        }
        assert fresh.records("demo") == []

    def test_later_record_supersedes_failure(self, tmp_path):
        store = ResultStore(tmp_path)
        self._append_failure(store)
        store.append(
            "demo", key=("k", 0), params={"x": 0}, repetition=0, seed=3, record={"value": 1}
        )
        store.close()
        fresh = ResultStore(tmp_path)
        assert fresh.failures("demo") == {}
        assert list(fresh.completed("demo").values()) == [{"value": 1}]


class TestLocking:
    def test_lock_timeout_diagnostic(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        from repro.io.store import StoreLockTimeout

        store = ResultStore(tmp_path, lock_timeout=0.2)
        store.append("demo", key="k", params={}, repetition=0, seed=1, record={"v": 1})
        with (tmp_path / "demo.jsonl").open("ab") as blocker:
            fcntl.flock(blocker.fileno(), fcntl.LOCK_EX)
            with pytest.raises(StoreLockTimeout, match="another writer"):
                store.append(
                    "demo", key="k", params={}, repetition=1, seed=2, record={"v": 2}
                )
        # Blocker released the lock: the append now goes through.
        store.append("demo", key="k", params={}, repetition=1, seed=2, record={"v": 2})
        store.close()
        assert len(ResultStore(tmp_path).records("demo")) == 2


def _writer_process(directory: str, writer: int, count: int) -> None:
    """Module-level multiprocessing target: append `count` records."""
    store = ResultStore(directory)
    for index in range(count):
        store.append(
            "demo",
            key=("w", writer),
            params={"writer": writer},
            repetition=index,
            seed=writer * 1000 + index,
            record={"writer": writer, "index": index},
        )
    store.close()


class TestConcurrentWriters:
    def test_two_processes_append_without_corruption(self, tmp_path):
        pytest.importorskip("fcntl")
        import multiprocessing

        count = 25
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=_writer_process, args=(str(tmp_path), writer, count))
            for writer in (0, 1)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        store = ResultStore(tmp_path)
        records = store.records("demo")
        assert len(records) == 2 * count
        assert not store.corruption("demo")
        assert not store.had_truncated_tail("demo")
        # Every (writer, index) pair landed exactly once.
        assert {(r["writer"], r["index"]) for r in records} == {
            (w, i) for w in (0, 1) for i in range(count)
        }


class TestResume:
    def test_resume_after_kill_is_bit_identical_and_skips_done_pairs(self, tmp_path):
        # The log file is part of the task params (and thus of the config
        # hash), so both runs must share it; executions are counted by line.
        log = tmp_path / "executions.log"
        spec = _counting_spec(log)
        config = _config()

        # Uninterrupted reference run.
        store_a = ResultStore(tmp_path / "a")
        result_a = run_scenario(spec, config=config, store=store_a)
        store_a.close()
        file_a = (tmp_path / "a" / "counting.jsonl").read_bytes()
        assert len(log.read_text().splitlines()) == 6  # 3 configs x 2 reps

        # Simulate a kill after 2 complete records plus half of the third.
        lines = file_a.splitlines(keepends=True)
        partial = b"".join(lines[:2]) + lines[2][:25]
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "counting.jsonl").write_bytes(partial)

        store_b = ResultStore(tmp_path / "b")
        result_b = run_scenario(spec, config=config, store=store_b, resume=True)
        store_b.close()

        # Bit-identical store file and identical in-memory results ...
        assert (tmp_path / "b" / "counting.jsonl").read_bytes() == file_a
        assert result_b.raw_records == result_a.raw_records
        assert result_b.rows == result_a.rows
        # ... and only the 4 missing pairs were executed during the resume.
        assert len(log.read_text().splitlines()) == 6 + 4

    def test_exports_identical_after_resume(self, tmp_path):
        config = _config()
        spec = _counting_spec(tmp_path / "l")
        store_a = ResultStore(tmp_path / "a")
        result_a = run_scenario(spec, config=config, store=store_a)
        store_a.close()
        result_a.save(tmp_path / "a_out")

        file_a = (tmp_path / "a" / "counting.jsonl").read_bytes()
        lines = file_a.splitlines(keepends=True)
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "counting.jsonl").write_bytes(b"".join(lines[:3]))
        store_b = ResultStore(tmp_path / "b")
        result_b = run_scenario(spec, config=config, store=store_b, resume=True)
        store_b.close()
        result_b.save(tmp_path / "b_out")

        for name in ("counting_rows.json", "counting_rows.csv", "counting_raw.csv"):
            assert (tmp_path / "a_out" / name).read_bytes() == (
                tmp_path / "b_out" / name
            ).read_bytes()

    def test_fresh_run_against_populated_store_requires_resume(self, tmp_path):
        config = _config()
        store = ResultStore(tmp_path)
        run_scenario(_counting_spec(tmp_path / "l"), config=config, store=store)
        with pytest.raises(RuntimeError, match="resume"):
            run_scenario(_counting_spec(tmp_path / "l"), config=config, store=store)
        # Even a sweep with entirely different pairs (here: more repetitions
        # under another base seed) conflicts — it would mix result sets.
        with pytest.raises(RuntimeError, match="resume"):
            run_scenario(
                _counting_spec(tmp_path / "l"),
                config=_config(repetitions=3, seed=99),
                store=store,
            )
        store.close()

    def test_resume_with_different_base_seed_is_an_error(self, tmp_path):
        spec = _counting_spec(tmp_path / "l")
        store = ResultStore(tmp_path / "store")
        run_scenario(spec, config=_config(seed=11), store=store)
        # Same pairs, different base seed: stale records must not be served.
        with pytest.raises(RuntimeError, match="seed"):
            run_scenario(spec, config=_config(seed=12), store=store, resume=True)
        store.close()

    def test_completed_resume_executes_nothing(self, tmp_path):
        config = _config()
        log = tmp_path / "l"
        spec = _counting_spec(log)
        store = ResultStore(tmp_path / "store")
        result_a = run_scenario(spec, config=config, store=store)
        executions = len(log.read_text().splitlines())
        result_b = run_scenario(spec, config=config, store=store, resume=True)
        store.close()
        assert len(log.read_text().splitlines()) == executions  # nothing re-ran
        assert result_b.raw_records == result_a.raw_records


class TestExport:
    def test_sorted_export_is_completion_order_independent(self, tmp_path):
        # Append the same pairs in two different orders -> identical exports.
        for name, order in (("fwd", (0, 1, 2)), ("rev", (2, 1, 0))):
            store = ResultStore(tmp_path / name)
            for index in order:
                store.append(
                    "demo",
                    key=("k", index),
                    params={"x": index},
                    repetition=0,
                    seed=index,
                    record={"value": index},
                )
            store.export("demo", tmp_path / f"{name}_out")
            store.close()
        assert (tmp_path / "fwd_out" / "demo_records.json").read_bytes() == (
            tmp_path / "rev_out" / "demo_records.json"
        ).read_bytes()
