"""Tests for the compacted SQLite query index (repro.io.index).

The load-bearing guarantees:

* every index-served view (completed / records / failures / query / stats /
  aggregate / export) equals a fresh full-JSONL-scan recompute,
* the index follows external appends, in-place corruption (prefix-CRC
  mismatch -> rebuild) and truncation without ever serving stale rows,
* CRC-skipped lines and quarantined ``failure`` entries never satisfy an
  index-served query (the PR 6 resume-index rules),
* two processes appending under the per-append flock plus a concurrent
  reader leave an index state equal to a from-scratch rebuild.
"""

from __future__ import annotations

import json
import os

import pytest

pytest.importorskip("sqlite3")

from repro.analysis.statistics import aggregate_records, summarize
from repro.io import ResultStore, index_available
from repro.io.index import QueryIndex, nearest_rank
from repro.io.store import config_hash


def _populate(directory, configs=3, reps=2):
    store = ResultStore(directory)
    for c in range(configs):
        for r in range(reps):
            store.append(
                "demo",
                key=["cfg", c],
                params={"c": c},
                repetition=r,
                seed=c * 100 + r,
                record={
                    "n": 64 * (c + 1),
                    "rounds": float(10 * c + r),
                    "proto": ("push", "pull")[c % 2],
                    "ok": bool(r % 2),
                    "series": [c, r],
                },
            )
    return store


def _scan(directory):
    return ResultStore(directory, index=False)


class TestAvailability:
    def test_index_available_here(self):
        assert index_available()

    def test_env_var_disables_index(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_STORE_INDEX", "1")
        store = _populate(tmp_path)
        assert store.query_index is None
        # Export still works through the scan path; no sqlite file appears.
        store.export("demo", tmp_path / "out")
        store.close()
        assert not (tmp_path / "index.sqlite").exists()

    def test_explicit_flag_disables_index(self, tmp_path):
        store = ResultStore(tmp_path, index=False)
        store.append("demo", key="k", params={}, repetition=0, seed=1, record={"v": 1})
        store.close()
        assert not (tmp_path / "index.sqlite").exists()

    def test_index_file_is_invisible_to_scenario_glob(self, tmp_path):
        store = _populate(tmp_path)
        assert store.query_index is not None
        store.query_index.refresh("demo")
        store.close()
        assert (tmp_path / "index.sqlite").exists()
        assert list(ResultStore(tmp_path).index()) == ["demo"]


class TestIndexMatchesScan:
    def test_completed_records_failures(self, tmp_path):
        store = _populate(tmp_path)
        store.append_failure(
            "demo",
            key=["cfg", 9],
            params={"c": 9},
            repetition=0,
            seed=900,
            failure={"kind": "error", "message": "boom"},
        )
        index = store.query_index
        scan = _scan(tmp_path)
        assert index.completed("demo") == scan.completed("demo")
        assert index.records("demo") == scan.records("demo")
        assert index.failures("demo") == scan.failures("demo")
        store.close()

    def test_record_supersedes_failure_and_vice_versa(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(key=["cfg", 0], params={"c": 0}, repetition=0, seed=5)
        store.append_failure("demo", failure={"kind": "error", "message": "x"}, **kwargs)
        store.append("demo", record={"v": 1}, **kwargs)
        index = store.query_index
        assert index.failures("demo") == {}
        assert list(index.completed("demo").values()) == [{"v": 1}]
        # A failure after a record leaves the pair completed (scanner rule:
        # failures never pop completed pairs) but also listed as failed.
        store.append_failure("demo", failure={"kind": "error", "message": "y"}, **kwargs)
        scan = _scan(tmp_path)
        assert index.completed("demo") == scan.completed("demo") != {}
        assert index.failures("demo") == scan.failures("demo") != {}
        store.close()

    def test_export_byte_identical_to_scan_export(self, tmp_path):
        store = _populate(tmp_path / "store")
        store.query_index.export("demo", tmp_path / "via_index")
        _scan(tmp_path / "store").export("demo", tmp_path / "via_scan")
        store.close()
        for name in ("demo_records.json", "demo_records.csv"):
            assert (tmp_path / "via_index" / name).read_bytes() == (
                tmp_path / "via_scan" / name
            ).read_bytes()

    def test_aggregate_matches_shared_aggregator_on_scan(self, tmp_path):
        store = _populate(tmp_path, configs=4, reps=3)
        pairs = _scan(tmp_path).completed_entries("demo")
        records = [pairs[pair]["record"] for pair in sorted(pairs)]
        expected = aggregate_records(records, group_by=["n"], metrics=["rounds"])
        assert store.query_index.aggregate("demo", ["n"], ["rounds"]) == expected
        store.close()

    def test_stats_pinned_to_sorted_scan_values(self, tmp_path):
        store = _populate(tmp_path, configs=4, reps=3)
        pairs = _scan(tmp_path).completed_entries("demo")
        values = sorted(
            float(pairs[pair]["record"]["rounds"]) for pair in sorted(pairs)
        )
        stats = summarize(values)
        (row,) = store.query_index.stats("demo", ["rounds"], percentiles=(50, 90))
        store.close()
        assert row == {
            "metric": "rounds",
            "count": stats.count,
            "mean": stats.mean,
            "std": stats.std,
            "min": stats.minimum,
            "max": stats.maximum,
            "p50": nearest_rank(values, 50),
            "p90": nearest_rank(values, 90),
        }

    def test_query_filters_and_limit(self, tmp_path):
        store = _populate(tmp_path)
        index = store.query_index
        rows = index.query("demo", where={"proto": "push"})
        assert rows and all(row["proto"] == "push" for row in rows)
        assert {"config", "repetition", "seed"} <= set(rows[0])
        assert len(index.query("demo", limit=2)) == 2
        assert index.query("demo", where={"n": 9999}) == []
        store.close()

    def test_metric_names_are_numeric_non_bool_fields(self, tmp_path):
        store = _populate(tmp_path)
        assert store.query_index.metric_names("demo") == ["n", "rounds"]
        store.close()

    def test_counts(self, tmp_path):
        store = _populate(tmp_path, configs=3, reps=2)
        assert store.query_index.counts("demo") == {
            "records": 6,
            "configurations": 3,
            "failures": 0,
        }
        store.close()


class TestInvalidation:
    def test_external_append_is_picked_up(self, tmp_path):
        writer_a = _populate(tmp_path)
        index = writer_a.query_index
        assert len(index.records("demo")) == 6
        writer_b = ResultStore(tmp_path)
        writer_b.append(
            "demo", key=["cfg", 9], params={"c": 9}, repetition=0, seed=9, record={"n": 1}
        )
        writer_b.close()
        assert len(index.records("demo")) == 7
        writer_a.close()

    def test_in_place_garble_invalidates_via_prefix_crc(self, tmp_path):
        store = _populate(tmp_path)
        index = store.query_index
        index.refresh("demo")  # fully indexed, CRC chained over all lines
        path = tmp_path / "demo.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        # Same-length in-place tamper: file size unchanged, only the CRC
        # chain can notice.  Keeps valid JSON so the line CRC must catch it.
        assert b'"rounds":1.0' in lines[1]
        lines[1] = lines[1].replace(b'"rounds":1.0', b'"rounds":7.0')
        path.write_bytes(b"".join(lines))
        scan = _scan(tmp_path)
        assert index.completed("demo") == scan.completed("demo")
        assert len(index.records("demo")) == 5  # corrupt line never served
        assert len(scan.corruption("demo")) == 1
        store.close()

    def test_truncation_invalidates(self, tmp_path):
        store = _populate(tmp_path)
        index = store.query_index
        index.refresh("demo")
        path = tmp_path / "demo.jsonl"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data.splitlines(keepends=True)[-1]) - 3])
        scan = _scan(tmp_path)
        assert index.completed("demo") == scan.completed("demo")
        assert index.records("demo") == scan.records("demo")
        store.close()

    def test_append_after_external_truncation_reindexes(self, tmp_path):
        store = _populate(tmp_path)
        store.query_index.refresh("demo")
        path = tmp_path / "demo.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3]))
        # note_append sees indexed_end != offset and falls back to a full
        # catch-up without re-acquiring the already-held flock.
        store.append(
            "demo", key=["cfg", 9], params={"c": 9}, repetition=0, seed=9, record={"n": 5}
        )
        scan = _scan(tmp_path)
        assert store.query_index.records("demo") == scan.records("demo")
        assert len(scan.records("demo")) == 4
        store.close()

    def test_legacy_crc_less_lines_are_indexed(self, tmp_path):
        from repro.io.results import canonical_json

        path = tmp_path / "demo.jsonl"
        legacy = {
            "config": config_hash(["k", 0], {"x": 0}),
            "key": ["k", 0],
            "repetition": 0,
            "seed": 5,
            "record": {"value": 41},
        }
        path.write_text(canonical_json(legacy) + "\n")
        store = ResultStore(tmp_path)
        assert store.query_index.records("demo") == [{"value": 41}]
        store.close()

    def test_deleted_scenario_file_clears_rows(self, tmp_path):
        store = _populate(tmp_path)
        index = store.query_index
        index.refresh("demo")
        store.close()
        (tmp_path / "demo.jsonl").unlink()
        assert index.records("demo") == []
        assert index.counts("demo") == {"records": 0, "configurations": 0, "failures": 0}
        index.close()

    def test_rebuild_equals_incremental_state(self, tmp_path):
        store = _populate(tmp_path)
        store.append_failure(
            "demo",
            key=["cfg", 0],
            params={"c": 0},
            repetition=0,
            seed=0,
            failure={"kind": "error", "message": "x"},
        )
        index = store.query_index
        before = (index.completed("demo"), index.records("demo"), index.failures("demo"))
        assert index.rebuild() == ["demo"]
        after = (index.completed("demo"), index.records("demo"), index.failures("demo"))
        assert before == after
        store.close()

    def test_schema_version_mismatch_drops_and_rebuilds(self, tmp_path):
        store = _populate(tmp_path)
        index = store.query_index
        index.refresh("demo")
        con = index._connect()
        con.execute("UPDATE meta SET value = '0' WHERE key = 'schema'")
        index.close()
        fresh = ResultStore(tmp_path)
        assert fresh.query_index.records("demo") == _scan(tmp_path).records("demo")
        fresh.close()
        store.close()

    def test_wide_ints_survive_via_json_body(self, tmp_path):
        store = ResultStore(tmp_path)
        huge = 2**70  # does not fit SQLite INTEGER; must stay JSON-only
        big = 2**62  # fits 64-bit exactly; REAL would corrupt it
        store.append(
            "demo", key="k", params={}, repetition=0, seed=1,
            record={"huge": huge, "big": big},
        )
        index = store.query_index
        assert list(index.completed("demo").values()) == [{"huge": huge, "big": big}]
        (row,) = index.stats("demo", ["big"])
        assert row["min"] == float(big)
        assert index.stats("demo", ["huge"]) == []  # not compacted, not lost
        store.close()


def _indexed_writer(directory: str, writer: int, count: int) -> None:
    """Module-level multiprocessing target: append with the index enabled."""
    store = ResultStore(directory)
    for index in range(count):
        store.append(
            "demo",
            key=["w", writer],
            params={"writer": writer},
            repetition=index,
            seed=writer * 1000 + index,
            record={"writer": writer, "index": index, "cost": float(index)},
        )
    store.close()


class TestConcurrency:
    def test_two_writers_one_reader_end_in_rebuild_equal_state(self, tmp_path):
        pytest.importorskip("fcntl")
        import multiprocessing

        count = 20
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=_indexed_writer, args=(str(tmp_path), w, count))
            for w in (0, 1)
        ]
        for worker in workers:
            worker.start()
        # Read-through queries while both writers are appending: every call
        # must return a consistent prefix of the final state, never error.
        reader = ResultStore(tmp_path)
        seen = 0
        while any(worker.is_alive() for worker in workers):
            completed = reader.query_index.completed("demo")
            assert len(completed) >= seen  # monotone: the store only grows
            seen = len(completed)
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        scan = _scan(tmp_path)
        final = reader.query_index.completed("demo")
        assert len(final) == 2 * count
        assert final == scan.completed("demo")
        # The incrementally-built index equals a from-scratch rebuild.
        records_before = reader.query_index.records("demo")
        reader.query_index.rebuild("demo")
        assert reader.query_index.records("demo") == records_before == scan.records("demo")
        assert reader.query_index.failures("demo") == {}
        assert not scan.corruption("demo")
        reader.close()
