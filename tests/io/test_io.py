"""Tests for repro.io (persistence and table rendering)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.io import (
    format_records,
    format_table,
    format_value,
    load_csv,
    load_json,
    save_csv,
    save_json,
    to_jsonable,
)


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.asarray([1, 2, 3])) == [1, 2, 3]

    def test_nested_structures(self):
        data = {"a": np.asarray([1]), "b": [np.int64(2), {"c": np.float32(1.5)}]}
        out = to_jsonable(data)
        json.dumps(out)  # must be JSON-serialisable
        assert out["a"] == [1]
        assert out["b"][1]["c"] == 1.5

    def test_exotic_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "weird!"

        assert to_jsonable(Weird()) == "weird!"

    def test_passthrough(self):
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None


class TestJsonRoundtrip:
    def test_save_and_load(self, tmp_path):
        records = [{"n": 10, "value": 1.5}, {"n": 20, "value": np.float64(2.5)}]
        path = save_json(records, tmp_path / "sub" / "data.json")
        assert path.exists()
        loaded = load_json(path)
        assert loaded[1]["value"] == 2.5


class TestCsvRoundtrip:
    def test_save_and_load(self, tmp_path):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y", "c": 3.0}]
        path = save_csv(records, tmp_path / "data.csv")
        loaded = load_csv(path)
        assert loaded[0]["a"] == "1"
        assert loaded[1]["c"] == "3.0"
        assert set(loaded[0].keys()) == {"a", "b", "c"}

    def test_explicit_columns(self, tmp_path):
        records = [{"a": 1, "b": 2}]
        path = save_csv(records, tmp_path / "cols.csv", columns=["b"])
        loaded = load_csv(path)
        assert list(loaded[0].keys()) == ["b"]


class TestTables:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456) == "1.235"
        assert format_value(1e9) == "1.00e+09"
        assert format_value(float("nan")) == "nan"
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        table = format_table(["col", "x"], [["a", 1], ["bbbb", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1] and "x" in lines[1]
        assert len(lines) == 5
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_records(self):
        records = [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}]
        table = format_records(records, ["b", "a"])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_column_shows_dash(self):
        table = format_records([{"a": 1}], ["a", "missing"])
        assert "-" in table.splitlines()[-1]
