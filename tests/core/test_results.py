"""Tests for repro.core.results and the protocol base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GossipProtocol, GossipResult, PushPullGossip
from repro.engine import KnowledgeMatrix, MessageAccounting, TransmissionLedger


def make_result(n: int = 8) -> GossipResult:
    ledger = TransmissionLedger(n)
    ledger.record_pushes(np.arange(n))
    ledger.record_opens(np.arange(n))
    ledger.end_round()
    return GossipResult(
        protocol="test",
        n_nodes=n,
        completed=True,
        rounds=1,
        ledger=ledger,
        knowledge=KnowledgeMatrix(n),
        extras={"leader": 3, "trees": [object()]},
    )


class TestGossipResult:
    def test_messages_per_node(self):
        result = make_result()
        assert result.messages_per_node() == pytest.approx(1.0)
        assert result.messages_per_node(MessageAccounting.OPENS_AND_PACKETS) == pytest.approx(2.0)
        assert result.total_messages() == 8
        assert result.max_messages_per_node() == 1

    def test_coverage(self):
        result = make_result(4)
        assert result.coverage() == pytest.approx(0.25)

    def test_coverage_without_knowledge(self):
        result = make_result()
        result.knowledge = None
        assert result.coverage() == 1.0

    def test_summary_scalar_extras_only(self):
        summary = make_result().summary()
        assert summary["protocol"] == "test"
        assert summary["extra_leader"] == 3
        assert "extra_trees" not in summary  # non-scalar extras skipped
        assert summary["messages_per_node"] == pytest.approx(1.0)
        assert summary["ledger"]["total_packets"] == 8


class TestProtocolBase:
    def test_is_abstract(self):
        with pytest.raises(TypeError):
            GossipProtocol()  # type: ignore[abstract]

    def test_concrete_protocol_has_name(self):
        assert isinstance(PushPullGossip().name, str)

    def test_prepare_rejects_bad_graphs(self):
        from repro.graphs.adjacency import Adjacency

        protocol = PushPullGossip()
        lonely = Adjacency.from_edges(2, np.zeros((0, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            protocol.run(lonely, rng=0)
