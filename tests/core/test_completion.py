"""Tests for repro.core.completion (gossiping completion predicates)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.completion import alive_message_mask, gossip_complete, missing_pairs
from repro.engine.knowledge import KnowledgeMatrix


def fully_informed(n: int) -> KnowledgeMatrix:
    km = KnowledgeMatrix(n)
    full_row = km.row_with(range(n))
    for node in range(n):
        km.union_into(node, full_row)
    return km


class TestGossipComplete:
    def test_initial_state_incomplete(self):
        assert not gossip_complete(KnowledgeMatrix(8))

    def test_fully_informed_complete(self):
        assert gossip_complete(fully_informed(8))
        assert gossip_complete(fully_informed(70))  # multi-word rows

    def test_alive_subset_only(self):
        km = KnowledgeMatrix(6)
        alive = np.asarray([0, 1, 2])
        # Teach alive nodes all alive messages only.
        row = km.row_with([0, 1, 2])
        for node in alive:
            km.union_into(int(node), row)
        assert gossip_complete(km, alive)
        assert not gossip_complete(km)

    def test_all_alive_equivalent_to_none(self):
        km = fully_informed(5)
        assert gossip_complete(km, np.arange(5)) == gossip_complete(km)

    def test_missing_alive_message_detected(self):
        km = KnowledgeMatrix(6)
        alive = np.asarray([0, 1, 2])
        row = km.row_with([0, 1])  # message 2 missing
        for node in alive:
            km.union_into(int(node), row)
        assert not gossip_complete(km, alive)


class TestMissingPairs:
    def test_initial_count(self):
        km = KnowledgeMatrix(5)
        assert missing_pairs(km) == 5 * 5 - 5

    def test_zero_when_complete(self):
        assert missing_pairs(fully_informed(9)) == 0

    def test_alive_subset(self):
        km = KnowledgeMatrix(6)
        alive = np.asarray([0, 1])
        assert missing_pairs(km, alive) == 2  # each alive node misses the other's message


class TestAliveMessageMask:
    def test_mask_bits(self):
        km = KnowledgeMatrix(70)
        mask = alive_message_mask(km, np.asarray([0, 65]))
        assert mask[0] == np.uint64(1)
        assert mask[1] == np.uint64(1) << np.uint64(1)

    def test_empty_alive(self):
        km = KnowledgeMatrix(10)
        mask = alive_message_mask(km, np.asarray([], dtype=np.int64))
        assert not mask.any()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=150), st.data())
    def test_property_popcount_matches_alive_count(self, n, data):
        km = KnowledgeMatrix(n)
        alive = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), unique=True, max_size=n)
        )
        mask = alive_message_mask(km, np.asarray(alive, dtype=np.int64))
        assert int(np.bitwise_count(mask).sum()) == len(alive)
