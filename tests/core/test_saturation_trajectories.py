"""Whole-protocol pins: saturation filtering and fused deficit recounts.

The drivers thread the :class:`CompletionTracker`'s complete-row mask into
``apply_exchange`` (saturation-filtered rounds) and its deficit array into
the swap-form kernels (fused in-kernel recounts).  Both are pure shortcuts:
a run with them stripped must produce the *same trajectory* — same rounds,
same completion, same ledger totals, bit-identical knowledge.  These tests
pin that on full protocol runs, for the synchronous and event clocks, and
check the one case where the filter must stay off: churn, where live rows
are no longer guaranteed subsets of the completion row.

The stripped runs are produced by monkeypatching
``KnowledgeMatrix.apply_exchange`` (and the memory protocol's replay
batcher) to drop the optional kwargs, which forces the plain unfiltered /
recount-in-Python paths of the very same kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FastGossiping, MemoryGossiping, PushPullGossip, erdos_renyi
from repro.core import memory_gossiping
from repro.engine.event_clock import sample_churn_plan
from repro.engine.knowledge import KnowledgeMatrix
from repro.graphs import paper_edge_probability


@pytest.fixture(autouse=True)
def _dense_layout(monkeypatch):
    # These pins target the dense driver shortcuts (the block layouts ignore
    # the fused kwargs and have their own filter path); neutralize any forced
    # storage layout from the surrounding CI environment.
    monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "dense")


def _graph(n, rng):
    return erdos_renyi(n, paper_edge_probability(n), rng=rng, require_connected=True)


def _summary(result):
    return (result.rounds, result.completed, result.ledger.total())


def _strip_exchange_kwargs(monkeypatch, *, keep_filter=False):
    """Force plain exchanges: drop the filter and/or fused-deficit kwargs."""
    orig = KnowledgeMatrix.apply_exchange

    def stripped(self, callers, targets, *, complete=None, complete_row=None, **_):
        if keep_filter:
            return orig(
                self, callers, targets, complete=complete, complete_row=complete_row
            )
        return orig(self, callers, targets)

    monkeypatch.setattr(KnowledgeMatrix, "apply_exchange", stripped)


def _strip_batcher_filter(monkeypatch):
    """Memory replay: keep batching, drop the saturation-filtered flush."""
    orig = memory_gossiping._ReplayBatcher.__init__

    def plain(self, knowledge, *, complete=None, complete_row=None):
        orig(self, knowledge)

    monkeypatch.setattr(memory_gossiping._ReplayBatcher, "__init__", plain)


class TestFilteredMatchesUnfiltered:
    def test_push_pull_sync(self, monkeypatch):
        graph = _graph(256, 11)
        a = PushPullGossip().run(graph, rng=5)
        assert a.completed
        assert a.knowledge.filter_stats["rounds"] > 0
        with pytest.MonkeyPatch.context() as mp:
            _strip_exchange_kwargs(mp)
            b = PushPullGossip().run(graph, rng=5)
        assert b.knowledge.filter_stats["rounds"] == 0
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge

    def test_push_pull_event_clock(self, monkeypatch):
        graph = _graph(128, 12)
        a = PushPullGossip().run(graph, rng=6, clock="event")
        assert a.completed
        assert a.knowledge.filter_stats["rounds"] > 0
        with pytest.MonkeyPatch.context() as mp:
            _strip_exchange_kwargs(mp)
            b = PushPullGossip().run(graph, rng=6, clock="event")
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge

    def test_fast_gossiping(self, monkeypatch):
        graph = _graph(256, 13)
        a = FastGossiping().run(graph, rng=7)
        assert a.completed
        with pytest.MonkeyPatch.context() as mp:
            _strip_exchange_kwargs(mp)
            b = FastGossiping().run(graph, rng=7)
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge

    def test_memory_replay_filter(self, monkeypatch):
        graph = _graph(256, 14)
        a = MemoryGossiping(leader=0).run(graph, rng=8)
        assert a.completed
        assert a.knowledge.filter_stats["rounds"] > 0
        with pytest.MonkeyPatch.context() as mp:
            _strip_batcher_filter(mp)
            b = MemoryGossiping(leader=0).run(graph, rng=8)
        assert b.knowledge.filter_stats["rounds"] == 0
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge


class TestChurnKeepsFilterOff:
    def test_filter_never_fires_under_churn(self):
        graph = _graph(128, 15)
        plan = sample_churn_plan(graph.n, leavers=8, rng=3, horizon=400)
        result = PushPullGossip().run(graph, rng=9, clock="event", churn=plan)
        # The promotion shortcut is unsound once nodes can leave for good,
        # so the driver must never hand the complete mask to the kernels.
        assert result.knowledge.filter_stats["rounds"] == 0
        assert result.knowledge.filter_stats["edges"] == 0

    def test_fused_deficits_equivalent_under_churn(self):
        """Fused recounts stay on under churn and must not change anything."""
        graph = _graph(128, 15)
        plan = sample_churn_plan(graph.n, leavers=8, rng=3, horizon=400)
        a = PushPullGossip().run(graph, rng=9, clock="event", churn=plan)
        with pytest.MonkeyPatch.context() as mp:
            _strip_exchange_kwargs(mp)
            b = PushPullGossip().run(graph, rng=9, clock="event", churn=plan)
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge


class TestFusedDeficitsMatchRecount:
    @pytest.mark.parametrize(
        "factory,seed",
        [(PushPullGossip, 21), (FastGossiping, 22)],
        ids=["push-pull", "fast-gossiping"],
    )
    def test_trajectories_identical(self, factory, seed):
        graph = _graph(256, 16)
        a = factory().run(graph, rng=seed)
        with pytest.MonkeyPatch.context() as mp:
            # Keep the saturation filter; only the in-kernel recount is
            # dropped, so the tracker falls back to update()/mark_promoted().
            _strip_exchange_kwargs(mp, keep_filter=True)
            b = factory().run(graph, rng=seed)
        assert _summary(a) == _summary(b)
        assert a.knowledge == b.knowledge


class TestDeferralBoundIsSound:
    def test_popcount_never_exceeds_bound(self):
        """The early-round tracker deferral rests on this invariant.

        The synchronous driver skips all completion bookkeeping while
        ``bound_{t+1} = bound_t * (2 + max indegree)`` stays below the mask
        popcount — sound only if no row's popcount can exceed the bound.
        Replay real rounds and check the actual maxima against it.
        """
        from repro.engine.channels import open_channels

        graph = _graph(192, 17)
        rng = np.random.default_rng(23)
        km = KnowledgeMatrix(graph.n)
        bound = 1
        for _ in range(6):
            channels = open_channels(graph, rng)
            indeg = np.bincount(channels.targets, minlength=graph.n).max()
            bound = bound * (2 + int(indeg))
            km.apply_exchange(channels.callers, channels.targets)
            everyone = np.arange(graph.n, dtype=np.int64)
            max_pop = int(
                np.bitwise_count(km.rows(everyone)).sum(axis=1).max()
            )
            assert max_pop <= bound
            if max_pop >= km.n_messages:
                break
