"""Tests for repro.core.push_pull (Algorithm 4, the baseline)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import PushPullGossip, PushPullParameters
from repro.engine import MessageAccounting, sample_uniform_failures
from repro.engine.failures import FailurePlan
from repro.graphs import complete_graph, hypercube


class TestCompletion:
    def test_completes_on_paper_graph(self, small_paper_graph):
        result = PushPullGossip().run(small_paper_graph, rng=1)
        assert result.completed
        assert result.knowledge.is_complete()
        assert result.protocol == "push-pull"

    def test_completes_on_complete_graph(self, small_complete_graph):
        result = PushPullGossip().run(small_complete_graph, rng=2)
        assert result.completed

    def test_completes_on_hypercube(self):
        result = PushPullGossip().run(hypercube(7), rng=3)
        assert result.completed

    def test_rounds_logarithmic(self, small_paper_graph):
        result = PushPullGossip().run(small_paper_graph, rng=4)
        n = small_paper_graph.n
        assert result.rounds <= 4 * math.log2(n)
        assert result.rounds >= math.floor(math.log2(n) / 2)

    def test_deterministic_given_seed(self, small_paper_graph):
        a = PushPullGossip().run(small_paper_graph, rng=5)
        b = PushPullGossip().run(small_paper_graph, rng=5)
        assert a.rounds == b.rounds
        assert a.total_messages() == b.total_messages()
        assert a.knowledge == b.knowledge

    def test_max_rounds_abort(self, small_paper_graph):
        params = PushPullParameters(max_rounds_factor=0.3)
        result = PushPullGossip(params).run(small_paper_graph, rng=6)
        assert not result.completed
        assert result.rounds == params.max_rounds(small_paper_graph.n)


class TestAccounting:
    def test_messages_match_rounds(self, small_paper_graph):
        """Every node opens one channel and pushes once per round; pulls ~1 on average."""
        result = PushPullGossip().run(small_paper_graph, rng=7)
        n = small_paper_graph.n
        assert result.ledger.total(MessageAccounting.OPENS) == n * result.rounds
        assert result.ledger.total(MessageAccounting.PUSHES) == pytest.approx(
            n * result.rounds, rel=0.01
        )
        assert result.ledger.total(MessageAccounting.PULLS) == result.ledger.total(
            MessageAccounting.PUSHES
        )
        assert result.messages_per_node() == pytest.approx(2 * result.rounds, rel=0.02)

    def test_trace_recording(self, small_paper_graph):
        result = PushPullGossip().run(small_paper_graph, rng=8, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.rounds
        curve = result.trace.coverage_curve()
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == pytest.approx(1.0)

    def test_no_trace_by_default(self, small_paper_graph):
        assert PushPullGossip().run(small_paper_graph, rng=9).trace is None


class TestValidation:
    def test_small_graph_rejected(self):
        with pytest.raises(ValueError):
            PushPullGossip().run(complete_graph(1), rng=1)

    def test_isolated_node_rejected(self):
        from repro.graphs.adjacency import Adjacency

        graph = Adjacency.from_edges(3, np.asarray([[0, 1]]))
        with pytest.raises(ValueError):
            PushPullGossip().run(graph, rng=1)

    def test_unsupported_failure_injection(self, small_paper_graph):
        plan = sample_uniform_failures(small_paper_graph.n, 3, rng=1)
        with pytest.raises(ValueError):
            PushPullGossip().run(small_paper_graph, failures=plan, rng=1)


class TestWithFailures:
    def test_failures_at_start(self, small_complete_graph):
        n = small_complete_graph.n
        plan = sample_uniform_failures(n, 10, rng=11, inject_at="start")
        result = PushPullGossip().run(small_complete_graph, rng=12, failures=plan)
        assert result.completed
        alive = plan.alive_mask(n)
        # Failed nodes never communicate: they know only their own message.
        counts = result.knowledge.counts()
        assert np.all(counts[~alive] == 1)
        # Alive nodes know all alive messages.
        assert result.extras["alive_nodes"] == n - 10

    def test_failed_nodes_send_nothing(self, small_complete_graph):
        n = small_complete_graph.n
        plan = sample_uniform_failures(n, 5, rng=13, inject_at="start")
        result = PushPullGossip().run(small_complete_graph, rng=14, failures=plan)
        per_node = result.ledger.per_node(MessageAccounting.OPENS_AND_PACKETS)
        assert np.all(per_node[plan.failed] == 0)
