"""Semantic-equivalence tests for the batched memory-model kernels.

The memory model (Algorithms 2 and 3) was rewritten from per-node Python
loops to batched kernels: one ``open-avoid`` sampling pass per step over all
callers, ring-buffer stores in bulk, and per-step grouped scatter-OR replays.
These tests pin the batched kernels to per-node reference implementations
that share the documented RNG stream discipline (each open-avoid pass draws
``rng.random((callers, count))`` up front, then ``rng.random((f, 1))`` for
the ``f`` fallback callers) but execute every remaining decision — skip
sampling, memory stores, informing, ledger accounting, tree records, replay
unions — one node or edge at a time in plain Python.

Covered:

* ``MemoryGossiping`` end-to-end (Phases I-III) against the reference, with
  no failures, failures at ``start``, failures at ``before_gather``,
  ``contacts="first"`` and multiple trees — trees, knowledge bitsets and
  per-node ledgers must be identical.
* ``LeaderElection`` against the reference, with and without failures and
  ``active_push_limit``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LeaderElection, MemoryGossiping, tuned_memory_gossiping
from repro.core.memory_gossiping import _steps_ascending, _steps_descending
from repro.core.node_memory import NodeMemory
from repro.core.parameters import LeaderElectionParameters
from repro.engine import sample_uniform_failures
from repro.engine.knowledge import KnowledgeMatrix
from repro.engine.metrics import TransmissionLedger
from repro.engine.rng import make_rng, spawn_rngs
from repro.graphs import erdos_renyi, paper_edge_probability


# --------------------------------------------------------------------------- #
# Per-node reference kernels (same stream discipline as the batch)
# --------------------------------------------------------------------------- #
def scalar_skip_sample(nbrs, avoid_row, uniforms, count):
    """Reference open-avoid for one node: rank draws mapped over exclusions."""
    nbrs = nbrs.tolist()
    excluded = []
    for address in avoid_row:
        if address < 0:
            continue
        if address in nbrs:
            position = nbrs.index(address)
            if position not in excluded:
                excluded.append(position)
    excluded.sort()
    picks = []
    for j in range(count):
        pool = len(nbrs) - len(excluded)
        if pool <= 0:
            break
        rank = min(int(uniforms[j] * pool), pool - 1)
        for position in excluded:
            if rank >= position:
                rank += 1
        picks.append(nbrs[rank])
        excluded.append(rank)
        excluded.sort()
    return picks


def reference_open_avoid_one(graph, nodes, memory, rng):
    """Per-node mirror of ``open_avoid_one`` (primary block, then fallbacks)."""
    nodes = [int(v) for v in nodes]
    avoid = memory.slots[np.asarray(nodes, dtype=np.int64)].copy()
    uniforms = rng.random((len(nodes), 1))
    targets = []
    fallback = []
    for i, v in enumerate(nodes):
        picks = scalar_skip_sample(graph.neighbors(v), avoid[i], uniforms[i], 1)
        if picks:
            targets.append(picks[0])
        else:
            targets.append(-1)
            if graph.degree(v) > 0:
                fallback.append(i)
    if fallback:
        retry_uniforms = rng.random((len(fallback), 1))
        for row, i in enumerate(fallback):
            picks = scalar_skip_sample(
                graph.neighbors(nodes[i]), [], retry_uniforms[row], 1
            )
            targets[i] = picks[0]
    for i, v in enumerate(nodes):
        if targets[i] >= 0:
            memory.store(v, targets[i])
    return targets


def reference_build_tree(graph, knowledge, ledger, rng, schedule, leader, memory, alive):
    """Per-node mirror of the batched ``MemoryGossiping._build_tree``."""
    n = graph.n
    fanout = schedule.fanout
    informed_step = np.full(n, -1, dtype=np.int64)
    informed_step[leader] = 0
    push_parents, push_children, push_steps = [], [], []
    pull_children, pull_parents, pull_steps = [], [], []
    step = 0
    frontier = [leader]

    for _ in range(schedule.push_longsteps):
        avoid = memory.slots[np.asarray(frontier, dtype=np.int64)].copy()
        uniforms = rng.random((len(frontier), fanout))
        contacts = []
        for i, v in enumerate(frontier):
            for k, u in enumerate(
                scalar_skip_sample(graph.neighbors(v), avoid[i], uniforms[i], fanout)
            ):
                memory.store(v, u)
                contacts.append((v, u, step + k))
        for parent, child, contact_step in contacts:
            push_parents.append(parent)
            push_children.append(child)
            push_steps.append(contact_step)
            ledger.record_opens(np.asarray([parent]))
            ledger.record_pushes(np.asarray([parent]))
        first_contact = {}
        for parent, child, contact_step in contacts:
            if alive is not None and not alive[child]:
                continue  # crashed callee drops the packet
            if informed_step[child] >= 0:
                continue
            if child not in first_contact or contact_step < first_contact[child]:
                first_contact[child] = contact_step
        frontier = sorted(first_contact)
        for child in frontier:
            informed_step[child] = first_contact[child] + 1
            knowledge.add(child, leader)
        step += fanout
        for _ in range(fanout):
            ledger.end_round()
        if not frontier:
            break

    budget = schedule.pull_longsteps
    if schedule.run_pull_until_complete:
        budget += schedule.max_extra_longsteps
    executed = 0
    covered = False
    while executed < budget and not covered:
        for _ in range(fanout):
            callers = [
                v
                for v in range(n)
                if informed_step[v] < 0 and (alive is None or alive[v])
            ]
            if not callers:
                covered = True
                break
            informed_before = informed_step >= 0
            targets = reference_open_avoid_one(graph, callers, memory, rng)
            for v, u in zip(callers, targets):
                if u < 0:
                    continue  # no channel opened at all
                ledger.record_opens(np.asarray([v]))
                if alive is not None and not alive[u]:
                    continue
                if informed_before[u]:
                    ledger.record_pulls(np.asarray([u]))
                    informed_step[v] = step + 1
                    knowledge.add(v, leader)
                    pull_children.append(v)
                    pull_parents.append(u)
                    pull_steps.append(step)
            ledger.end_round()
            step += 1
        executed += 1

    from repro.core.memory_gossiping import CommunicationTree

    return CommunicationTree(
        root=leader,
        push_parents=np.asarray(push_parents, dtype=np.int64),
        push_children=np.asarray(push_children, dtype=np.int64),
        push_steps=np.asarray(push_steps, dtype=np.int64),
        pull_children=np.asarray(pull_children, dtype=np.int64),
        pull_parents=np.asarray(pull_parents, dtype=np.int64),
        pull_steps=np.asarray(pull_steps, dtype=np.int64),
        informed_step=informed_step,
    )


def reference_gather(tree, knowledge, ledger, alive, contacts):
    """Per-edge Phase II replay with a start-of-round snapshot per group."""
    push_parents, push_children, push_steps = MemoryGossiping._selected_push_edges(
        tree, contacts
    )
    for group in _steps_descending(tree.pull_steps):
        snapshot = knowledge.data.copy()
        for idx in group.tolist():
            child = int(tree.pull_children[idx])
            parent = int(tree.pull_parents[idx])
            if alive is not None and not alive[child]:
                continue
            ledger.record_opens(np.asarray([child]))
            ledger.record_pushes(np.asarray([child]))
            if alive is not None and not alive[parent]:
                continue
            knowledge.data[parent] |= snapshot[child]
        ledger.end_round()
    for group in _steps_descending(push_steps):
        snapshot = knowledge.data.copy()
        for idx in group.tolist():
            parent = int(push_parents[idx])
            child = int(push_children[idx])
            if alive is not None and not alive[parent]:
                continue
            ledger.record_opens(np.asarray([parent]))
            if alive is not None and not alive[child]:
                continue
            ledger.record_pulls(np.asarray([child]))
            knowledge.data[parent] |= snapshot[child]
        ledger.end_round()


def reference_broadcast(tree, knowledge, ledger, alive, contacts):
    """Per-edge Phase III replay with a start-of-round snapshot per group."""
    push_parents, push_children, push_steps = MemoryGossiping._selected_push_edges(
        tree, contacts
    )
    all_steps = np.concatenate([push_steps, tree.pull_steps])
    push_count = push_steps.size
    for group in _steps_ascending(all_steps):
        snapshot = knowledge.data.copy()
        for idx in group.tolist():
            if idx < push_count:
                sender = int(push_parents[idx])
                receiver = int(push_children[idx])
                if alive is not None and not alive[sender]:
                    continue
                ledger.record_opens(np.asarray([sender]))
                ledger.record_pushes(np.asarray([sender]))
                if alive is not None and not alive[receiver]:
                    continue
            else:
                sender = int(tree.pull_parents[idx - push_count])
                receiver = int(tree.pull_children[idx - push_count])
                if alive is not None and not (alive[sender] and alive[receiver]):
                    continue
                ledger.record_opens(np.asarray([receiver]))
                ledger.record_pulls(np.asarray([sender]))
            knowledge.data[receiver] |= snapshot[sender]
        ledger.end_round()


def reference_memory_run(graph, seed, params, leader, failures=None):
    """Per-node mirror of ``MemoryGossiping.run`` (fixed leader)."""
    n = graph.n
    schedule = params.resolve(n)
    generator = make_rng(seed)
    ledger = TransmissionLedger(n)
    knowledge = KnowledgeMatrix(n)
    alive_full = (
        np.ones(n, dtype=bool) if failures is None else failures.alive_mask(n)
    )
    alive_phase1 = (
        alive_full if failures is not None and failures.applies_at("start") else None
    )
    alive_later = None if failures is None or failures.is_empty() else alive_full
    memory = NodeMemory(n, schedule.fanout)

    ledger.begin_phase("phase1-tree-construction")
    trees = []
    for tree_rng in spawn_rngs(generator, schedule.num_trees):
        trees.append(
            reference_build_tree(
                graph, knowledge, ledger, tree_rng, schedule, leader, memory,
                alive_phase1,
            )
        )
    ledger.end_phase()
    ledger.begin_phase("phase2-gather")
    for tree in trees:
        reference_gather(tree, knowledge, ledger, alive_later, schedule.gather_contacts)
    ledger.end_phase()
    ledger.begin_phase("phase3-broadcast")
    for tree in trees:
        reference_broadcast(
            tree, knowledge, ledger, alive_later, schedule.gather_contacts
        )
    ledger.end_phase()
    return trees, knowledge, ledger


def reference_leader_election(graph, seed, params, active_push_limit=None, failures=None):
    """Per-node mirror of ``LeaderElection.run``."""
    n = graph.n
    generator = make_rng(seed)
    alive = np.ones(n, dtype=bool) if failures is None else failures.alive_mask(n)
    ledger = TransmissionLedger(n)
    ledger.begin_phase("leader-election")
    probability = params.candidate_probability(n)
    candidate_mask = (generator.random(n) < probability) & alive
    if not candidate_mask.any():
        candidate_mask[generator.choice(np.flatnonzero(alive))] = True
    candidates = np.flatnonzero(candidate_mask)
    best_id = np.full(n, np.inf)
    best_id[candidates] = candidates.astype(np.float64)
    active = candidate_mask.copy()
    push_budget = np.full(n, -1, dtype=np.int64)
    if active_push_limit is not None:
        push_budget[candidates] = int(active_push_limit)
    memory = NodeMemory(n, params.memory_size)

    for _ in range(params.push_steps(n)):
        senders = np.flatnonzero(active & alive)
        if active_push_limit is not None and senders.size:
            senders = senders[push_budget[senders] != 0]
        targets = reference_open_avoid_one(graph, senders.tolist(), memory, generator)
        new_best = best_id.copy()
        for v, u in zip(senders.tolist(), targets):
            if u < 0:
                continue  # no neighbour available: nothing sent, nothing charged
            ledger.record_opens(np.asarray([v]))
            ledger.record_pushes(np.asarray([v]))
            if active_push_limit is not None:
                push_budget[v] = max(push_budget[v] - 1, 0)
            if not alive[u]:
                continue
            if best_id[v] < new_best[u]:
                new_best[u] = best_id[v]
        improved = new_best < best_id
        if active_push_limit is not None and improved.any():
            push_budget[improved] = int(active_push_limit)
        active |= improved
        best_id = new_best
        ledger.end_round()

    for _ in range(params.pull_steps(n)):
        callers = np.flatnonzero(alive)
        targets = reference_open_avoid_one(graph, callers.tolist(), memory, generator)
        new_best = best_id.copy()
        for v, u in zip(callers.tolist(), targets):
            if u < 0:
                continue
            ledger.record_opens(np.asarray([v]))
            if not alive[u]:
                continue
            if np.isfinite(best_id[u]):
                ledger.record_pulls(np.asarray([u]))
                if best_id[u] < new_best[v]:
                    new_best[v] = best_id[u]
        best_id = new_best
        ledger.end_round()

    ledger.end_phase()
    leaders = np.flatnonzero(
        candidate_mask & (best_id == np.arange(n, dtype=np.float64)) & alive
    )
    return leaders, candidates, ledger


def assert_ledgers_equal(a, b):
    assert a.rounds == b.rounds
    assert np.array_equal(a.channel_opens, b.channel_opens)
    assert np.array_equal(a.push_packets, b.push_packets)
    assert np.array_equal(a.pull_packets, b.pull_packets)
    for name in a.phases:
        assert a.phase_totals(name).as_dict() == b.phase_totals(name).as_dict()


def assert_trees_equal(a, b):
    assert a.root == b.root
    for attr in (
        "push_parents", "push_children", "push_steps",
        "pull_children", "pull_parents", "pull_steps", "informed_step",
    ):
        assert np.array_equal(getattr(a, attr), getattr(b, attr)), attr


@pytest.fixture(scope="module")
def equivalence_graph():
    n = 96
    return erdos_renyi(n, paper_edge_probability(n), rng=77, require_connected=True)


class TestMemoryGossipingEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_failures(self, equivalence_graph, seed):
        params = tuned_memory_gossiping()
        result = MemoryGossiping(params, leader=0).run(equivalence_graph, rng=seed)
        trees, knowledge, ledger = reference_memory_run(
            equivalence_graph, seed, params, leader=0
        )
        assert_trees_equal(result.extras["trees"][0], trees[0])
        assert np.array_equal(result.knowledge.data, knowledge.data)
        assert_ledgers_equal(result.ledger, ledger)

    @pytest.mark.parametrize("inject_at", ["start", "before_gather"])
    def test_with_failures(self, equivalence_graph, inject_at):
        n = equivalence_graph.n
        params = tuned_memory_gossiping().with_overrides(num_trees=2)
        plan = sample_uniform_failures(
            n, n // 8, rng=5, protect=[0], inject_at=inject_at
        )
        result = MemoryGossiping(params, leader=0).run(
            equivalence_graph, rng=9, failures=plan
        )
        trees, knowledge, ledger = reference_memory_run(
            equivalence_graph, 9, params, leader=0, failures=plan
        )
        for got, expected in zip(result.extras["trees"], trees):
            assert_trees_equal(got, expected)
        assert np.array_equal(result.knowledge.data, knowledge.data)
        assert_ledgers_equal(result.ledger, ledger)

    def test_first_contacts_mode(self, equivalence_graph):
        params = tuned_memory_gossiping().with_overrides(gather_contacts="first")
        result = MemoryGossiping(params, leader=3).run(equivalence_graph, rng=4)
        trees, knowledge, ledger = reference_memory_run(
            equivalence_graph, 4, params, leader=3
        )
        assert_trees_equal(result.extras["trees"][0], trees[0])
        assert np.array_equal(result.knowledge.data, knowledge.data)
        assert_ledgers_equal(result.ledger, ledger)


class TestLeaderElectionEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_plain(self, equivalence_graph, seed):
        params = LeaderElectionParameters()
        result = LeaderElection(params).run(equivalence_graph, rng=seed)
        leaders, candidates, ledger = reference_leader_election(
            equivalence_graph, seed, params
        )
        assert np.array_equal(result.leaders, leaders)
        assert np.array_equal(result.candidates, candidates)
        assert_ledgers_equal(result.ledger, ledger)

    def test_with_push_limit(self, equivalence_graph):
        params = LeaderElectionParameters()
        result = LeaderElection(params, active_push_limit=2).run(
            equivalence_graph, rng=11
        )
        leaders, candidates, ledger = reference_leader_election(
            equivalence_graph, 11, params, active_push_limit=2
        )
        assert np.array_equal(result.leaders, leaders)
        assert_ledgers_equal(result.ledger, ledger)

    def test_with_failures(self, equivalence_graph):
        n = equivalence_graph.n
        params = LeaderElectionParameters()
        plan = sample_uniform_failures(n, n // 6, rng=21, inject_at="start")
        result = LeaderElection(params).run(equivalence_graph, rng=13, failures=plan)
        leaders, candidates, ledger = reference_leader_election(
            equivalence_graph, 13, params, failures=plan
        )
        assert np.array_equal(result.leaders, leaders)
        assert np.array_equal(result.candidates, candidates)
        assert_ledgers_equal(result.ledger, ledger)
