"""Tests for repro.core.random_walks (Phase II machinery of Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.random_walks import WalkPool, start_walks
from repro.engine.knowledge import KnowledgeMatrix
from repro.engine.metrics import MessageAccounting, TransmissionLedger
from repro.engine.rng import make_rng
from repro.graphs import complete_graph, random_regular


@pytest.fixture()
def setting():
    graph = complete_graph(64)
    knowledge = KnowledgeMatrix(graph.n)
    ledger = TransmissionLedger(graph.n)
    return graph, knowledge, ledger


class TestStartWalks:
    def test_probability_zero_starts_nothing(self, setting):
        graph, knowledge, ledger = setting
        pool = start_walks(graph, knowledge, 0.0, 100, make_rng(1), ledger)
        assert pool.num_walks == 0
        assert pool.is_idle()
        assert ledger.total() == 0

    def test_probability_one_starts_everywhere(self, setting):
        graph, knowledge, ledger = setting
        pool = start_walks(graph, knowledge, 1.0, 100, make_rng(2), ledger)
        assert pool.num_walks == graph.n
        assert pool.walks_in_transit() == graph.n
        assert ledger.total(MessageAccounting.PUSHES) == graph.n
        assert ledger.total(MessageAccounting.OPENS) == graph.n

    def test_invalid_probability(self, setting):
        graph, knowledge, ledger = setting
        with pytest.raises(ValueError):
            start_walks(graph, knowledge, 1.5, 100, make_rng(3), ledger)

    def test_payloads_are_starter_messages(self, setting):
        graph, knowledge, ledger = setting
        pool = start_walks(graph, knowledge, 1.0, 100, make_rng(4), ledger)
        # Each payload contains exactly one message initially (the starter's own).
        assert np.all(np.bitwise_count(pool.payloads).sum(axis=1) == 1)

    def test_expected_number_of_walks(self, setting):
        graph, knowledge, ledger = setting
        pool = start_walks(graph, knowledge, 0.25, 100, make_rng(5), ledger)
        assert 4 <= pool.num_walks <= 32  # 16 expected, generous bounds


class TestWalkPoolDynamics:
    def test_deliver_merges_payload_and_node(self, setting):
        graph, knowledge, ledger = setting
        pool = WalkPool(knowledge.data[[0]].copy(), move_cap=10)
        pool.send(0, 5)
        pool.deliver(knowledge)
        # Node 5 learned message 0 and the walk learned message 5.
        assert knowledge.knows(5, 0)
        assert np.bitwise_count(pool.payloads[0]).sum() == 2
        assert pool.nodes_with_walks().tolist() == [5]

    def test_forward_step_moves_walks(self, setting):
        graph, knowledge, ledger = setting
        pool = WalkPool(knowledge.data[[0]].copy(), move_cap=10)
        pool.send(0, 5)
        pool.deliver(knowledge)
        forwarded = pool.forward_step(graph, make_rng(6), ledger)
        assert forwarded == 1
        assert pool.moves[0] == 1
        assert pool.queued_walks() == 0
        assert pool.walks_in_transit() == 1
        assert ledger.push_packets[5] == 1
        assert ledger.channel_opens[5] == 1

    def test_move_cap_retires_walks(self, setting):
        graph, knowledge, ledger = setting
        pool = WalkPool(knowledge.data[[0]].copy(), move_cap=0)
        pool.send(0, 5)
        pool.deliver(knowledge)  # moves=0 <= cap -> enqueued
        pool.forward_step(graph, make_rng(7), ledger)  # moves becomes 1
        pool.deliver(knowledge)  # over cap -> retired
        assert pool.retired == [0]
        assert pool.is_idle()

    def test_fifo_queue_order(self, setting):
        graph, knowledge, ledger = setting
        pool = WalkPool(knowledge.data[[0, 1]].copy(), move_cap=10)
        pool.send(0, 7)
        pool.send(1, 7)
        pool.deliver(knowledge)
        assert pool.queued_walks() == 2
        pool.forward_step(graph, make_rng(8), ledger)
        # Oldest walk (0) forwarded first; walk 1 still queued.
        assert pool.queued_walks() == 1
        assert list(pool.queues[7]) == [1]
        assert pool.moves[0] == 1 and pool.moves[1] == 0

    def test_walks_conserved(self):
        """Walks are never duplicated: queued + transit + retired == started."""
        graph = random_regular(128, 16, rng=1, require_connected=True)
        knowledge = KnowledgeMatrix(graph.n)
        ledger = TransmissionLedger(graph.n)
        rng = make_rng(9)
        pool = start_walks(graph, knowledge, 0.2, 5, rng, ledger)
        for _ in range(12):
            pool.deliver(knowledge)
            pool.forward_step(graph, rng, ledger)
            total = pool.queued_walks() + pool.walks_in_transit() + len(pool.retired)
            assert total == pool.num_walks

    def test_knowledge_spreads_via_walks(self):
        graph = complete_graph(32)
        knowledge = KnowledgeMatrix(graph.n)
        ledger = TransmissionLedger(graph.n)
        rng = make_rng(10)
        pool = start_walks(graph, knowledge, 1.0, 100, rng, ledger)
        for _ in range(10):
            pool.deliver(knowledge)
            pool.forward_step(graph, rng, ledger)
        # After several steps the average knowledge grew well beyond 1 message.
        assert knowledge.counts().mean() > 3

    def test_alive_mask_blocks_failed_hosts(self, setting):
        graph, knowledge, ledger = setting
        alive = np.ones(graph.n, dtype=bool)
        alive[5] = False
        pool = WalkPool(knowledge.data[[0]].copy(), move_cap=10)
        pool.send(0, 3)
        pool.deliver(knowledge)
        # Host 3 is alive; forwarding with a dead-host mask never sends to 5...
        # run a few steps and assert the walk never resides at node 5.
        rng = make_rng(11)
        for _ in range(20):
            pool.forward_step(graph, rng, ledger, alive=alive)
            pool.deliver(knowledge)
            assert 5 not in pool.nodes_with_walks().tolist()

    def test_bad_payload_shape_rejected(self):
        with pytest.raises(ValueError):
            WalkPool(np.zeros(4, dtype=np.uint64), move_cap=3)


class TestMaintainedCounters:
    """queued_walks / nodes_with_walks come from maintained flat-array state,
    not from re-summing per-node queues; they must stay consistent with the
    materialised ``queues`` view through arbitrary operation sequences."""

    def test_counters_track_queues_through_random_steps(self):
        graph = random_regular(64, 8, rng=2, require_connected=True)
        knowledge = KnowledgeMatrix(graph.n)
        ledger = TransmissionLedger(graph.n)
        rng = make_rng(21)
        pool = start_walks(graph, knowledge, 0.5, 3, rng, ledger)
        for _ in range(15):
            pool.deliver(knowledge)
            pool.forward_step(graph, rng, ledger)
            queues = pool.queues
            assert pool.queued_walks() == sum(len(q) for q in queues.values())
            assert pool.nodes_with_walks().tolist() == sorted(queues.keys())

    def test_queues_view_is_fifo_ordered(self, setting):
        graph, knowledge, ledger = setting
        pool = WalkPool(knowledge.data[[0, 1, 2]].copy(), move_cap=10)
        pool.send(2, 9)
        pool.send(0, 9)
        pool.send(1, 9)
        pool.deliver(knowledge)
        assert list(pool.queues[9]) == [2, 0, 1]
        assert pool.queued_walks() == 3
        assert pool.nodes_with_walks().tolist() == [9]

    def test_idle_pool_counters(self):
        pool = WalkPool(np.zeros((0, 2), dtype=np.uint64), move_cap=1)
        assert pool.queued_walks() == 0
        assert pool.walks_in_transit() == 0
        assert pool.nodes_with_walks().size == 0
        assert pool.is_idle()
