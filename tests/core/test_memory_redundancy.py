"""Tests for the gather-redundancy option of the memory model (E11 ablation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoryGossiping, tuned_memory_gossiping
from repro.engine import sample_uniform_failures


class TestGatherContactsValidation:
    def test_invalid_mode_rejected(self):
        params = tuned_memory_gossiping().with_overrides(gather_contacts="bogus")
        with pytest.raises(ValueError):
            params.resolve(128)

    def test_mode_recorded_in_schedule(self):
        params = tuned_memory_gossiping().with_overrides(gather_contacts="first")
        schedule = params.resolve(128)
        assert schedule.gather_contacts == "first"
        assert schedule.as_dict()["gather_contacts"] == "first"

    def test_default_is_all(self):
        assert tuned_memory_gossiping().resolve(128).gather_contacts == "all"


class TestFirstContactTree:
    def test_first_contact_indices_form_spanning_structure(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=1)
        tree = result.extras["trees"][0]
        idx = tree.first_contact_push_indices()
        children = tree.push_children[idx]
        # Each child appears at most once (strict tree) and was informed by
        # exactly that contact.
        assert len(set(children.tolist())) == children.size
        for i in idx.tolist():
            child = tree.push_children[i]
            assert tree.informed_step[child] == tree.push_steps[i] + 1
        # Every push-phase-informed node (except the root) has a first contact.
        push_informed = np.flatnonzero(
            (tree.informed_step >= 0)
            & (tree.informed_step <= tree.push_steps.max() + 1)
        )
        push_informed = push_informed[push_informed != tree.root]
        pull_children = set(tree.pull_children.tolist())
        expected = {int(v) for v in push_informed if int(v) not in pull_children}
        assert expected <= set(children.tolist())

    def test_first_contact_completes_without_failures(self, small_paper_graph):
        params = tuned_memory_gossiping().with_overrides(gather_contacts="first")
        result = MemoryGossiping(params, leader=0).run(small_paper_graph, rng=2)
        assert result.completed
        assert result.extras["lost_messages"] == 0

    def test_first_contact_is_cheaper(self, medium_paper_graph):
        all_mode = MemoryGossiping(leader=0).run(medium_paper_graph, rng=3)
        first_mode = MemoryGossiping(
            tuned_memory_gossiping().with_overrides(gather_contacts="first"), leader=0
        ).run(medium_paper_graph, rng=3)
        assert first_mode.messages_per_node() < all_mode.messages_per_node()
        assert first_mode.completed

    def test_first_contact_less_robust_under_heavy_failures(self, medium_paper_graph):
        n = medium_paper_graph.n
        plan = sample_uniform_failures(n, n // 3, rng=4, protect=[0])
        results = {}
        for mode in ("all", "first"):
            params = tuned_memory_gossiping().with_overrides(
                num_trees=2, gather_contacts=mode
            )
            protocol = MemoryGossiping(params, leader=0, gather_only=True)
            results[mode] = protocol.run(medium_paper_graph, rng=5, failures=plan)
        assert (
            results["first"].extras["lost_messages"]
            >= results["all"].extras["lost_messages"]
        )
