"""Tests for repro.core.memory_gossiping (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MemoryGossiping,
    PushPullGossip,
    tuned_memory_gossiping,
)
from repro.engine import MessageAccounting, sample_uniform_failures
from repro.graphs import complete_graph


class TestCompletion:
    def test_completes_on_paper_graph(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=1)
        assert result.completed
        assert result.knowledge.is_complete()
        assert result.extras["lost_messages"] == 0

    def test_completes_on_complete_graph(self, small_complete_graph):
        result = MemoryGossiping(leader=0).run(small_complete_graph, rng=2)
        assert result.completed

    def test_completes_on_regular_graph(self, small_regular_graph):
        result = MemoryGossiping(leader=0).run(small_regular_graph, rng=3)
        assert result.completed

    def test_random_leader_when_unspecified(self, small_paper_graph):
        result = MemoryGossiping().run(small_paper_graph, rng=4)
        assert result.completed
        assert 0 <= result.extras["leader"] < small_paper_graph.n

    def test_elected_leader(self, small_paper_graph):
        result = MemoryGossiping(elect_leader=True).run(small_paper_graph, rng=5)
        assert result.completed
        assert result.extras["election_unique"]
        # The election cost is merged into the ledger: the leader-election
        # phase must appear alongside the gossiping phases.
        assert "leader-election" in result.ledger.phases

    def test_deterministic(self, small_paper_graph):
        a = MemoryGossiping(leader=0).run(small_paper_graph, rng=6)
        b = MemoryGossiping(leader=0).run(small_paper_graph, rng=6)
        assert a.total_messages() == b.total_messages()
        assert a.rounds == b.rounds

    def test_invalid_leader(self, small_paper_graph):
        with pytest.raises(ValueError):
            MemoryGossiping(leader=small_paper_graph.n).run(small_paper_graph, rng=7)

    def test_gather_only_stops_before_broadcast(self, small_paper_graph):
        result = MemoryGossiping(leader=0, gather_only=True).run(small_paper_graph, rng=8)
        assert not result.completed  # Phase III skipped
        # But the leader has gathered everything.
        assert result.extras["lost_messages"] == 0
        assert result.knowledge.counts()[0] == small_paper_graph.n
        assert "phase3-broadcast" not in result.ledger.phases


class TestTreeStructure:
    def test_tree_covers_all_nodes(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=9)
        tree = result.extras["trees"][0]
        assert tree.covers_all()
        assert tree.root == 0
        assert tree.num_informed == small_paper_graph.n

    def test_children_informed_after_parents(self, small_paper_graph):
        """Every push contact happens strictly after the parent was informed."""
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=10)
        tree = result.extras["trees"][0]
        for parent, step in zip(tree.push_parents.tolist(), tree.push_steps.tolist()):
            assert tree.informed_step[parent] <= step

    def test_pull_parents_informed_before_edge(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=11)
        tree = result.extras["trees"][0]
        for parent, step in zip(tree.pull_parents.tolist(), tree.pull_steps.tolist()):
            assert 0 <= tree.informed_step[parent] <= step

    def test_fanout_bound_on_contacts_per_parent(self, small_paper_graph):
        """Each node contacts at most `fanout` children per tree (it is active once)."""
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=12)
        tree = result.extras["trees"][0]
        schedule = tuned_memory_gossiping().resolve(small_paper_graph.n)
        counts = np.bincount(tree.push_parents, minlength=small_paper_graph.n)
        assert counts.max() <= schedule.fanout

    def test_multiple_trees(self, small_paper_graph):
        params = tuned_memory_gossiping().with_overrides(num_trees=3)
        result = MemoryGossiping(params, leader=0).run(small_paper_graph, rng=13)
        assert result.extras["num_trees"] == 3
        assert len(result.extras["trees"]) == 3
        assert result.completed

    def test_depth_estimate_positive(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=14)
        tree = result.extras["trees"][0]
        assert tree.depth_estimate() > 0
        assert tree.num_push_edges > 0


class TestMessageComplexity:
    def test_constant_messages_per_node(self, medium_paper_graph):
        """Theorem 2: O(n) transmissions, i.e. O(1) per node."""
        result = MemoryGossiping(leader=0).run(medium_paper_graph, rng=15)
        assert result.messages_per_node() < 10.0

    def test_much_cheaper_than_push_pull(self, medium_paper_graph):
        memory = MemoryGossiping(leader=0).run(medium_paper_graph, rng=16)
        baseline = PushPullGossip().run(medium_paper_graph, rng=17)
        assert memory.messages_per_node() < 0.5 * baseline.messages_per_node()

    def test_cost_roughly_size_independent(self, small_paper_graph, medium_paper_graph):
        small = MemoryGossiping(leader=0).run(small_paper_graph, rng=18)
        large = MemoryGossiping(leader=0).run(medium_paper_graph, rng=19)
        # Bounded by a constant: the two sizes differ by at most a few packets.
        assert abs(small.messages_per_node() - large.messages_per_node()) < 4.0

    def test_phase_accounting_present(self, small_paper_graph):
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=20)
        assert set(result.ledger.phases) == {
            "phase1-tree-construction",
            "phase2-gather",
            "phase3-broadcast",
        }
        assert result.ledger.phase_totals("phase2-gather").packets > 0


class TestRoundAccounting:
    def test_no_pull_rounds_burned_after_coverage(self, small_paper_graph):
        """Regression: with ``run_pull_until_complete`` the pull budget used
        to keep executing ``fanout`` no-op rounds per remaining long-step
        after every node was already informed, inflating ``rounds``.

        With the fix, Phase I stops right after the pull round that informs
        the last node, so its round count equals the largest informing step.
        """
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=40)
        assert result.completed
        tree = result.extras["trees"][0]
        assert tree.pull_steps.size > 0  # coverage completed during the pulls
        phase1 = result.ledger.phase_totals("phase1-tree-construction")
        assert phase1.rounds == int(tree.informed_step.max())

    def test_phase1_round_count_matches_schedule(self):
        """Phase I executes exactly the long-steps it runs — ``fanout``
        rounds per push long-step actually taken, plus pull rounds only while
        uninformed callers remain."""
        graph = complete_graph(64)
        params = tuned_memory_gossiping().with_overrides(push_longsteps_factor=6.0)
        result = MemoryGossiping(params, leader=0).run(graph, rng=41)
        tree = result.extras["trees"][0]
        schedule = params.resolve(graph.n)
        fanout = schedule.fanout
        assert tree.pull_steps.size == 0
        # The last informing long-step is followed by exactly one more
        # (contact-only) long-step after which the frontier empties.
        last_informing = int(np.ceil(tree.informed_step.max() / fanout))
        expected_longsteps = min(last_informing + 1, schedule.push_longsteps)
        phase1 = result.ledger.phase_totals("phase1-tree-construction")
        assert phase1.rounds == expected_longsteps * fanout

    def test_pull_budget_respected_when_incomplete(self, small_paper_graph):
        """Without ``run_pull_until_complete`` the pull phase still runs at
        most ``pull_longsteps`` long-steps."""
        params = tuned_memory_gossiping().with_overrides(
            run_pull_until_complete=False, push_longsteps_factor=0.25
        )
        schedule = params.resolve(small_paper_graph.n)
        result = MemoryGossiping(params, leader=0).run(small_paper_graph, rng=42)
        phase1 = result.ledger.phase_totals("phase1-tree-construction")
        max_rounds = (schedule.push_longsteps + schedule.pull_longsteps) * schedule.fanout
        assert phase1.rounds <= max_rounds


class TestCrashedCalleeRecords:
    def test_dead_callee_contact_recorded_once_and_charged_once(self, small_paper_graph):
        """Regression: the crashed-callee branch duplicated the record
        code path; every push contact (dead or alive callee) must appear
        exactly once and cost exactly one open + one push packet."""
        n = small_paper_graph.n
        plan = sample_uniform_failures(n, n // 4, rng=43, protect=[0], inject_at="start")
        alive = plan.alive_mask(n)
        result = MemoryGossiping(leader=0).run(small_paper_graph, rng=44, failures=plan)
        tree = result.extras["trees"][0]
        # One packet and one open per recorded push contact.
        phase1 = result.ledger.phase_totals("phase1-tree-construction")
        assert phase1.push_packets == tree.num_push_edges
        # Opens = push contacts + pull-phase opens; the latter are at least
        # the answered pulls, so the push side pins exactly one open each.
        assert phase1.channel_opens - phase1.pull_packets >= tree.num_push_edges
        # Contacts to crashed callees exist but never inform them.
        dead_children = tree.push_children[~alive[tree.push_children]]
        assert dead_children.size > 0
        assert np.all(tree.informed_step[~alive] == -1)
        # No (parent, child, step) triple is recorded twice.
        triples = set(
            zip(
                tree.push_parents.tolist(),
                tree.push_children.tolist(),
                tree.push_steps.tolist(),
            )
        )
        assert len(triples) == tree.num_push_edges


class TestFailures:
    def test_failures_before_gather_lose_few_messages(self, medium_paper_graph):
        n = medium_paper_graph.n
        params = tuned_memory_gossiping().with_overrides(num_trees=3)
        protocol = MemoryGossiping(params, leader=0, gather_only=True)
        plan = sample_uniform_failures(n, n // 20, rng=21, protect=[0])
        result = protocol.run(medium_paper_graph, rng=22, failures=plan)
        # 5% failures: the three trees provide enough redundancy that almost
        # no healthy message is lost.
        assert result.extras["lost_messages"] <= n // 100

    def test_more_failures_lose_more(self, medium_paper_graph):
        n = medium_paper_graph.n
        params = tuned_memory_gossiping().with_overrides(num_trees=1)
        protocol = MemoryGossiping(params, leader=0, gather_only=True)
        few = protocol.run(
            medium_paper_graph,
            rng=23,
            failures=sample_uniform_failures(n, n // 50, rng=24, protect=[0]),
        )
        many = protocol.run(
            medium_paper_graph,
            rng=23,
            failures=sample_uniform_failures(n, n // 2, rng=25, protect=[0]),
        )
        assert many.extras["lost_messages"] >= few.extras["lost_messages"]
        assert many.extras["lost_messages"] > 0

    def test_lost_messages_exclude_failed_nodes(self, medium_paper_graph):
        n = medium_paper_graph.n
        plan = sample_uniform_failures(n, n // 3, rng=26, protect=[0])
        protocol = MemoryGossiping(leader=0, gather_only=True)
        result = protocol.run(medium_paper_graph, rng=27, failures=plan)
        lost = set(result.extras["lost_message_ids"].tolist())
        assert not lost & set(plan.failed.tolist())

    def test_leader_must_not_fail(self, small_paper_graph):
        plan = sample_uniform_failures(small_paper_graph.n, 3, rng=28)
        if 0 not in plan.failed:
            plan = sample_uniform_failures(
                small_paper_graph.n, small_paper_graph.n - 1, rng=28
            )
        with pytest.raises(ValueError):
            MemoryGossiping(leader=0).run(small_paper_graph, rng=29, failures=plan)

    def test_unsupported_injection_point(self, small_paper_graph):
        # A plan naming an unknown point would silently never fire, so
        # construction itself rejects it.
        with pytest.raises(ValueError, match="unknown injection point"):
            sample_uniform_failures(
                small_paper_graph.n, 2, rng=30, inject_at="mid-broadcast"
            )

    def test_zero_failures_equivalent_to_no_plan(self, small_paper_graph):
        from repro.engine.failures import FailurePlan

        empty = FailurePlan(failed=np.zeros(0, dtype=np.int64))
        a = MemoryGossiping(leader=0).run(small_paper_graph, rng=32, failures=empty)
        b = MemoryGossiping(leader=0).run(small_paper_graph, rng=32)
        assert a.total_messages() == b.total_messages()
        assert a.completed and b.completed
