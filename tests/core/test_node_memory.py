"""Tests for repro.core.node_memory (shared vectorized ring buffer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node_memory import NodeMemory, open_avoid_fanout, open_avoid_one
from repro.engine.rng import make_rng
from repro.graphs.adjacency import Adjacency


def star_graph(n: int) -> Adjacency:
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), np.arange(1, n)])
    return Adjacency.from_edges(n, edges)


class TestNodeMemory:
    def test_store_many_matches_sequential_stores(self):
        batched = NodeMemory(6, 4)
        sequential = NodeMemory(6, 4)
        nodes = np.asarray([0, 2, 5], dtype=np.int64)
        addresses = np.asarray([[1, 3], [4, -1], [0, 2]], dtype=np.int64)
        batched.store_many(nodes, addresses)
        for node, row in zip(nodes.tolist(), addresses.tolist()):
            for address in row:
                if address >= 0:
                    sequential.store(node, address)
        assert np.array_equal(batched.slots, sequential.slots)
        assert np.array_equal(batched.pointer, sequential.pointer)

    def test_ring_buffer_wraps(self):
        memory = NodeMemory(2, 2)
        memory.store_many(np.asarray([0]), np.asarray([[10, 11, 12]]))
        # Three stores in a two-slot buffer: the first address is evicted.
        assert sorted(memory.remembered(0).tolist()) == [11, 12]
        assert memory.pointer[0] == 3

    def test_negative_addresses_skipped(self):
        memory = NodeMemory(3, 4)
        memory.store_many(np.asarray([0, 1]), np.asarray([-1, 2]))
        assert memory.remembered(0).size == 0
        assert memory.remembered(1).tolist() == [2]

    def test_avoid_rows_is_a_copy(self):
        memory = NodeMemory(3, 2)
        memory.store(1, 2)
        rows = memory.avoid_rows(np.asarray([1]))
        rows[0, 0] = 99
        assert 99 not in memory.slots


class TestOpenAvoidKernels:
    def test_open_avoid_one_stores_and_avoids(self):
        graph = star_graph(6)
        memory = NodeMemory(6, 4)
        rng = make_rng(1)
        seen = []
        for _ in range(4):
            target = open_avoid_one(graph, np.asarray([0]), memory, rng)[0]
            assert target not in seen  # memory blocks re-contacting
            seen.append(int(target))
        assert sorted(seen) == sorted(memory.remembered(0).tolist())

    def test_open_avoid_one_falls_back_when_memory_blocks_all(self):
        # Node 1's only neighbour is 0; once stored, the avoid sample fails
        # and the uniform fallback must re-open the same channel.
        graph = star_graph(3)
        memory = NodeMemory(3, 4)
        rng = make_rng(2)
        assert open_avoid_one(graph, np.asarray([1]), memory, rng)[0] == 0
        assert open_avoid_one(graph, np.asarray([1]), memory, rng)[0] == 0
        # The fallback contact is stored again (duplicate slots are legal).
        assert memory.remembered(1).tolist() == [0, 0]

    def test_open_avoid_one_isolated_node_untouched(self):
        """An isolated caller opens no channel and stores nothing — the
        ledger-accounting contract of the open-accounting bugfix."""
        graph = Adjacency.from_edges(3, np.asarray([[0, 1]]))
        memory = NodeMemory(3, 4)
        targets = open_avoid_one(graph, np.asarray([2, 0]), memory, make_rng(3))
        assert targets[0] == -1
        assert memory.remembered(2).size == 0
        assert memory.pointer[2] == 0
        assert targets[1] == 1

    def test_open_avoid_fanout_distinct_no_fallback(self):
        graph = star_graph(5)
        memory = NodeMemory(5, 4)
        targets = open_avoid_fanout(graph, np.asarray([0]), memory, make_rng(4), 4)
        row = targets[0]
        assert len(set(row.tolist())) == 4
        # Memory now blocks everything; without fallback the next call
        # returns only -1 entries and stores nothing new.
        pointer = memory.pointer[0]
        again = open_avoid_fanout(graph, np.asarray([0]), memory, make_rng(5), 4)
        assert np.all(again == -1)
        assert memory.pointer[0] == pointer
