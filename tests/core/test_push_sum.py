"""Tests for push-sum averaging under both execution clocks.

Push-sum carries two exact invariants that make it a sharp correctness
probe for the event-clock engine: total mass ``sum(s)`` / ``sum(w)`` never
changes (every update only moves halves around) and the estimate spread
``max(s/w) - min(s/w)`` is monotone non-increasing (every update forms
convex combinations of existing ratios).  Per-step variance is *not*
monotone — only overall decay is required.  The event-mode group update is
additionally pinned bit-identical to a one-event-at-a-time sequential
replay of the same stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PushSumGossip, PushSumParameters
from repro.engine.event_clock import EventScheduler
from repro.engine.failures import sample_uniform_failures
from repro.graphs import complete_graph, erdos_renyi, paper_edge_probability


@pytest.fixture(scope="module")
def graph():
    n = 96
    return erdos_renyi(n, paper_edge_probability(n), rng=7, require_connected=True)


@pytest.fixture(scope="module", params=["sync", "event"])
def converged(request, graph):
    """One converged run per clock, shared by the invariant tests."""
    result = PushSumGossip().run(graph, rng=31, clock=request.param)
    assert result.completed
    return result


class TestInvariants:
    def test_mass_is_conserved(self, converged):
        assert converged.extras["mass_error"] <= 1e-12
        assert max(converged.extras["series"]["mass_error"]) <= 1e-12

    def test_spread_is_monotone_nonincreasing(self, converged):
        spread = converged.extras["series"]["spread"]
        for before, after in zip(spread, spread[1:]):
            assert after <= before + 1e-12

    def test_spread_converges_below_tolerance(self, converged):
        assert converged.extras["spread"] <= PushSumParameters().tolerance

    def test_variance_decays_overall(self, converged):
        assert (
            converged.extras["variance_final"]
            < converged.extras["variance_initial"]
        )

    def test_estimates_converge_to_true_mean(self, converged):
        assert converged.extras["true_mean"] == pytest.approx(0.5)
        assert converged.extras["estimate_error"] <= 1e-7

    def test_times_increase(self, converged):
        times = converged.extras["series"]["time"]
        assert all(b > a for a, b in zip(times, times[1:]))


class TestEventModeBitIdentity:
    def test_group_update_matches_sequential_replay(self, graph):
        """The vectorised group update performs the same float additions in
        the same order as per-event application: identical bits, not just
        identical up to tolerance."""
        n = graph.n
        x = np.arange(n, dtype=np.float64) / float(n - 1)
        s_batched, w_batched = x.copy(), np.ones(n)
        s_seq, w_seq = x.copy(), np.ones(n)
        scheduler = EventScheduler(
            graph, np.random.default_rng(13), max_events=6 * n
        )
        for group in scheduler.groups():
            if not group.size:
                continue
            callers, targets = group.callers, group.targets
            s_half = 0.5 * s_batched[callers]
            w_half = 0.5 * w_batched[callers]
            s_batched[callers] = s_half
            w_batched[callers] = w_half
            s_batched[targets] += s_half
            w_batched[targets] += w_half
            for c, t in zip(callers.tolist(), targets.tolist()):
                sh, wh = 0.5 * s_seq[c], 0.5 * w_seq[c]
                s_seq[c] = sh
                w_seq[c] = wh
                s_seq[t] += sh
                w_seq[t] += wh
        assert np.array_equal(s_batched, s_seq)
        assert np.array_equal(w_batched, w_seq)

    def test_event_runs_are_deterministic(self, graph):
        a = PushSumGossip().run(graph, rng=31, clock="event")
        b = PushSumGossip().run(graph, rng=31, clock="event")
        assert a.extras["series"] == b.extras["series"]
        assert a.rounds == b.rounds
        assert a.extras["events"] == b.extras["events"]


class TestConfiguration:
    def test_uniform_values_preset(self, graph):
        result = PushSumGossip(PushSumParameters(values="uniform")).run(
            graph, rng=31
        )
        assert result.completed
        assert result.extras["true_mean"] != pytest.approx(0.5, abs=1e-6)
        assert result.extras["mass_error"] <= 1e-12

    def test_unknown_values_preset_rejected(self):
        with pytest.raises(ValueError, match="values preset"):
            PushSumGossip(PushSumParameters(values="gaussian"))

    def test_unknown_clock_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown clock"):
            PushSumGossip().run(graph, rng=1, clock="warped")

    def test_failure_plans_rejected(self, graph):
        plan = sample_uniform_failures(graph.n, 4, rng=1)
        with pytest.raises(ValueError, match="failure plans"):
            PushSumGossip().run(graph, rng=1, failures=plan)

    def test_params_clock_default(self, graph):
        result = PushSumGossip(PushSumParameters(clock="event")).run(graph, rng=9)
        assert result.extras["clock"] == "event"

    def test_result_shape(self, graph):
        result = PushSumGossip().run(graph, rng=31)
        assert result.protocol == "push-sum"
        assert result.knowledge is None
        assert result.rounds == len(result.extras["series"]["spread"])

    def test_works_on_complete_graph(self):
        result = PushSumGossip().run(complete_graph(64), rng=3, clock="event")
        assert result.completed

    def test_max_rounds_abort(self, graph):
        params = PushSumParameters(tolerance=0.0, max_rounds_factor=0.5)
        result = PushSumGossip(params).run(graph, rng=31)
        assert not result.completed
        assert result.rounds == params.max_rounds(graph.n)
