"""Tests for repro.core.parameters (Table 1 constants and schedules)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import (
    FastGossipingParameters,
    LeaderElectionParameters,
    MemoryGossipingParameters,
    PushPullParameters,
    log2,
    loglog2,
    table1_rows,
    theory_fast_gossiping,
    tuned_fast_gossiping,
    tuned_memory_gossiping,
)


class TestLogHelpers:
    def test_log2_matches_math(self):
        assert log2(1024) == pytest.approx(10.0)

    def test_log2_guarded(self):
        assert log2(1) == pytest.approx(1.0)
        assert log2(0) == pytest.approx(1.0)

    def test_loglog2(self):
        assert loglog2(2**16) == pytest.approx(4.0)
        assert loglog2(2) >= 1.0


class TestFastGossipingSchedule:
    def test_tuned_matches_table1_formulas(self):
        """Resolved values follow Table 1: ceil(1.2 loglog n), ceil(log n/loglog n), ..."""
        n = 2**20
        schedule = tuned_fast_gossiping().resolve(n)
        ln, lln = 20.0, math.log2(20.0)
        assert schedule.distribution_steps == math.ceil(1.2 * lln)
        assert schedule.rounds == math.ceil(ln / lln)
        assert schedule.walk_probability == pytest.approx(1.0 / ln)
        assert schedule.walk_steps == math.ceil(ln / lln + 2)
        assert schedule.broadcast_steps == math.ceil(0.5 * lln)

    def test_theory_preset_is_larger(self):
        n = 2**16
        tuned = tuned_fast_gossiping().resolve(n)
        theory = theory_fast_gossiping().resolve(n)
        assert theory.distribution_steps > tuned.distribution_steps
        assert theory.rounds > tuned.rounds

    def test_schedule_monotone_in_n(self):
        params = tuned_fast_gossiping()
        small = params.resolve(2**10)
        large = params.resolve(2**20)
        assert large.rounds >= small.rounds
        assert large.walk_probability <= small.walk_probability

    def test_all_fields_positive(self):
        for n in (16, 256, 4096, 10**6):
            schedule = tuned_fast_gossiping().resolve(n)
            data = schedule.as_dict()
            for key, value in data.items():
                if key == "n":
                    continue
                assert value > 0, key

    def test_with_overrides(self):
        params = tuned_fast_gossiping().with_overrides(walk_probability_factor=3.0)
        assert params.walk_probability_factor == 3.0
        assert tuned_fast_gossiping().walk_probability_factor == 1.0

    def test_walk_probability_capped_at_one(self):
        params = FastGossipingParameters(walk_probability_factor=100.0)
        assert params.resolve(16).walk_probability == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=4, max_value=10**7))
    def test_property_schedule_valid_for_all_n(self, n):
        schedule = tuned_fast_gossiping().resolve(n)
        assert schedule.distribution_steps >= 1
        assert schedule.rounds >= 1
        assert 0 < schedule.walk_probability <= 1
        assert schedule.walk_steps >= 1
        assert schedule.broadcast_steps >= 1


class TestMemoryGossipingSchedule:
    def test_push_steps_multiple_of_fanout(self):
        for n in (100, 1000, 10**6):
            schedule = tuned_memory_gossiping().resolve(n)
            assert (schedule.push_longsteps * schedule.fanout) % schedule.fanout == 0
            assert schedule.push_longsteps * schedule.fanout >= 2 * log2(n) - 1

    def test_table1_formulas(self):
        n = 2**20
        schedule = tuned_memory_gossiping().resolve(n)
        assert schedule.push_longsteps * schedule.fanout == 40  # 2 * log2(n) = 40
        assert schedule.pull_longsteps == int(2.0 * math.log2(20.0))
        assert schedule.broadcast_steps == 20

    def test_tree_capacity_covers_graph(self):
        """fanout^push_longsteps must exceed n so the tree can reach everyone."""
        for n in (256, 4096, 10**5):
            schedule = tuned_memory_gossiping().resolve(n)
            assert schedule.fanout ** schedule.push_longsteps >= n

    def test_with_overrides(self):
        params = tuned_memory_gossiping().with_overrides(num_trees=3)
        assert params.resolve(100).num_trees == 3

    def test_as_dict(self):
        data = tuned_memory_gossiping().resolve(1024).as_dict()
        assert data["fanout"] == 4
        assert data["phase1_push_steps"] == data["phase1_push_longsteps"] * 4


class TestLeaderElectionParameters:
    def test_candidate_probability(self):
        params = LeaderElectionParameters()
        assert params.candidate_probability(2**10) == pytest.approx(100 / 1024)
        assert params.candidate_probability(4) <= 1.0

    def test_step_counts(self):
        params = LeaderElectionParameters()
        n = 2**16
        assert params.push_steps(n) == math.ceil(16 + 2 * 4)
        assert params.pull_steps(n) == math.ceil(2 * 4)

    def test_expected_candidates_grow_slowly(self):
        params = LeaderElectionParameters()
        assert params.candidate_probability(10**6) * 10**6 == pytest.approx(
            math.log2(10**6) ** 2
        )


class TestPushPullParameters:
    def test_max_rounds(self):
        assert PushPullParameters().max_rounds(1024) == 80
        assert PushPullParameters(max_rounds_factor=2.0).max_rounds(1024) == 20

    def test_minimum_bound(self):
        assert PushPullParameters(max_rounds_factor=0.001).max_rounds(4) >= 4


class TestTable1Rows:
    def test_structure(self):
        rows = table1_rows(10**6)
        assert set(rows) == {"algorithm1_fast_gossiping", "algorithm2_memory_model"}
        assert rows["algorithm1_fast_gossiping"]["n"] == 10**6
        assert rows["algorithm2_memory_model"]["fanout"] == 4

    def test_values_match_direct_resolution(self):
        n = 4096
        rows = table1_rows(n)
        assert rows["algorithm1_fast_gossiping"] == tuned_fast_gossiping().resolve(n).as_dict()
        assert rows["algorithm2_memory_model"] == tuned_memory_gossiping().resolve(n).as_dict()
