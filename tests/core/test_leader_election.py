"""Tests for repro.core.leader_election (Algorithm 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import LeaderElection, LeaderElectionParameters
from repro.engine import MessageAccounting, sample_uniform_failures
from repro.graphs import complete_graph


class TestElection:
    def test_unique_leader_on_paper_graph(self, small_paper_graph):
        result = LeaderElection().run(small_paper_graph, rng=1)
        assert result.unique
        assert result.leader == int(result.candidates.min())

    def test_unique_leader_on_complete_graph(self, small_complete_graph):
        result = LeaderElection().run(small_complete_graph, rng=2)
        assert result.unique

    def test_leader_is_smallest_candidate(self, medium_paper_graph):
        for seed in range(3):
            result = LeaderElection().run(medium_paper_graph, rng=seed)
            assert result.unique
            assert result.leader == int(result.candidates.min())

    def test_candidate_count_near_expectation(self, medium_paper_graph):
        n = medium_paper_graph.n
        result = LeaderElection().run(medium_paper_graph, rng=3)
        expected = math.log2(n) ** 2
        assert 0.3 * expected <= result.candidates.size <= 3 * expected

    def test_rounds_match_parameters(self, small_paper_graph):
        params = LeaderElectionParameters()
        result = LeaderElection(params).run(small_paper_graph, rng=4)
        n = small_paper_graph.n
        assert result.rounds == params.push_steps(n) + params.pull_steps(n)

    def test_deterministic(self, small_paper_graph):
        a = LeaderElection().run(small_paper_graph, rng=5)
        b = LeaderElection().run(small_paper_graph, rng=5)
        assert a.leader == b.leader
        assert a.ledger.total() == b.ledger.total()

    def test_most_nodes_learn_the_leader(self, small_paper_graph):
        result = LeaderElection().run(small_paper_graph, rng=6)
        assert result.aware_of_leader.sum() > 0.9 * small_paper_graph.n

    def test_degenerate_no_candidate_still_elects(self):
        # Tiny graph where the candidate probability may produce nobody: the
        # implementation promotes one node so an election always returns.
        graph = complete_graph(4)
        params = LeaderElectionParameters(candidate_probability_factor=1e-9)
        result = LeaderElection(params).run(graph, rng=7)
        assert result.leaders.size >= 1
        assert result.candidates.size == 1

    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            LeaderElection().run(complete_graph(1), rng=1)


class TestCost:
    def test_pseudocode_cost_scales_with_log_n(self, medium_paper_graph):
        result = LeaderElection().run(medium_paper_graph, rng=8)
        n = medium_paper_graph.n
        per_node = result.messages_per_node()
        assert per_node <= 4 * math.log2(n)
        assert per_node >= 1.0

    def test_budgeted_variant_is_cheaper(self, medium_paper_graph):
        full = LeaderElection().run(medium_paper_graph, rng=9)
        budgeted = LeaderElection(active_push_limit=3).run(medium_paper_graph, rng=9)
        assert budgeted.messages_per_node() < full.messages_per_node()
        assert budgeted.unique

    def test_opens_counted(self, small_paper_graph):
        result = LeaderElection().run(small_paper_graph, rng=10)
        assert result.ledger.total(MessageAccounting.OPENS) >= result.ledger.total(
            MessageAccounting.PUSHES
        )


class TestOpenAccounting:
    def _graph_with_isolated_node(self):
        # Nodes 0..5 form a ring; node 6 is isolated but alive.
        edges = np.asarray([(i, (i + 1) % 6) for i in range(6)], dtype=np.int64)
        from repro.graphs.adjacency import Adjacency

        return Adjacency.from_edges(7, edges), 6

    def test_isolated_node_never_charged_an_open(self):
        """A caller with no neighbour opens no channel and sends nothing.

        Regression: the per-node loop recorded an open (and a push packet)
        even when ``open-avoid`` returned -1, inflating the ledger for
        isolated-but-alive callers in every step.
        """
        graph, isolated = self._graph_with_isolated_node()
        result = LeaderElection().run(graph, rng=31)
        assert result.ledger.channel_opens[isolated] == 0
        assert result.ledger.push_packets[isolated] == 0
        assert result.ledger.pull_packets[isolated] == 0
        # Connected nodes participated normally.
        connected = np.arange(6)
        assert result.ledger.channel_opens[connected].min() > 0

    def test_push_limit_transmission_counts(self):
        """With a single candidate every node improves at most once, so the
        budgeted variant sends at most ``active_push_limit`` push packets per
        node (the budget is refilled only on strict improvement)."""
        graph = complete_graph(64)
        params = LeaderElectionParameters(candidate_probability_factor=1e-9)
        limit = 3
        result = LeaderElection(params, active_push_limit=limit).run(graph, rng=33)
        assert result.candidates.size == 1
        assert result.leaders.size == 1
        assert int(result.ledger.push_packets.max()) <= limit
        # The candidate itself spent its full budget.
        candidate = int(result.candidates[0])
        assert result.ledger.push_packets[candidate] == limit


class TestRobustness:
    def test_survives_random_failures(self, medium_paper_graph):
        n = medium_paper_graph.n
        plan = sample_uniform_failures(n, int(n ** 0.25), rng=11, inject_at="start")
        result = LeaderElection().run(medium_paper_graph, rng=12, failures=plan)
        assert result.leaders.size >= 1
        # No failed node can be the leader.
        assert not set(result.leaders.tolist()) & set(plan.failed.tolist())

    def test_unsupported_injection_point(self, small_paper_graph):
        plan = sample_uniform_failures(small_paper_graph.n, 2, rng=1)
        with pytest.raises(ValueError):
            LeaderElection().run(small_paper_graph, failures=plan, rng=13)
