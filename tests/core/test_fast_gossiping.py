"""Tests for repro.core.fast_gossiping (Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    FastGossiping,
    PushPullGossip,
    theory_fast_gossiping,
    tuned_fast_gossiping,
)
from repro.engine import MessageAccounting, sample_uniform_failures
from repro.graphs import complete_graph, hypercube


class TestCompletion:
    def test_completes_on_paper_graph(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=1)
        assert result.completed
        assert result.knowledge.is_complete()
        assert result.protocol == "fast-gossiping"

    def test_completes_on_complete_graph(self, small_complete_graph):
        result = FastGossiping().run(small_complete_graph, rng=2)
        assert result.completed

    def test_completes_on_regular_graph(self, small_regular_graph):
        result = FastGossiping().run(small_regular_graph, rng=3)
        assert result.completed

    def test_deterministic_given_seed(self, small_paper_graph):
        a = FastGossiping().run(small_paper_graph, rng=4)
        b = FastGossiping().run(small_paper_graph, rng=4)
        assert a.total_messages() == b.total_messages()
        assert a.rounds == b.rounds

    def test_extras_structure(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=5)
        assert "schedule" in result.extras
        assert result.extras["total_walks"] >= 0
        assert result.extras["schedule"]["n"] == small_paper_graph.n


class TestPhaseStructure:
    def test_all_three_phases_recorded(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=6)
        assert result.ledger.phases == [
            "phase1-distribution",
            "phase2-random-walks",
            "phase3-broadcast",
        ]

    def test_phase1_length_matches_schedule(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=7)
        schedule = tuned_fast_gossiping().resolve(small_paper_graph.n)
        totals = result.ledger.phase_totals("phase1-distribution")
        assert totals.rounds == schedule.distribution_steps
        # Every node pushes once per distribution step.
        assert totals.push_packets == pytest.approx(
            small_paper_graph.n * schedule.distribution_steps, rel=0.01
        )

    def test_phase1_grows_informed_sets(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=8, record_trace=True)
        phase1 = [r for r in result.trace.records if r.phase == "phase1-distribution"]
        assert phase1[-1].coverage > phase1[0].coverage
        # After Phase I every message is known by more than one node w.h.p.
        assert phase1[-1].mean_known > 2

    def test_trace_coverage_monotone(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=9, record_trace=True)
        curve = result.trace.coverage_curve()
        assert np.all(np.diff(curve) >= -1e-12)
        assert curve[-1] == pytest.approx(1.0)


class TestMessageComplexity:
    def test_cheaper_than_push_pull(self, medium_paper_graph):
        """The headline claim of Figure 1 at a fixed size."""
        fast = FastGossiping().run(medium_paper_graph, rng=10)
        baseline = PushPullGossip().run(medium_paper_graph, rng=11)
        assert fast.completed and baseline.completed
        assert fast.messages_per_node() < baseline.messages_per_node()

    def test_slower_than_push_pull(self, medium_paper_graph):
        """The price of fewer messages is a longer running time."""
        fast = FastGossiping().run(medium_paper_graph, rng=12)
        baseline = PushPullGossip().run(medium_paper_graph, rng=13)
        assert fast.rounds > baseline.rounds

    def test_rounds_within_theorem_bound(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=14)
        n = small_paper_graph.n
        bound = 8 * math.log2(n) ** 2 / math.log2(math.log2(n))
        assert result.rounds <= bound

    def test_per_node_cost_within_bound(self, small_paper_graph):
        result = FastGossiping().run(small_paper_graph, rng=15)
        n = small_paper_graph.n
        bound = 8 * math.log2(n) / math.log2(math.log2(n))
        assert result.messages_per_node() <= bound


class TestParameters:
    def test_theory_preset_completes(self, small_paper_graph):
        result = FastGossiping(theory_fast_gossiping()).run(small_paper_graph, rng=16)
        assert result.completed

    def test_higher_walk_probability_means_more_walks(self, small_paper_graph):
        low = FastGossiping(
            tuned_fast_gossiping().with_overrides(walk_probability_factor=0.5)
        ).run(small_paper_graph, rng=17)
        high = FastGossiping(
            tuned_fast_gossiping().with_overrides(walk_probability_factor=4.0)
        ).run(small_paper_graph, rng=17)
        assert high.extras["total_walks"] > low.extras["total_walks"]

    def test_failure_injection_validation(self, small_paper_graph):
        plan = sample_uniform_failures(small_paper_graph.n, 2, rng=1)
        with pytest.raises(ValueError):
            FastGossiping().run(small_paper_graph, failures=plan, rng=18)

    def test_failures_at_start_tolerated(self, small_complete_graph):
        n = small_complete_graph.n
        plan = sample_uniform_failures(n, 6, rng=19, inject_at="start")
        result = FastGossiping().run(small_complete_graph, rng=20, failures=plan)
        assert result.completed  # completion restricted to alive nodes
        per_node = result.ledger.per_node(MessageAccounting.OPENS_AND_PACKETS)
        assert np.all(per_node[plan.failed] == 0)

    def test_small_graph_rejected(self):
        with pytest.raises(ValueError):
            FastGossiping().run(complete_graph(1), rng=1)

    def test_works_on_hypercube(self):
        # Low-degree topology outside the paper's assumptions: the protocol
        # must still terminate and complete thanks to Phase III.
        result = FastGossiping().run(hypercube(6), rng=21)
        assert result.completed
