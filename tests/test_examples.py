"""Smoke tests for the runnable examples (executed at tiny sizes)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing __main__."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_present(self):
        expected = {
            "quickstart.py",
            "replicated_database.py",
            "p2p_aggregation.py",
            "robustness_study.py",
            "density_comparison.py",
        }
        assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}

    def test_quickstart(self, capsys):
        load_example("quickstart").main(128, seed=1)
        out = capsys.readouterr().out
        assert "push-pull" in out
        assert "memory model" in out

    def test_replicated_database(self, capsys):
        load_example("replicated_database").main(128, seed=2)
        out = capsys.readouterr().out
        assert "anti-entropy" in out
        assert "consistent" in out

    def test_p2p_aggregation(self, capsys):
        load_example("p2p_aggregation").main(128, seed=3)
        out = capsys.readouterr().out
        assert "Leader election" in out
        assert "agree with the exact aggregates: True" in out

    def test_density_comparison(self, capsys):
        load_example("density_comparison").main(128, seed=4)
        out = capsys.readouterr().out
        assert "broadcast (single message)" in out
        assert "gossiping (memory model)" in out

    def test_robustness_study(self, capsys):
        load_example("robustness_study").main(128, repetitions=1)
        out = capsys.readouterr().out
        assert "Figure 2 style" in out
        assert "Figure 5 style" in out
