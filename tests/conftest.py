"""Shared fixtures for the test suite.

Graph construction is the most expensive part of many tests, so commonly used
small graphs are built once per session.  All fixtures are seeded so the suite
is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import complete_graph, erdos_renyi, paper_edge_probability, random_regular


@pytest.fixture(scope="session")
def rng():
    """A deterministic generator for tests that just need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_paper_graph():
    """A 256-node G(n, log^2 n / n) graph — the paper's topology, scaled down."""
    n = 256
    return erdos_renyi(n, paper_edge_probability(n), rng=101, require_connected=True)


@pytest.fixture(scope="session")
def medium_paper_graph():
    """A 512-node G(n, log^2 n / n) graph for the slower protocol tests."""
    n = 512
    return erdos_renyi(n, paper_edge_probability(n), rng=102, require_connected=True)


@pytest.fixture(scope="session")
def small_complete_graph():
    """A 128-node complete graph."""
    return complete_graph(128)


@pytest.fixture(scope="session")
def small_regular_graph():
    """A 256-node (near-)32-regular graph from the configuration model."""
    return random_regular(256, 32, rng=103, require_connected=True)
