"""Tests for the gather-redundancy ablation experiment (E11)."""

from __future__ import annotations

import pytest

from repro.experiments import RobustnessConfig, run_redundancy_ablation
from repro.experiments.ablation_redundancy import REDUNDANCY_COLUMNS


class TestRedundancyAblation:
    @pytest.fixture(scope="class")
    def result(self):
        config = RobustnessConfig(
            size=256, failed_fractions=(0.0, 0.3), num_trees=2, repetitions=2, seed=11
        )
        return run_redundancy_ablation(config)

    def test_rows_cover_both_modes(self, result):
        modes = {row["gather_contacts"] for row in result.rows}
        assert modes == {"all", "first"}
        assert len(result.rows) == 4  # 2 modes x 2 failure counts

    def test_no_losses_without_failures(self, result):
        for row in result.rows:
            if row["failed"] == 0:
                assert row["additional_lost"] == 0.0

    def test_first_mode_never_more_robust(self, result):
        failed_counts = {row["failed"] for row in result.rows if row["failed"] > 0}
        for failed in failed_counts:
            by_mode = {
                row["gather_contacts"]: row["additional_lost"]
                for row in result.rows
                if row["failed"] == failed
            }
            assert by_mode["first"] >= by_mode["all"]

    def test_metadata_summary(self, result):
        ratios = result.metadata["loss_ratio_at_largest_f"]
        assert set(ratios) == {"all", "first"}

    def test_columns_renderable(self, result):
        table = result.to_table(REDUNDANCY_COLUMNS)
        assert "gather_contacts" in table
