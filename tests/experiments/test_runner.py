"""Tests for the experiment runner machinery."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepTask
from repro.core import FastGossiping, MemoryGossiping, PushPullGossip
from repro.experiments.runner import (
    ExperimentResult,
    aggregate_records,
    gossip_task,
    make_protocol,
    robustness_task,
)
from repro.graphs import GraphSpec


class TestMakeProtocol:
    def test_known_protocols(self):
        assert isinstance(make_protocol("push-pull"), PushPullGossip)
        assert isinstance(make_protocol("fast-gossiping"), FastGossiping)
        assert isinstance(make_protocol("memory"), MemoryGossiping)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_protocol("bogus")

    def test_fast_gossiping_overrides(self):
        protocol = make_protocol(
            "fast-gossiping", protocol_options={"walk_probability_factor": 3.0}
        )
        assert protocol.params.walk_probability_factor == 3.0

    def test_memory_options(self):
        protocol = make_protocol(
            "memory",
            protocol_options={"leader": 5, "gather_only": True, "num_trees": 2},
        )
        assert protocol.leader == 5
        assert protocol.gather_only
        assert protocol.params.num_trees == 2


class TestTasks:
    def _spec(self, n=128):
        return GraphSpec("erdos_renyi", n, {"p": 0.3, "require_connected": True}).as_dict()

    def test_gossip_task_record(self):
        task = SweepTask(
            key=(128, "push-pull"),
            params={"graph_spec": self._spec(), "protocol": "push-pull"},
            repetition=0,
            seed=1,
        )
        record = gossip_task(task)
        assert record["n"] == 128
        assert record["completed"]
        assert record["messages_per_node"] > 0
        assert record["strict_cost_per_node"] >= record["messages_per_node"]

    def test_robustness_task_record(self):
        task = SweepTask(
            key=(128, 10),
            params={"graph_spec": self._spec(), "failed": 10, "num_trees": 2, "leader": 0},
            repetition=0,
            seed=2,
        )
        record = robustness_task(task)
        assert record["failed"] == 10
        assert record["additional_lost"] >= 0
        assert record["loss_ratio"] == record["additional_lost"] / 10

    def test_robustness_task_zero_failures(self):
        task = SweepTask(
            key=(128, 0),
            params={"graph_spec": self._spec(), "failed": 0, "leader": 0},
            repetition=0,
            seed=3,
        )
        record = robustness_task(task)
        assert record["additional_lost"] == 0
        assert record["loss_ratio"] == 0.0


class TestAggregation:
    def test_aggregate_records(self):
        records = [
            {"n": 10, "protocol": "a", "x": 1.0},
            {"n": 10, "protocol": "a", "x": 3.0},
            {"n": 20, "protocol": "a", "x": 5.0},
        ]
        rows = aggregate_records(records, group_by=("n", "protocol"), metrics=("x",))
        assert len(rows) == 2
        assert rows[0]["x"] == pytest.approx(2.0)
        assert rows[0]["repetitions"] == 2
        assert rows[0]["x_std"] > 0
        assert rows[1]["x"] == pytest.approx(5.0)

    def test_aggregate_preserves_group_order(self):
        records = [{"g": "b", "x": 1.0}, {"g": "a", "x": 2.0}]
        rows = aggregate_records(records, group_by=("g",), metrics=("x",))
        assert [r["g"] for r in rows] == ["b", "a"]

    def test_missing_metric_skipped(self):
        rows = aggregate_records([{"g": 1}], group_by=("g",), metrics=("x",))
        assert "x" not in rows[0]


class TestExperimentResult:
    def test_to_table_and_save(self, tmp_path):
        result = ExperimentResult(
            name="demo",
            description="demo experiment",
            rows=[{"n": 1, "v": 2.0}],
            raw_records=[{"n": 1, "v": 2.0, "rep": 0}],
            metadata={"seed": 1},
        )
        table = result.to_table()
        assert "demo experiment" in table
        paths = result.save(tmp_path)
        assert paths["rows_json"].exists()
        assert paths["rows_csv"].exists()
        assert paths["raw_csv"].exists()
        assert paths["metadata"].exists()

    def test_empty_rows_table(self):
        result = ExperimentResult(name="empty", description="d")
        assert "no rows" in result.to_table()
