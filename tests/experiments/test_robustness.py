"""End-to-end robustness tests: supervised scenarios under injected chaos.

The acceptance bar for the fault-tolerance layer: a sweep that suffers a
SIGKILLed worker, a transient task fault and a corrupted store line must still
produce results (and exports) bit-identical to a fault-free run at the same
seed, and a permanently failing configuration must be quarantined without
aborting the rest of the grid.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.analysis.supervisor import RetryPolicy
from repro.analysis.sweep import SweepTask
from repro.engine.chaos import ChaosSpec, Fault, FaultPlan
from repro.experiments import run_scenario
from repro.experiments.scenarios import ScenarioSpec
from repro.io.store import ResultStore, config_hash

#: Deterministic supervision: zero backoff and zero jitter keep the retry
#: resubmission order equal to the task order (byte-identical store files).
DETERMINISTIC = RetryPolicy(max_retries=3, backoff_base=0.0, jitter=0.0)


def doubling_task(task: SweepTask) -> dict:
    """Module-level task (picklable) with a deterministic record."""
    return {"value": task.params["x"] * 2, "n": task.params["x"]}


def _spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="robust",
        result_name="robust",
        description="robustness scenario for chaos tests",
        task=doubling_task,
        grid=lambda config: [(("cfg", x), {"x": x}) for x in (1, 2, 3)],
        group_by=("n",),
        metrics=("value",),
    )


def _config(repetitions=2, seed=11):
    return SimpleNamespace(repetitions=repetitions, seed=seed, n_jobs=1)


def _grid_pairs(config=None):
    config = config or _config()
    return [
        (config_hash(("cfg", x), {"x": x}), rep)
        for x in (1, 2, 3)
        for rep in range(config.repetitions)
    ]


def _reference_run(tmp_path):
    """Fault-free supervised run: returns (result, store file bytes, out dir)."""
    store = ResultStore(tmp_path / "ref")
    result = run_scenario(
        _spec(), config=_config(), store=store, supervise=True, policy=DETERMINISTIC
    )
    store.close()
    result.save(tmp_path / "ref_out")
    return result, (tmp_path / "ref" / "robust.jsonl").read_bytes(), tmp_path / "ref_out"


EXPORTS = ("robust_rows.json", "robust_rows.csv", "robust_raw.csv")


class TestKillRecovery:
    def test_store_file_byte_identical_to_fault_free_run(self, tmp_path):
        result_ref, file_ref, out_ref = _reference_run(tmp_path)

        store = ResultStore(tmp_path / "chaos")
        result = run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=DETERMINISTIC,
            chaos=ChaosSpec(counts={"kill": 1}, seed=7),
        )
        store.close()
        result.save(tmp_path / "chaos_out")

        report = result.metadata["sweep_report"]
        assert report["worker_crashes"] >= 1 and report["pool_restarts"] >= 1
        assert not report["quarantined"]
        # A SIGKILLed worker mid-sweep leaves no trace in the result set: the
        # store file and every export are byte-identical to the clean run.
        assert (tmp_path / "chaos" / "robust.jsonl").read_bytes() == file_ref
        assert result.raw_records == result_ref.raw_records
        assert result.rows == result_ref.rows
        for name in EXPORTS:
            assert (tmp_path / "chaos_out" / name).read_bytes() == (
                out_ref / name
            ).read_bytes()

    def test_transient_error_fault_exports_identical(self, tmp_path):
        result_ref, _, out_ref = _reference_run(tmp_path)
        store = ResultStore(tmp_path / "chaos")
        result = run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=DETERMINISTIC,
            chaos=ChaosSpec(counts={"error": 2}, seed=3),
        )
        store.close()
        result.save(tmp_path / "chaos_out")
        assert result.metadata["sweep_report"]["retries"] >= 2
        # Retried records may land in the store out of order, but records,
        # rows and exports are identical to the fault-free run.
        assert result.raw_records == result_ref.raw_records
        for name in EXPORTS:
            assert (tmp_path / "chaos_out" / name).read_bytes() == (
                out_ref / name
            ).read_bytes()


class TestCorruptionRecovery:
    def test_corrupt_store_line_is_rerun_on_resume(self, tmp_path):
        result_ref, file_ref, out_ref = _reference_run(tmp_path)

        store = ResultStore(tmp_path / "chaos")
        result = run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=DETERMINISTIC,
            chaos=ChaosSpec(counts={"corrupt": 1}, seed=5),
        )
        store.close()
        # This run's in-memory records never saw the corruption.
        assert result.raw_records == result_ref.raw_records

        # A fresh scan skips and reports the garbled line; the pair is no
        # longer complete, so resume re-runs exactly that pair.
        fresh = ResultStore(tmp_path / "chaos")
        assert len(fresh.corruption("robust")) == 1
        assert len(fresh.completed("robust")) == len(_grid_pairs()) - 1
        resumed = run_scenario(
            _spec(), config=_config(), store=fresh, resume=True, supervise=True
        )
        fresh.close()
        resumed.save(tmp_path / "resumed_out")
        assert resumed.raw_records == result_ref.raw_records
        for name in EXPORTS:
            assert (tmp_path / "resumed_out" / name).read_bytes() == (
                out_ref / name
            ).read_bytes()


class TestQuarantine:
    def _poison_plan(self):
        # A fault that outlives any retry budget: a poison configuration.
        config = _grid_pairs()[0][0]
        return FaultPlan(
            faults=tuple(
                Fault(kind="error", config=config, repetition=rep, attempts=99)
                for rep in range(2)
            )
        )

    def test_poison_config_is_quarantined_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0),
            chaos=self._poison_plan(),
        )
        store.close()
        report = result.metadata["sweep_report"]
        assert len(report["quarantined"]) == 2
        assert report["ok"] == 4
        # The grid was not aborted: the healthy configurations aggregated.
        assert len(result.raw_records) == 4
        assert {row["n"] for row in result.rows} == {2, 3}
        # Structured failure entries landed in the store.
        fresh = ResultStore(tmp_path / "store")
        failures = fresh.failures("robust")
        assert len(failures) == 2
        assert all(f["kind"] == "error" for f in failures.values())
        assert all("injected fault" in f["message"] for f in failures.values())

    def test_resume_retries_quarantined_pairs_and_supersedes_failures(self, tmp_path):
        result_ref, _, _ = _reference_run(tmp_path)
        store = ResultStore(tmp_path / "store")
        run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0),
            chaos=self._poison_plan(),
        )
        store.close()

        # Resume without chaos: only the 2 quarantined pairs re-run, succeed,
        # and supersede their failure entries.
        fresh = ResultStore(tmp_path / "store")
        resumed = run_scenario(
            _spec(), config=_config(), store=fresh, resume=True, supervise=True
        )
        fresh.close()
        assert resumed.raw_records == result_ref.raw_records
        final = ResultStore(tmp_path / "store")
        assert final.failures("robust") == {}
        assert len(final.completed("robust")) == len(_grid_pairs())

    def test_fresh_run_against_quarantined_store_requires_resume(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        run_scenario(
            _spec(),
            config=_config(),
            store=store,
            policy=RetryPolicy(max_retries=0, backoff_base=0.0, jitter=0.0),
            chaos=self._poison_plan(),
        )
        # Even a store holding only failure entries for a pair conflicts
        # without resume (it documents an earlier, different run).
        with pytest.raises(RuntimeError, match="resume"):
            run_scenario(_spec(), config=_config(), store=store, supervise=True)
        store.close()


class TestSupervisedMetadata:
    def test_unsupervised_run_has_no_sweep_report(self, tmp_path):
        result = run_scenario(_spec(), config=_config())
        assert "sweep_report" not in result.metadata

    def test_supervised_run_records_report(self, tmp_path):
        result = run_scenario(_spec(), config=_config(), supervise=True)
        report = result.metadata["sweep_report"]
        assert report["total"] == report["ok"] == 6
        assert report["quarantined"] == []
