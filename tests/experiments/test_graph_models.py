"""Tests for the graph-model comparison extension (E12)."""

from __future__ import annotations

import pytest

from repro.experiments import SizeSweepConfig, run_graph_model_comparison
from repro.experiments.graph_models import GRAPH_MODEL_COLUMNS


class TestGraphModelComparison:
    @pytest.fixture(scope="class")
    def result(self):
        config = SizeSweepConfig(sizes=(256,), repetitions=2, seed=21)
        return run_graph_model_comparison(config)

    def test_rows_cover_both_models_and_all_protocols(self, result):
        models = {row["model"] for row in result.rows}
        protocols = {row["protocol"] for row in result.rows}
        assert models == {"erdos_renyi", "configuration_model"}
        assert protocols == {"push-pull", "fast-gossiping", "memory"}
        assert len(result.rows) == 6

    def test_models_agree_within_tolerance(self, result):
        for gap in result.metadata["relative_gaps"]:
            assert gap["relative_gap"] < 0.5

    def test_all_completed_costs_positive(self, result):
        for row in result.rows:
            assert row["messages_per_node"] > 0
            assert row["rounds"] > 0

    def test_table_renderable(self, result):
        table = result.to_table(GRAPH_MODEL_COLUMNS)
        assert "configuration_model" in table
