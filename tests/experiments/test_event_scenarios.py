"""Scenario-level tests for the event-clock experiments (push-sum, churn).

Covers the registry wiring (both scenarios resolve by name, smoke-scale runs
finish fast and set their invariant flags) and the fault-tolerance bar for
the new sweeps: an event-clock push-sum sweep that loses a worker to a
seeded SIGKILL, and one resumed from a partially filled store, must both
produce a result store byte-identical to a clean single-pass run.
"""

from __future__ import annotations

import pytest

from repro.analysis.supervisor import RetryPolicy
from repro.engine.chaos import ChaosSpec
from repro.experiments import run_scenario
from repro.experiments.churn import CHURN
from repro.experiments.config import ChurnConfig, PushSumConfig
from repro.experiments.push_sum import PUSHSUM
from repro.experiments.scenarios import get_scenario, scenario_names
from repro.io.store import ResultStore

#: Zero backoff / zero jitter keeps retry resubmission order deterministic.
DETERMINISTIC = RetryPolicy(max_retries=3, backoff_base=0.0, jitter=0.0)


def smoke_pushsum_config():
    return PUSHSUM.smoke_config(None)


def smoke_churn_config():
    return CHURN.smoke_config(None)


class TestRegistry:
    def test_scenarios_are_registered(self):
        names = scenario_names()
        assert "pushsum" in names
        assert "churn" in names
        assert get_scenario("pushsum") is PUSHSUM
        assert get_scenario("churn") is CHURN

    def test_smoke_configs_are_tiny(self):
        assert max(smoke_pushsum_config().sizes) <= 128
        assert smoke_churn_config().repetitions == 1


class TestPushSumScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(PUSHSUM, config=smoke_pushsum_config())

    def test_rows_cover_both_clocks(self, result):
        clocks = {row["clock"] for row in result.rows}
        assert clocks == {"sync", "event"}

    def test_invariant_flags_hold(self, result):
        assert result.metadata["mass_conserved"]
        assert result.metadata["spread_monotone"]
        assert result.metadata["variance_decayed"]

    def test_rows_converged(self, result):
        assert all(row["converged"] for row in result.rows)
        assert all(row["mass_error"] <= 1e-9 for row in result.raw_records)

    def test_seed_trajectories_are_clock_invariant(self, result):
        """Both clocks share the seed derivation, so each (n, repetition)
        pair solves the same averaging instance under either clock."""
        by_clock = {}
        for rec in result.raw_records:
            by_clock.setdefault(rec["clock"], {})[rec["n"]] = rec
        for n, sync_rec in by_clock["sync"].items():
            assert by_clock["event"][n]["variance_initial"] == pytest.approx(
                sync_rec["variance_initial"], abs=0.0
            )


class TestChurnScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(CHURN, config=smoke_churn_config())

    def test_all_fractions_complete(self, result):
        assert result.metadata["all_completed"]
        assert {row["churn_fraction"] for row in result.rows} == {0.0, 0.125}

    def test_churn_costs_extra_events(self, result):
        by_fraction = {row["churn_fraction"]: row for row in result.rows}
        assert by_fraction[0.125]["survivors"] < by_fraction[0.0]["survivors"]

    def test_zero_fraction_has_no_ops(self, result):
        for rec in result.raw_records:
            if rec["churn_fraction"] == 0.0:
                assert rec["churn_ops"] == 0
            else:
                assert rec["churn_ops"] > 0


def _pushsum_reference(tmp_path):
    """Clean supervised event-clock sweep: (result, store bytes)."""
    store = ResultStore(tmp_path / "ref")
    result = run_scenario(
        PUSHSUM,
        config=smoke_pushsum_config(),
        store=store,
        supervise=True,
        policy=DETERMINISTIC,
    )
    store.close()
    return result, (tmp_path / "ref" / "pushsum.jsonl").read_bytes()


class TestEventClockSweepFaultTolerance:
    def test_chaos_kill_is_byte_identical(self, tmp_path):
        """`--chaos kill=1`: losing a worker mid-sweep leaves no trace."""
        result_ref, file_ref = _pushsum_reference(tmp_path)

        store = ResultStore(tmp_path / "chaos")
        result = run_scenario(
            PUSHSUM,
            config=smoke_pushsum_config(),
            store=store,
            policy=DETERMINISTIC,
            chaos=ChaosSpec(counts={"kill": 1}, seed=7),
        )
        store.close()

        report = result.metadata["sweep_report"]
        assert report["worker_crashes"] >= 1 and report["pool_restarts"] >= 1
        assert not report["quarantined"]
        assert (tmp_path / "chaos" / "pushsum.jsonl").read_bytes() == file_ref
        assert result.raw_records == result_ref.raw_records
        assert result.rows == result_ref.rows
        assert result.metadata["mass_conserved"]

    def test_resume_is_byte_identical(self, tmp_path):
        """A sweep resumed from a partial store recomputes only the missing
        pairs and converges to the same bytes as a clean single pass."""
        _, file_ref = _pushsum_reference(tmp_path)

        # Build a partial store: keep only the first persisted record.
        partial_dir = tmp_path / "partial"
        partial_dir.mkdir()
        lines = file_ref.splitlines(keepends=True)
        assert len(lines) > 1
        (partial_dir / "pushsum.jsonl").write_bytes(lines[0])

        store = ResultStore(partial_dir)
        result = run_scenario(
            PUSHSUM,
            config=smoke_pushsum_config(),
            store=store,
            resume=True,
            supervise=True,
            policy=DETERMINISTIC,
        )
        store.close()

        resumed = (partial_dir / "pushsum.jsonl").read_bytes()
        assert sorted(resumed.splitlines()) == sorted(file_ref.splitlines())
        assert result.metadata["mass_conserved"]
