"""Tests for the declarative scenario registry (repro.experiments.scenarios)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    RobustnessConfig,
    SizeSweepConfig,
    all_scenarios,
    get_scenario,
    resolve_config,
    run_figure2,
    run_scenario,
    scenario_names,
)
from repro.experiments.scenarios import ScenarioSpec


EXPECTED_SCENARIOS = {
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "density",
    "broadcast",
    "parameters",
    "redundancy",
    "election",
    "graph-models",
    "scale",
    "pushsum",
    "churn",
}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(scenario_names()) == EXPECTED_SCENARIOS

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("not-a-scenario")

    def test_specs_are_complete(self):
        for spec in all_scenarios():
            assert spec.description
            assert spec.result_name
            assert spec.legacy_entry.startswith("run_")
            if spec.run_override is None:
                # Sweep scenarios need a grid, a task and an aggregation.
                assert spec.task is not None
                assert spec.grid is not None
                assert spec.group_by or spec.aggregate is not None
                assert spec.cli_config is not None
                assert spec.smoke_config is not None

    def test_smoke_configs_are_tiny(self):
        for spec in all_scenarios():
            if spec.run_override is not None:
                continue
            config = spec.smoke_config(None)
            sizes = getattr(config, "sizes", None) or (getattr(config, "size", 0),)
            assert max(int(s) for s in sizes) <= 256, spec.name


class TestResolveConfig:
    def test_explicit_config_wins(self):
        spec = get_scenario("figure1")
        config = SizeSweepConfig(sizes=(64,), repetitions=1, seed=9)
        assert resolve_config(spec, config=config) is config

    def test_seed_override(self):
        spec = get_scenario("figure1")
        config = resolve_config(spec, config=SizeSweepConfig(), seed=123)
        assert config.seed == 123
        smoke = resolve_config(spec, seed=77, smoke=True)
        assert smoke.seed == 77

    def test_profiles(self):
        spec = get_scenario("figure1")
        assert resolve_config(spec, profile="cli").sizes == (256, 512, 1024, 2048)
        assert resolve_config(spec, profile="default").sizes == SizeSweepConfig().sizes

    def test_seed_zero_is_respected(self):
        """Regression: ``--seed 0`` must not fall back to the default seed."""
        for spec in all_scenarios():
            if spec.run_override is not None:
                continue
            assert resolve_config(spec, seed=0, profile="cli").seed == 0, spec.name
            assert resolve_config(spec, seed=0, smoke=True).seed == 0, spec.name


class TestRunScenario:
    def test_matches_legacy_wrapper(self):
        config = RobustnessConfig(
            size=128, failed_fractions=(0.0, 0.25), repetitions=1, seed=5
        )
        via_registry = run_scenario("figure2", config=config)
        via_wrapper = run_figure2(config)
        assert via_registry.rows == via_wrapper.rows
        assert via_registry.raw_records == via_wrapper.raw_records
        assert via_registry.metadata == via_wrapper.metadata

    def test_run_by_name_smoke(self):
        result = run_scenario("election", smoke=True)
        assert result.name == "leader_election_cost"
        assert result.rows and result.raw_records

    def test_table1_override(self):
        result = run_scenario("table1", config=[1024])
        assert {row["n"] for row in result.rows} == {1024}

    def test_invalid_spec_without_task_or_override(self):
        spec = ScenarioSpec(name="broken", result_name="broken", description="broken")
        with pytest.raises(ValueError, match="neither a sweep nor a run override"):
            run_scenario(spec)

    def test_figure3_config_sizes_respected(self):
        from repro.experiments import Figure3Config, run_figure3

        config = Figure3Config(
            sizes=(128,), failed_fractions=(0.1,), repetitions=1, seed=6
        )
        result = run_figure3(config)
        assert {row["n"] for row in result.rows} == {128}

    def test_progress_callback(self):
        seen = []
        run_scenario(
            "figure2",
            config=RobustnessConfig(
                size=128, failed_fractions=(0.0, 0.25), repetitions=1, seed=5
            ),
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]
