"""Tests for the extension/ablation experiments (E7–E10)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    BroadcastAblationConfig,
    DensitySweepConfig,
    LeaderElectionConfig,
    ParameterAblationConfig,
    run_broadcast_ablation,
    run_density_sweep,
    run_leader_election_cost,
    run_parameter_ablation,
)


class TestDensitySweep:
    @pytest.fixture(scope="class")
    def result(self):
        config = DensitySweepConfig(
            size=256,
            expected_degrees=(64.0, 128.0),
            include_complete=True,
            repetitions=1,
            seed=1,
        )
        return run_density_sweep(config)

    def test_rows_cover_all_densities_and_protocols(self, result):
        graphs = {row["graph"] for row in result.rows}
        assert len(graphs) == 3  # two ER densities + complete
        protocols = {row["protocol"] for row in result.rows}
        assert protocols == {"push-pull", "fast-gossiping", "memory"}

    def test_memory_cost_flat_across_densities(self, result):
        """The paper's thesis: density does not change the gossiping overhead much."""
        flatness = result.metadata["max_over_min_cost_ratio"]
        assert flatness["memory"] < 2.0

    def test_expected_degree_column(self, result):
        for row in result.rows:
            assert row["expected_degree"] > 0

    def test_default_degree_ladder(self):
        config = DensitySweepConfig(size=1024)
        degrees = config.degrees()
        assert degrees[0] == pytest.approx(100.0)
        assert all(b > a for a, b in zip(degrees, degrees[1:]))


class TestBroadcastAblation:
    def test_rows_and_growth_metadata(self):
        config = BroadcastAblationConfig(sizes=(128, 256), repetitions=1, seed=2)
        result = run_broadcast_ablation(config)
        assert len(result.rows) == 2 * 2 * 2  # sizes x topologies x tasks
        growth = result.metadata["broadcast_cost_growth"]
        assert set(growth) == {"sparse", "complete"}
        # Gossiping stays bounded on both topologies.
        gossip_costs = [
            row["messages_per_node"] for row in result.rows if row["task"] == "gossip-memory"
        ]
        assert max(gossip_costs) < 10.0


class TestParameterAblation:
    def test_grid_and_monotonicity(self):
        config = ParameterAblationConfig(
            size=256,
            walk_probability_factors=(0.5, 2.0),
            broadcast_steps_factors=(0.5,),
            repetitions=1,
            seed=3,
        )
        result = run_parameter_ablation(config)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["completed"]
            assert row["messages_per_node"] > 0
        by_factor = {row["walk_probability_factor"]: row for row in result.rows}
        assert set(by_factor) == {0.5, 2.0}


class TestLeaderElectionCost:
    def test_variants_and_uniqueness(self):
        config = LeaderElectionConfig(sizes=(256,), repetitions=2, seed=4)
        result = run_leader_election_cost(config)
        assert len(result.rows) == 2  # one size, two variants
        by_variant = {row["variant"]: row for row in result.rows}
        assert by_variant["budgeted"]["messages_per_node"] < by_variant["pseudocode"][
            "messages_per_node"
        ]
        for row in result.rows:
            assert row["unique_fraction"] == 1.0
