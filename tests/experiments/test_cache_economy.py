"""Cache-economy tests: repeated sweeps against a store execute nothing.

Pins the read-through cache contract of :func:`repro.experiments.run_scenario`:

* running the same sweep twice against one store executes zero simulation
  tasks the second time (counted by a task that logs every execution),
* a grid superset executes only the new keys,
* warm-run exports are byte-identical to a cold run's,
* hits from a secondary ``read_store`` are copied into the primary store,
* seed mismatches, quarantined failures and CRC-corrupt lines never
  satisfy a cache hit,
* ``SweepReport.cache_hits`` / ``executed`` and ``metadata["cache"]`` are
  filled in and serialized.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.analysis.sweep import SweepTask
from repro.experiments import run_scenario
from repro.experiments.scenarios import ScenarioSpec
from repro.io.store import ResultStore


def counting_task(task: SweepTask) -> dict:
    """Module-level task (picklable) that logs every execution to a file."""
    with open(task.params["log"], "a") as handle:
        handle.write(f"{task.key}:{task.repetition}\n")
    return {"value": task.params["x"] * 2.0, "n": task.params["x"]}


def _spec(log_path, xs=(1, 2, 3)) -> ScenarioSpec:
    return ScenarioSpec(
        name="counting",
        result_name="counting",
        description="counting scenario for cache tests",
        task=counting_task,
        grid=lambda config: [
            (("cfg", x), {"x": x, "log": str(log_path)}) for x in xs
        ],
        group_by=("n",),
        metrics=("value",),
    )


def _config(repetitions=2, seed=11):
    return SimpleNamespace(repetitions=repetitions, seed=seed, n_jobs=1)


def _executions(log_path) -> int:
    return len(log_path.read_text().splitlines()) if log_path.exists() else 0


class TestWarmRunExecutesNothing:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "store") as store:
            cold = run_scenario(_spec(log), config=config, store=store)
            assert _executions(log) == 6
            assert cold.metadata["cache"] == {
                "total": 6,
                "hits": 0,
                "primary_hits": 0,
                "secondary_hits": 0,
                "executed": 6,
            }
            warm = run_scenario(_spec(log), config=config, store=store, resume=True)
        # Zero simulation work the second time: the execution log is frozen.
        assert _executions(log) == 6
        assert warm.metadata["cache"]["hits"] == 6
        assert warm.metadata["cache"]["executed"] == 0
        assert warm.rows == cold.rows

    def test_sweep_report_fields_pinned_and_serialized(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "store") as store:
            run_scenario(_spec(log), config=config, store=store, supervise=True)
            warm = run_scenario(
                _spec(log), config=config, store=store, resume=True, supervise=True
            )
        report = warm.metadata["sweep_report"]
        assert report["cache_hits"] == 6
        assert report["executed"] == 0
        assert _executions(log) == 6

    def test_sweep_report_summary_mentions_cache_hits(self):
        from repro.analysis.supervisor import SweepReport

        report = SweepReport(total=0, ok=0, cache_hits=6, executed=0)
        assert "6 cache hits" in report.summary()
        assert "cache hits" not in SweepReport(total=3, ok=3).summary()

    def test_grid_superset_executes_only_new_keys(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "store") as store:
            run_scenario(_spec(log), config=config, store=store)
            assert _executions(log) == 6
            superset = run_scenario(
                _spec(log, xs=(1, 2, 3, 4, 5)), config=config, store=store, resume=True
            )
        assert _executions(log) == 6 + 4  # only x=4 and x=5, two reps each
        assert superset.metadata["cache"] == {
            "total": 10,
            "hits": 6,
            "primary_hits": 6,
            "secondary_hits": 0,
            "executed": 4,
        }
        assert len(superset.rows) == 5

    def test_warm_exports_byte_identical_to_cold(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "cold") as store:
            cold = run_scenario(_spec(log), config=config, store=store)
            cold_paths = cold.save(tmp_path / "out_cold")
        with ResultStore(tmp_path / "warm") as store:
            run_scenario(_spec(log), config=config, store=store)
            warm = run_scenario(_spec(log), config=config, store=store, resume=True)
            warm_paths = warm.save(tmp_path / "out_warm")
        assert set(cold_paths) == set(warm_paths)
        for kind in cold_paths:
            if kind == "metadata":
                continue
            assert cold_paths[kind].read_bytes() == warm_paths[kind].read_bytes()
        # Metadata differs only in the cache counters themselves.
        cold_meta = json.loads(cold_paths["metadata"].read_text())
        warm_meta = json.loads(warm_paths["metadata"].read_text())
        assert cold_meta.pop("cache") != warm_meta.pop("cache")
        assert cold_meta == warm_meta


class TestSecondaryReadStore:
    def test_hits_copied_from_read_store_into_primary(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "shared") as shared:
            run_scenario(_spec(log), config=config, store=shared)
        assert _executions(log) == 6
        with ResultStore(tmp_path / "local") as local:
            result = run_scenario(
                _spec(log), config=config, store=local, read_store=tmp_path / "shared"
            )
            # Secondary hits are copied into the primary: a follow-up run
            # no longer needs the shared store at all.
            assert len(local.completed("counting")) == 6
            rerun = run_scenario(_spec(log), config=config, store=local, resume=True)
        assert _executions(log) == 6
        assert result.metadata["cache"] == {
            "total": 6,
            "hits": 6,
            "primary_hits": 0,
            "secondary_hits": 6,
            "executed": 0,
        }
        assert rerun.metadata["cache"]["primary_hits"] == 6

    def test_read_store_accepts_open_store_instance(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "shared") as shared:
            run_scenario(_spec(log), config=config, store=shared)
            with ResultStore(tmp_path / "local") as local:
                result = run_scenario(
                    _spec(log), config=config, store=local, read_store=shared
                )
        assert result.metadata["cache"]["secondary_hits"] == 6
        assert _executions(log) == 6

    def test_read_store_requires_primary_store(self, tmp_path):
        with pytest.raises(ValueError, match="read_store requires a primary store"):
            run_scenario(
                _spec(tmp_path / "log"),
                config=_config(),
                read_store=tmp_path / "shared",
            )

    def test_seed_mismatch_in_read_store_is_a_miss(self, tmp_path):
        log = tmp_path / "log"
        with ResultStore(tmp_path / "shared") as shared:
            run_scenario(_spec(log), config=_config(seed=11), store=shared)
        with ResultStore(tmp_path / "local") as local:
            result = run_scenario(
                _spec(log),
                config=_config(seed=12),
                store=local,
                read_store=tmp_path / "shared",
            )
        # Different base seed -> different per-task seeds -> plain misses
        # (unlike a primary-store seed mismatch, which is an error).
        assert result.metadata["cache"]["hits"] == 0
        assert _executions(log) == 12


class TestInvalidationNeverServesBadEntries:
    def test_quarantined_failure_is_not_a_hit(self, tmp_path):
        log = tmp_path / "log"
        config = _config()
        with ResultStore(tmp_path / "store") as store:
            run_scenario(_spec(log), config=config, store=store)
            pair = sorted(store.completed("counting"))[0]
            entry = store.completed_entries("counting")[pair]
            store.append_failure(
                "counting",
                key=entry["key"],
                params={"x": entry["key"][1], "log": str(log)},
                repetition=entry["repetition"],
                seed=entry["seed"],
                failure={"kind": "error", "message": "chaos"},
            )
            # The failure quarantines the pair for resume only if no record
            # superseded it; here a record exists, so the pair stays
            # completed (scanner rule) and the warm run still hits fully.
            warm = run_scenario(_spec(log), config=config, store=store, resume=True)
            assert warm.metadata["cache"]["hits"] == 6
        assert _executions(log) == 6

    def test_failure_only_pair_is_re_executed(self, tmp_path):
        log = tmp_path / "log"
        config = _config(repetitions=1)
        spec = _spec(log, xs=(1,))
        with ResultStore(tmp_path / "store") as store:
            # Quarantine the pair before any record exists.
            from repro.analysis.sweep import expand_grid

            (task,) = expand_grid(spec.grid(config), repetitions=1, base_seed=config.seed)
            store.append_failure(
                "counting",
                key=task.key,
                params=task.params,
                repetition=task.repetition,
                seed=task.seed,
                failure={"kind": "error", "message": "chaos"},
            )
            result = run_scenario(spec, config=config, store=store, resume=True)
        assert result.metadata["cache"] == {
            "total": 1,
            "hits": 0,
            "primary_hits": 0,
            "secondary_hits": 0,
            "executed": 1,
        }
        assert _executions(log) == 1

    def test_corrupt_line_is_not_a_hit(self, tmp_path):
        log = tmp_path / "log"
        config = _config(repetitions=1)
        with ResultStore(tmp_path / "store") as store:
            run_scenario(_spec(log), config=config, store=store)
        assert _executions(log) == 3
        path = tmp_path / "store" / "counting.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"\xff" * (len(lines[1]) - 1) + b"\n"
        path.write_bytes(b"".join(lines))
        with ResultStore(tmp_path / "store") as store:
            result = run_scenario(_spec(log), config=config, store=store, resume=True)
        # The CRC-skipped line never satisfies a hit: its pair re-executes.
        assert result.metadata["cache"]["hits"] == 2
        assert result.metadata["cache"]["executed"] == 1
        assert _executions(log) == 4


class TestNoStoreRuns:
    def test_cache_metadata_absent_without_store(self, tmp_path):
        result = run_scenario(
            _spec(tmp_path / "log"), config=_config(), supervise=True
        )
        assert "cache" not in result.metadata
        assert result.metadata["sweep_report"]["cache_hits"] == 0
        assert result.metadata["sweep_report"]["executed"] == 0
