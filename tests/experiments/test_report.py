"""Tests for the Markdown report builder."""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    build_report,
    experiment_section,
    markdown_table,
    write_report,
)
from repro.experiments.runner import ExperimentResult


def sample_result(name: str = "demo") -> ExperimentResult:
    return ExperimentResult(
        name=name,
        description=f"{name} description",
        rows=[{"n": 256, "cost": 1.5}, {"n": 512, "cost": 2.5}],
        metadata={"sizes": [256, 512], "seed": 1},
    )


class TestMarkdownTable:
    def test_basic_table(self):
        table = markdown_table([{"a": 1, "b": 2.5}], ["a", "b"])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1].startswith("|")
        assert "2.500" in lines[2]

    def test_empty_rows(self):
        assert markdown_table([]) == "*(no rows)*"

    def test_default_columns(self):
        table = markdown_table([{"x": 1, "y": 2}])
        assert "| x | y |" in table


class TestSections:
    def test_section_contains_table_and_metadata(self):
        section = experiment_section(sample_result())
        assert "## demo" in section
        assert "demo description" in section
        assert "| n | cost |" in section
        assert "configuration" in section

    def test_section_with_plot_and_notes(self):
        section = experiment_section(sample_result(), plot="ASCII", notes="a note")
        assert "```text" in section and "ASCII" in section
        assert "a note" in section


class TestFullReport:
    def test_build_report_ordering(self):
        report = build_report(
            [sample_result("one"), sample_result("two")],
            title="T",
            preamble="intro",
        )
        assert report.startswith("# T")
        assert report.index("## one") < report.index("## two")
        assert "intro" in report

    def test_write_report(self, tmp_path):
        path = write_report([sample_result()], tmp_path / "sub" / "REPORT.md", title="X")
        assert path.exists()
        assert path.read_text().startswith("# X")

    def test_column_selection(self):
        report = build_report([sample_result()], columns={"demo": ["cost"]})
        assert "| cost |" in report
        assert "| n | cost |" not in report
