"""Integration tests for the per-figure/table experiment harnesses.

Each test runs the experiment at a deliberately tiny scale (n <= 256, one or
two repetitions) and asserts both the structural contract of the result rows
and the qualitative findings the paper reports for that figure.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    RobustnessConfig,
    RobustnessDetailConfig,
    SizeSweepConfig,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.experiments.figure1 import FIGURE1_COLUMNS


@pytest.fixture(scope="module")
def figure1_result():
    config = SizeSweepConfig(sizes=(128, 256), repetitions=2, seed=1)
    return run_figure1(config)


class TestFigure1:
    def test_row_structure(self, figure1_result):
        rows = figure1_result.rows
        assert len(rows) == 2 * 3  # two sizes, three protocols
        for row in rows:
            for column in ("n", "protocol", "messages_per_node", "rounds", "completed"):
                assert column in row

    def test_all_runs_completed(self, figure1_result):
        assert all(row["completed"] for row in figure1_result.rows)

    def test_protocol_ordering_matches_paper(self, figure1_result):
        """Per size: push-pull > fast-gossiping > memory (Figure 1's ordering)."""
        for n in (128, 256):
            per_protocol = {
                row["protocol"]: row["messages_per_node"]
                for row in figure1_result.rows
                if row["n"] == n
            }
            assert per_protocol["push-pull"] > per_protocol["fast-gossiping"]
            assert per_protocol["fast-gossiping"] > per_protocol["memory"]

    def test_memory_cost_bounded(self, figure1_result):
        memory_costs = [
            row["messages_per_node"]
            for row in figure1_result.rows
            if row["protocol"] == "memory"
        ]
        assert max(memory_costs) < 10.0

    def test_metadata_contains_fits(self, figure1_result):
        fits = figure1_result.metadata["bound_fit_constants"]
        assert set(fits) == {"push-pull", "fast-gossiping", "memory"}
        assert all(value > 0 for value in fits.values())

    def test_table_rendering(self, figure1_result):
        table = figure1_result.to_table(FIGURE1_COLUMNS)
        assert "push-pull" in table and "memory" in table


class TestFigure4:
    def test_rows_and_plateaus(self):
        config = SizeSweepConfig(
            sizes=(128, 192, 256), repetitions=1, seed=2, protocols=("fast-gossiping",)
        )
        result = run_figure4(config)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["walk_probability"] > 0
            assert "schedule_signature" in row
        assert "within_plateau_deltas" in result.metadata


class TestFigure2:
    def test_loss_ratio_shape(self):
        config = RobustnessConfig(
            size=256, failed_fractions=(0.0, 0.1, 0.5), repetitions=2, seed=3
        )
        result = run_figure2(config)
        assert len(result.rows) == 3
        by_failed = {row["failed"]: row for row in result.rows}
        assert by_failed[0]["additional_lost"] == 0.0
        # Monotone-ish: heavy failures lose at least as much as none.
        assert by_failed[128]["loss_ratio"] >= by_failed[0]["loss_ratio"]
        for row in result.rows:
            assert 0.0 <= row["failed_fraction"] <= 0.5


class TestFigure3:
    def test_two_sizes(self):
        config = RobustnessConfig(
            size=128, failed_fractions=(0.1, 0.4), repetitions=1, seed=4
        )
        result = run_figure3(config, sizes=(128, 256))
        sizes = {row["n"] for row in result.rows}
        assert sizes == {128, 256}
        assert len(result.rows) == 4


class TestFigure5:
    def test_exceedance_columns(self):
        config = RobustnessDetailConfig(
            sizes=(128,),
            thresholds=(0, 10),
            failed_fractions=(0.1, 0.5),
            repetitions=3,
            seed=5,
        )
        result = run_figure5(config)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row["exceed_T0"] <= 1.0
            assert 0.0 <= row["exceed_T10"] <= 1.0
            # Exceeding a higher threshold is never more likely.
            assert row["exceed_T10"] <= row["exceed_T0"]
            assert row["repetitions"] == 3


class TestTable1:
    def test_structure(self):
        result = run_table1([1024, 10**6])
        assert {row["n"] for row in result.rows} == {1024, 10**6}
        algorithms = {row["algorithm"] for row in result.rows}
        assert algorithms == {"algorithm1_fast_gossiping", "algorithm2_memory_model"}

    def test_known_values_for_million_nodes(self):
        result = run_table1([10**6])
        lookup = {
            (row["algorithm"], row["limit"]): row["value"] for row in result.rows
        }
        # log2(10^6) ~ 19.93, loglog ~ 4.32: Table 1 formulas resolved.
        assert lookup[("algorithm1_fast_gossiping", "number of steps")] == 6
        assert lookup[("algorithm1_fast_gossiping", "number of rounds")] == 5
        assert lookup[("algorithm2_memory_model", "first loop, number of steps (multiple of 4)")] == 40

    def test_default_sizes(self):
        result = run_table1()
        assert len(result.rows) > 0
