"""Seeded random programs over the result-store / query-index contract.

A *program* is a plain-data op sequence (dicts of ints/strings only, so it
prints and replays verbatim) exercising the write side of
:class:`repro.io.ResultStore` together with every external mutation the
JSONL files can suffer in the wild: record appends (through the store, so
the index's ``note_append`` fast path runs under the flock), ``failure``
quarantine entries, crc-less legacy lines written straight to the file,
same-length in-place garbles (valid JSON, caught only by the line CRC and
the index's prefix-CRC chain), raw byte garbles, and tail truncation.

At every ``check`` op :func:`run_program` compares the index-served
answers — completed view, record list, active failures, counts, exports
(byte-for-byte), grouped aggregates and metric statistics, and all of it
again after ``rebuild()`` — against a fresh full-JSONL-scan recompute via
``ResultStore(dir, index=False)``.  ``None`` means every answer was
identical.  :func:`shrink_program` delta-debugs a failing program down to a
locally-minimal op sequence and :func:`describe_failure` renders it with
exact replay instructions.
"""

from __future__ import annotations

import math
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.statistics import aggregate_records, summarize
from repro.io import ResultStore
from repro.io.results import canonical_json
from repro.io.store import config_hash

__all__ = [
    "OP_KINDS",
    "Failure",
    "describe_failure",
    "generate_program",
    "run_program",
    "shrink_program",
]

#: Every op kind the generator can emit.
OP_KINDS = (
    "record",
    "failure",
    "legacy",
    "garble_value",
    "garble_raw",
    "truncate",
    "check",
)

#: Scenario name every program writes to.
SCENARIO = "prog"

#: Grouping key / metric names the checks aggregate over.  ``n`` is present
#: in every record the generator emits (aggregate_records requires group
#: keys); ``rounds`` is sometimes omitted so the missing-metric paths run.
GROUP_BY = ("n",)
METRICS = ("n", "rounds")

_PROTOCOLS = ("push", "pull", "push–pull")


# ---------------------------------------------------------------------- #
# Generation
# ---------------------------------------------------------------------- #
def _gen_record_fields(rng: np.random.Generator, config: int) -> Dict[str, Any]:
    fields: Dict[str, Any] = {"n": 64 * (config + 1)}
    if rng.random() < 0.75:
        fields["rounds"] = float(round(float(rng.uniform(0.0, 50.0)), 3))
    if rng.random() < 0.6:
        fields["proto"] = str(rng.choice(_PROTOCOLS))
    if rng.random() < 0.5:
        fields["ok"] = bool(rng.random() < 0.5)
    if rng.random() < 0.2:
        fields["series"] = [config, int(rng.integers(0, 10))]
    if rng.random() < 0.15:
        # Wider than 64 bits: stays JSON-body-only in the index (never a
        # compacted field) but must still round-trip through completed /
        # records / export comparisons bit-for-bit.
        fields["wide"] = 2**70 + int(rng.integers(0, 1000))
    return fields


def _gen_op(
    rng: np.random.Generator, n_configs: int, repetitions: int
) -> Tuple[str, Dict[str, Any]]:
    kind = str(
        rng.choice(
            OP_KINDS, p=(0.42, 0.12, 0.08, 0.10, 0.08, 0.08, 0.12)
        )
    )
    config = int(rng.integers(0, n_configs))
    rep = int(rng.integers(0, repetitions))
    if kind == "record":
        return kind, {
            "config": config,
            "rep": rep,
            "fields": _gen_record_fields(rng, config),
        }
    if kind == "failure":
        return kind, {"config": config, "rep": rep, "code": int(rng.integers(0, 100))}
    if kind == "legacy":
        return kind, {"config": config, "rep": rep, "value": int(rng.integers(0, 100))}
    if kind in ("garble_value", "garble_raw"):
        return kind, {"pick": int(rng.integers(0, 1_000_000))}
    if kind == "truncate":
        return kind, {"drop": int(rng.integers(1, 40))}
    if kind == "check":
        return kind, {}
    raise AssertionError(kind)


def generate_program(seed: int) -> Dict[str, Any]:
    """The seeded random program for ``seed`` (pure function of the seed)."""
    rng = np.random.default_rng(seed)
    n_configs = int(rng.integers(2, 5))
    repetitions = int(rng.integers(1, 4))
    ops = [
        _gen_op(rng, n_configs, repetitions)
        for _ in range(int(rng.integers(4, 15)))
    ]
    ops.append(("check", {}))
    return {
        "seed": seed,
        "n_configs": n_configs,
        "repetitions": repetitions,
        "ops": ops,
    }


# ---------------------------------------------------------------------- #
# Interpretation
# ---------------------------------------------------------------------- #
class Failure:
    """A divergence between the query index and the full-scan recompute."""

    def __init__(self, op_index: int, stage: str, detail: str) -> None:
        self.op_index = op_index
        self.stage = stage
        self.detail = detail

    def __repr__(self) -> str:
        return f"Failure(op={self.op_index} stage={self.stage!r}: {self.detail})"


def _pair_key(config: int, rep: int) -> Tuple[Any, Dict[str, int], int]:
    """Key, params and seed for a (config, repetition) slot — deterministic."""
    return ["cfg", config], {"c": config}, config * 1000 + rep


def _apply_store_op(
    store: ResultStore, path: Path, kind: str, arg: Dict[str, Any]
) -> None:
    if kind == "record":
        key, params, seed = _pair_key(arg["config"], arg["rep"])
        store.append(
            SCENARIO,
            key=key,
            params=params,
            repetition=arg["rep"],
            seed=seed,
            record=arg["fields"],
        )
        return
    if kind == "failure":
        key, params, seed = _pair_key(arg["config"], arg["rep"])
        store.append_failure(
            SCENARIO,
            key=key,
            params=params,
            repetition=arg["rep"],
            seed=seed,
            failure={"kind": "error", "message": f"boom-{arg['code']}"},
        )
        return
    if kind == "legacy":
        # A pre-CRC line appended behind the store's back: no "crc" field,
        # still a valid entry every scanner (and the index) must accept.
        key, params, seed = _pair_key(arg["config"], arg["rep"])
        entry = {
            "config": config_hash(key, params),
            "key": key,
            "repetition": arg["rep"],
            "seed": seed,
            "record": {"n": 64 * (arg["config"] + 1), "rounds": float(arg["value"])},
        }
        with open(path, "ab") as handle:
            handle.write((canonical_json(entry) + "\n").encode("utf-8"))
        return
    if kind == "garble_value":
        if not path.exists():
            return
        lines = path.read_bytes().splitlines(keepends=True)
        if not lines:
            return
        pick = arg["pick"] % len(lines)
        line = lines[pick]
        # Same-length digit swap keeps the line valid JSON: only the line
        # CRC (and the index's prefix-CRC chain) can notice the tamper.
        for offset, byte in enumerate(line):
            if ord("0") <= byte <= ord("9"):
                swapped = ord("9") - byte + ord("0")
                lines[pick] = line[:offset] + bytes([swapped]) + line[offset + 1:]
                break
        path.write_bytes(b"".join(lines))
        return
    if kind == "garble_raw":
        if not path.exists():
            return
        lines = path.read_bytes().splitlines(keepends=True)
        if not lines:
            return
        pick = arg["pick"] % len(lines)
        tail = b"\n" if lines[pick].endswith(b"\n") else b""
        lines[pick] = b"\xff" * (len(lines[pick]) - len(tail)) + tail
        path.write_bytes(b"".join(lines))
        return
    if kind == "truncate":
        if not path.exists():
            return
        size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.truncate(max(0, size - arg["drop"]))
        return
    raise AssertionError(kind)


def _scan_answers(directory: Path) -> Dict[str, Any]:
    """The full-JSONL-scan recompute the index must match bit-for-bit."""
    scan = ResultStore(directory, index=False)
    try:
        pairs = scan.completed_entries(SCENARIO)
        # Completed view: latest record per pair, pair-sorted — feeds the
        # aggregate/stats/export comparisons.  ``records``/``counts`` are
        # over ALL record entries in append order, like the scanner's.
        completed = [pairs[pair]["record"] for pair in sorted(pairs)]
        record_entries = [e for e in scan.entries(SCENARIO) if e.kind == "record"]
        failures = scan.failures(SCENARIO)
        answers: Dict[str, Any] = {
            "completed": {pair: pairs[pair]["record"] for pair in sorted(pairs)},
            "records": [entry["record"] for entry in record_entries],
            "failures": failures,
            "counts": {
                "records": len(record_entries),
                "configurations": len({entry["config"] for entry in record_entries}),
                "failures": len(failures),
            },
            "aggregate": aggregate_records(
                completed, group_by=list(GROUP_BY), metrics=["rounds"]
            ),
            "stats": _scan_stats(completed),
        }
        return answers
    finally:
        scan.close()


def _scan_stats(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Re-derive index.stats() from scan records: ascending-sorted floats of
    each compactable numeric field over the completed view, summarized plus
    nearest-rank percentiles."""
    rows: List[Dict[str, Any]] = []
    for name in METRICS:
        values = sorted(
            float(record[name])
            for record in records
            if isinstance(record.get(name), (int, float))
            and not isinstance(record.get(name), bool)
            and abs(record[name]) <= 2**63 - 1
        )
        if not values:
            continue
        stats = summarize(values)
        row: Dict[str, Any] = {
            "metric": name,
            "count": stats.count,
            "mean": stats.mean,
            "std": stats.std,
            "min": stats.minimum,
            "max": stats.maximum,
        }
        for q in (50, 90, 99):
            rank = min(len(values), max(int(math.ceil(q / 100.0 * len(values))), 1))
            row[f"p{q:g}"] = values[rank - 1]
        rows.append(row)
    return rows


def _compare(
    op_index: int,
    directory: Path,
    index,
    exports: Path,
) -> Optional[Failure]:
    expected = _scan_answers(directory)

    def diverged(stage: str, got: Any, want: Any) -> Optional[Failure]:
        if got != want:
            return Failure(op_index, stage, f"index {got!r} != scan {want!r}")
        return None

    completed = index.completed(SCENARIO)
    checks = [
        diverged("completed", completed, expected["completed"]),
        diverged("records", index.records(SCENARIO), expected["records"]),
        diverged("failures", index.failures(SCENARIO), expected["failures"]),
        diverged("counts", index.counts(SCENARIO), expected["counts"]),
        diverged(
            "aggregate",
            index.aggregate(SCENARIO, list(GROUP_BY), ["rounds"]),
            expected["aggregate"],
        ),
        diverged("stats", index.stats(SCENARIO, list(METRICS)), expected["stats"]),
    ]
    for failure in checks:
        if failure is not None:
            return failure
    if expected["records"]:
        scan_dir = exports / f"scan_{op_index}"
        index_dir = exports / f"index_{op_index}"
        ResultStore(directory, index=False).export(SCENARIO, scan_dir)
        index.export(SCENARIO, index_dir)
        for name in (f"{SCENARIO}_records.json", f"{SCENARIO}_records.csv"):
            got = (index_dir / name).read_bytes()
            want = (scan_dir / name).read_bytes()
            if got != want:
                return Failure(
                    op_index, "export", f"{name}: {len(got)}B != scan {len(want)}B"
                )
    # The incrementally-maintained state must equal a from-scratch rebuild.
    index.rebuild(SCENARIO)
    failure = diverged("rebuild-completed", index.completed(SCENARIO), expected["completed"])
    if failure is not None:
        return failure
    return diverged("rebuild-failures", index.failures(SCENARIO), expected["failures"])


def run_program(program: Dict[str, Any]) -> Optional[Failure]:
    """Replay ``program`` in a temp store; None means index == scan throughout."""
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "store"
        exports = Path(tmp) / "exports"
        store = ResultStore(directory)
        if store.query_index is None:  # pragma: no cover - sqlite always present
            store.close()
            return None
        path = directory / f"{SCENARIO}.jsonl"
        try:
            for i, (kind, arg) in enumerate(program["ops"]):
                if kind == "check":
                    failure = _compare(i, directory, store.query_index, exports)
                    if failure is not None:
                        return failure
                else:
                    _apply_store_op(store, path, kind, arg)
        finally:
            store.close()
    return None


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #
def shrink_program(
    program: Dict[str, Any], fails: Callable[[Dict[str, Any]], bool]
) -> Dict[str, Any]:
    """Delta-debug the op list to a locally-minimal failing program.

    Repeatedly tries to delete spans of ops (halving span length down to
    single ops), keeping any deletion under which ``fails`` still holds.
    Purely structural — op payloads are kept intact so the result replays
    exactly.
    """
    ops = list(program["ops"])

    def with_ops(candidate: List[Tuple[str, Dict[str, Any]]]) -> Dict[str, Any]:
        trimmed = dict(program)
        trimmed["ops"] = candidate
        return trimmed

    span = max(1, len(ops) // 2)
    while span >= 1:
        i, progress = 0, False
        while i < len(ops):
            candidate = ops[:i] + ops[i + span:]
            if candidate and fails(with_ops(candidate)):
                ops = candidate
                progress = True
            else:
                i += span
        span = span // 2 if not progress else span
    return with_ops(ops)


def describe_failure(program: Dict[str, Any], failure: Failure) -> str:
    """Render the minimal failing program with exact replay instructions."""
    lines = [
        "store/index differential harness failure:",
        f"  seed={program['seed']} n_configs={program['n_configs']} "
        f"repetitions={program['repetitions']}",
        f"  {failure!r}",
        "  minimal op sequence:",
    ]
    for i, (kind, arg) in enumerate(program["ops"]):
        lines.append(f"    [{i}] {kind}: {arg}")
    lines += [
        "  replay with:",
        "    from store_programs import generate_program, run_program, shrink_program",
        f"    prog = generate_program({program['seed']})",
        "    run_program(prog)  # compares QueryIndex vs ResultStore(dir, index=False)",
    ]
    return "\n".join(lines)
