"""Seeded random programs over the knowledge-storage contract.

A *program* is a plain-data op sequence (lists and ints only, so it prints
and replays verbatim) exercising every bulk primitive of
:class:`repro.engine.knowledge.KnowledgeStorage`: directed transmissions,
push–pull exchanges with and without the saturation filter, external-row
scatters, row assignment, point adds, deficit recounts and event-clock
batches grouped by :func:`repro.engine.event_clock.group_events`.

:func:`run_program` replays a program against an engine layout and the
set-based :class:`oracle.OracleKnowledge` side by side, comparing the packed
state after every op.  :func:`shrink_program` delta-debugs a failing program
down to a locally-minimal op sequence, and :func:`describe_failure` renders
the minimal program plus exact replay instructions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine import (
    FrontierKnowledge,
    KnowledgeMatrix,
    KnowledgeStorage,
    PagedKnowledge,
    SparseKnowledge,
    group_events,
)

from oracle import OracleKnowledge

__all__ = [
    "HARNESS_LAYOUTS",
    "OP_KINDS",
    "Failure",
    "describe_failure",
    "generate_program",
    "make_storage",
    "run_program",
    "shrink_program",
]

#: Layout names the harness sweeps (``frontier`` is the dense fast path).
HARNESS_LAYOUTS = ("dense", "frontier", "paged", "sparse")

#: Every op kind the generator can emit.
OP_KINDS = (
    "transmissions",
    "exchange",
    "exchange_complete",
    "event_batch",
    "scatter_rows",
    "assign_rows",
    "add",
    "add_many",
    "count_missing",
)

#: Message counts that exercise 64-bit word boundaries.
_WORD_EDGE_MESSAGES = (63, 64, 65, 127, 128)


def make_storage(layout: str, program: Dict[str, Any]) -> KnowledgeStorage:
    """Instantiate ``layout`` for a program (tiny blocks for the block layouts)."""
    n, m = program["n_nodes"], program["n_messages"]
    if layout == "dense":
        return KnowledgeMatrix(n, m)
    if layout == "frontier":
        return FrontierKnowledge(n, m)
    if layout == "paged":
        return PagedKnowledge(n, m, block_rows=program["block_rows"])
    if layout == "sparse":
        return SparseKnowledge(n, m, block_rows=program["block_rows"])
    raise ValueError(f"unknown harness layout {layout!r}")


# ---------------------------------------------------------------------- #
# Generation
# ---------------------------------------------------------------------- #
def _distinct_partner(rng: np.random.Generator, node: int, n: int) -> int:
    """A uniform node different from ``node`` (n >= 2)."""
    other = int(rng.integers(0, n - 1))
    return other if other < node else other + 1


def _gen_pairs(rng: np.random.Generator, n: int, k: int) -> Tuple[List[int], List[int]]:
    a = [int(x) for x in rng.integers(0, n, size=k)]
    b = [_distinct_partner(rng, x, n) for x in a]
    return a, b


def _gen_op(rng: np.random.Generator, n: int, m: int) -> Tuple[str, Dict[str, Any]]:
    kind = str(rng.choice(OP_KINDS))
    if kind == "transmissions":
        senders, receivers = _gen_pairs(rng, n, int(rng.integers(1, n + 1)))
        return kind, {"senders": senders, "receivers": receivers}
    if kind in ("exchange", "exchange_complete"):
        k = int(rng.integers(1, max(2, n // 2 + 1)))
        callers = sorted(int(x) for x in rng.choice(n, size=k, replace=False))
        targets = [_distinct_partner(rng, c, n) for c in callers]
        return kind, {"callers": callers, "targets": targets}
    if kind == "event_batch":
        callers, targets = _gen_pairs(rng, n, int(rng.integers(1, 3 * n + 1)))
        return kind, {"callers": callers, "targets": targets}
    if kind == "scatter_rows":
        k_src = int(rng.integers(1, 5))
        source = [
            sorted(int(x) for x in rng.choice(m, size=int(rng.integers(0, min(m, 8) + 1)), replace=False))
            for _ in range(k_src)
        ]
        k = int(rng.integers(1, n + 1))
        return kind, {
            "source": source,
            "src_idx": [int(x) for x in rng.integers(0, k_src, size=k)],
            "receivers": [int(x) for x in rng.integers(0, n, size=k)],
        }
    if kind == "assign_rows":
        k = int(rng.integers(1, max(2, n // 4 + 1)))
        nodes = sorted(int(x) for x in rng.choice(n, size=k, replace=False))
        messages = sorted(
            int(x) for x in rng.choice(m, size=int(rng.integers(0, min(m, 12) + 1)), replace=False)
        )
        return kind, {"nodes": nodes, "messages": messages}
    if kind == "add":
        return kind, {"node": int(rng.integers(0, n)), "message": int(rng.integers(0, m))}
    if kind == "add_many":
        k = int(rng.integers(1, n + 1))
        nodes = sorted(int(x) for x in rng.choice(n, size=k, replace=False))
        return kind, {"nodes": nodes, "message": int(rng.integers(0, m))}
    if kind == "count_missing":
        k = int(rng.integers(1, n + 1))
        return kind, {"rows": [int(x) for x in rng.integers(0, n, size=k)]}
    raise AssertionError(kind)


def generate_program(seed: int) -> Dict[str, Any]:
    """The seeded random program for ``seed`` (pure function of the seed)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 41))
    # Word-boundary message counts are over-represented on purpose: the
    # packed kernels' edge cases live at multiples of 64 bits.
    if rng.random() < 0.5:
        m = int(rng.choice(_WORD_EDGE_MESSAGES))
    else:
        m = int(rng.integers(1, 161))
    ops = [_gen_op(rng, n, m) for _ in range(int(rng.integers(3, 13)))]
    return {
        "seed": seed,
        "n_nodes": n,
        "n_messages": m,
        "block_rows": int(rng.choice([1, 3, 8])),
        "ops": ops,
    }


# ---------------------------------------------------------------------- #
# Interpretation
# ---------------------------------------------------------------------- #
class Failure:
    """A divergence between an engine layout and the oracle."""

    def __init__(self, op_index: int, kind: str, detail: str) -> None:
        self.op_index = op_index
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return f"Failure(op={self.op_index} kind={self.kind!r}: {self.detail})"


def _apply_engine(engine: KnowledgeStorage, kind: str, arg: Dict[str, Any]) -> Optional[np.ndarray]:
    i64 = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
    if kind == "transmissions":
        engine.apply_transmissions(i64(arg["senders"]), i64(arg["receivers"]))
        return None
    if kind == "exchange":
        engine.apply_exchange(i64(arg["callers"]), i64(arg["targets"]))
        return None
    if kind == "exchange_complete":
        mask = engine.full_row_mask()
        complete = engine.count_missing(mask, np.arange(engine.n_nodes)) == 0
        engine.apply_exchange(
            i64(arg["callers"]),
            i64(arg["targets"]),
            complete=complete,
            complete_row=mask,
        )
        return None
    if kind == "event_batch":
        for grp_callers, grp_targets in group_events(
            i64(arg["callers"]), i64(arg["targets"]), engine.n_nodes
        ):
            engine.apply_exchange(grp_callers, grp_targets)
        return None
    if kind == "scatter_rows":
        source = np.stack([engine.row_with(row) for row in arg["source"]])
        engine.scatter_rows(source, i64(arg["src_idx"]), i64(arg["receivers"]))
        return None
    if kind == "assign_rows":
        engine.assign_rows(i64(arg["nodes"]), engine.row_with(arg["messages"]))
        return None
    if kind == "add":
        engine.add(arg["node"], arg["message"])
        return None
    if kind == "add_many":
        engine.add_many(i64(arg["nodes"]), arg["message"])
        return None
    if kind == "count_missing":
        return engine.count_missing(engine.full_row_mask(), i64(arg["rows"]))
    raise AssertionError(kind)


def _apply_oracle(oracle: OracleKnowledge, kind: str, arg: Dict[str, Any]) -> Optional[List[int]]:
    if kind == "transmissions":
        oracle.apply_transmissions(arg["senders"], arg["receivers"])
        return None
    if kind in ("exchange", "exchange_complete"):
        # The saturation filter is a bit-exact engine shortcut; the oracle's
        # plain snapshot exchange is the semantics it must preserve.
        oracle.apply_exchange(arg["callers"], arg["targets"])
        return None
    if kind == "event_batch":
        for c, t in zip(arg["callers"], arg["targets"]):
            oracle.apply_event(c, t)
        return None
    if kind == "scatter_rows":
        oracle.scatter_rows(arg["source"], arg["src_idx"], arg["receivers"])
        return None
    if kind == "assign_rows":
        oracle.assign_rows(arg["nodes"], arg["messages"])
        return None
    if kind == "add":
        oracle.add(arg["node"], arg["message"])
        return None
    if kind == "add_many":
        oracle.add_many(arg["nodes"], arg["message"])
        return None
    if kind == "count_missing":
        return oracle.count_missing(range(oracle.n_messages), arg["rows"])
    raise AssertionError(kind)


def run_program(program: Dict[str, Any], layout: str) -> Optional[Failure]:
    """Replay ``program`` on ``layout`` vs the oracle; None means bit-identical."""
    engine = make_storage(layout, program)
    oracle = OracleKnowledge(program["n_nodes"], program["n_messages"])
    everyone = np.arange(program["n_nodes"], dtype=np.int64)
    for i, (kind, arg) in enumerate(program["ops"]):
        engine_out = _apply_engine(engine, kind, arg)
        oracle_out = _apply_oracle(oracle, kind, arg)
        if oracle_out is not None:
            if list(engine_out) != list(oracle_out):
                return Failure(
                    i, kind, f"deficits {list(engine_out)} != oracle {oracle_out}"
                )
        got, want = engine.rows(everyone), oracle.packed()
        if not np.array_equal(got, want):
            bad = np.flatnonzero((got != want).any(axis=1))
            return Failure(
                i, kind, f"state diverged at rows {bad.tolist()[:8]}"
            )
    return None


# ---------------------------------------------------------------------- #
# Shrinking
# ---------------------------------------------------------------------- #
def shrink_program(
    program: Dict[str, Any], fails: Callable[[Dict[str, Any]], bool]
) -> Dict[str, Any]:
    """Delta-debug the op list to a locally-minimal failing program.

    Repeatedly tries to delete spans of ops (halving span length down to
    single ops), keeping any deletion under which ``fails`` still holds.
    Purely structural — op payloads are kept intact so the result replays
    exactly.
    """
    ops = list(program["ops"])

    def with_ops(candidate: List[Tuple[str, Dict[str, Any]]]) -> Dict[str, Any]:
        trimmed = dict(program)
        trimmed["ops"] = candidate
        return trimmed

    span = max(1, len(ops) // 2)
    while span >= 1:
        i, progress = 0, False
        while i < len(ops):
            candidate = ops[:i] + ops[i + span:]
            if candidate and fails(with_ops(candidate)):
                ops = candidate
                progress = True
            else:
                i += span
        span = span // 2 if not progress else span
    return with_ops(ops)


def describe_failure(
    program: Dict[str, Any], layout: str, backend: str, failure: Failure
) -> str:
    """Render the minimal failing program with exact replay instructions."""
    lines = [
        f"differential harness failure: layout={layout} backend={backend}",
        f"  seed={program['seed']} n_nodes={program['n_nodes']} "
        f"n_messages={program['n_messages']} block_rows={program['block_rows']}",
        f"  {failure!r}",
        "  minimal op sequence:",
    ]
    for i, (kind, arg) in enumerate(program["ops"]):
        lines.append(f"    [{i}] {kind}: {arg}")
    lines += [
        "  replay with:",
        f"    from programs import generate_program, run_program, shrink_program",
        f"    prog = generate_program({program['seed']})",
        f"    # then: run_program(prog, {layout!r}) "
        f"under repro.engine.backends.use({backend!r})",
    ]
    return "\n".join(lines)
