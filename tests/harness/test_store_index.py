"""Property-based differential harness: SQLite query index vs full JSONL scan.

Seeded random programs (:mod:`store_programs`) mix store-mediated appends
(records and quarantined failures), crc-less legacy lines, same-length
in-place garbles, raw byte corruption and tail truncation, then compare
every index-served answer — completed view, records, active failures,
counts, byte-identical exports, grouped aggregates, metric statistics, and
all of it again after a from-scratch ``rebuild()`` — against a fresh
full-JSONL-scan recompute through ``ResultStore(dir, index=False)``.

On failure the program is delta-debugged to a locally-minimal op sequence
and the assertion message prints it along with the seed and replay
instructions.

``REPRO_HARNESS_PROGRAMS`` scales the number of programs (default 15
locally; CI runs 200+).
"""

from __future__ import annotations

import os

import pytest

pytest.importorskip("sqlite3")

from store_programs import (
    OP_KINDS,
    describe_failure,
    generate_program,
    run_program,
    shrink_program,
)

#: Programs per run.  The local default keeps `pytest -q` fast; the CI
#: harness leg raises it to 200+.
N_PROGRAMS = int(os.environ.get("REPRO_HARNESS_PROGRAMS", "15"))

#: Base seed; program k uses BASE_SEED + k.
BASE_SEED = 770000


def test_programs_match_scan() -> None:
    for k in range(N_PROGRAMS):
        program = generate_program(BASE_SEED + k)
        failure = run_program(program)
        if failure is None:
            continue
        # Shrink before reporting: re-run smaller candidate programs and
        # keep deletions that still diverge anywhere.
        minimal = shrink_program(program, lambda p: run_program(p) is not None)
        final = run_program(minimal)
        pytest.fail(describe_failure(minimal, final or failure))


def test_program_generation_is_deterministic() -> None:
    a = generate_program(BASE_SEED)
    b = generate_program(BASE_SEED)
    assert a == b


def test_generator_covers_all_op_kinds() -> None:
    seen = set()
    for k in range(200):
        seen.update(kind for kind, _ in generate_program(BASE_SEED + k)["ops"])
    assert seen == set(OP_KINDS)


def test_generator_emits_corruption_and_failure_entries() -> None:
    """The interesting ops (corruption, quarantine, legacy) are not rare."""
    counts = {kind: 0 for kind in OP_KINDS}
    for k in range(100):
        for kind, _ in generate_program(BASE_SEED + k)["ops"]:
            counts[kind] += 1
    for kind in ("garble_value", "garble_raw", "truncate", "failure", "legacy"):
        assert counts[kind] >= 10, counts


def test_every_program_ends_with_a_check() -> None:
    for k in range(50):
        assert generate_program(BASE_SEED + k)["ops"][-1] == ("check", {})


def test_shrinker_minimizes_injected_failure() -> None:
    """The shrinker reduces a synthetic failure to its single guilty op."""
    program = generate_program(BASE_SEED)
    assert len(program["ops"]) >= 3
    poison = ("legacy", {"config": 0, "rep": 0, "value": 999})

    def fails(p) -> bool:
        return poison in p["ops"]

    program = dict(program)
    program["ops"] = program["ops"][:2] + [poison] + program["ops"][2:]
    minimal = shrink_program(program, fails)
    assert minimal["ops"] == [poison]
