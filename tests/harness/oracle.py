"""Pure-Python knowledge oracle for the differential property harness.

A deliberately naive re-implementation of the
:class:`repro.engine.knowledge.KnowledgeStorage` semantics using one Python
``set`` of message identifiers per node — no numpy, no bit packing, no
kernels, no layouts.  Every bulk operation follows the snapshot-round
discipline literally (gather all source sets as copies, then write), so the
oracle is obviously correct by inspection and any divergence from an engine
layout/backend combination indicts the engine, not the reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["OracleKnowledge"]


class OracleKnowledge:
    """Set-per-node reference model of the knowledge-storage contract."""

    def __init__(
        self, n_nodes: int, n_messages: Optional[int] = None, *, initialize_own: bool = True
    ) -> None:
        self.n_nodes = int(n_nodes)
        self.n_messages = int(n_messages if n_messages is not None else n_nodes)
        self.rows_: List[set] = [set() for _ in range(self.n_nodes)]
        if initialize_own:
            for i in range(min(self.n_nodes, self.n_messages)):
                self.rows_[i].add(i)

    # ------------------------------------------------------------------ #
    # Bulk operations (snapshot semantics, mirroring KnowledgeStorage)
    # ------------------------------------------------------------------ #
    def apply_transmissions(self, senders: Sequence[int], receivers: Sequence[int]) -> None:
        """Directed sends, all evaluated against start-of-step state."""
        snap = [set(self.rows_[s]) for s in senders]
        for sent, r in zip(snap, receivers):
            self.rows_[r] |= sent

    def apply_exchange(self, callers: Sequence[int], targets: Sequence[int]) -> None:
        """Push–pull both ways, all reads from start-of-step state.

        The engine's saturation filter (``complete`` / ``complete_row``) is
        a bit-exact shortcut whenever every participating row is a subset of
        the completion row, so the oracle never models it: a plain
        snapshot union must match the filtered engine result too.
        """
        snap: Dict[int, set] = {}
        for node in list(callers) + list(targets):
            if node not in snap:
                snap[node] = set(self.rows_[node])
        for c, t in zip(callers, targets):
            self.rows_[t] |= snap[c]
            self.rows_[c] |= snap[t]

    def apply_event(self, caller: int, target: int) -> None:
        """One asynchronous push–pull wakeup, applied immediately (no batch)."""
        sent = set(self.rows_[caller])
        pulled = set(self.rows_[target])
        self.rows_[target] |= sent
        self.rows_[caller] |= pulled

    def scatter_rows(
        self,
        source: Sequence[Sequence[int]],
        src_idx: Sequence[int],
        receivers: Sequence[int],
    ) -> None:
        """OR externally staged rows (as message-id lists) into receivers."""
        for s, r in zip(src_idx, receivers):
            self.rows_[r] |= set(source[s])

    def assign_rows(self, nodes: Sequence[int], messages: Sequence[int]) -> None:
        for node in nodes:
            self.rows_[node] = set(messages)

    # ------------------------------------------------------------------ #
    # Point mutators and queries
    # ------------------------------------------------------------------ #
    def add(self, node: int, message: int) -> None:
        self.rows_[node].add(message)

    def add_many(self, nodes: Sequence[int], message: int) -> None:
        for node in nodes:
            self.rows_[node].add(message)

    def count_missing(self, mask: Sequence[int], rows: Sequence[int]) -> List[int]:
        """Per-row deficits against a target message set."""
        target = set(mask)
        return [len(target - self.rows_[r]) for r in rows]

    def counts(self) -> List[int]:
        return [len(row) for row in self.rows_]

    def complete_rows(self) -> List[bool]:
        """Which rows know every message (the saturation mask)."""
        return [len(row) == self.n_messages for row in self.rows_]

    # ------------------------------------------------------------------ #
    # Materialization (for bit-exact comparison with the engine)
    # ------------------------------------------------------------------ #
    def packed(self) -> np.ndarray:
        """The state as a dense packed uint64 matrix, engine word layout."""
        words = max(1, -(-self.n_messages // 64))
        out = np.zeros((self.n_nodes, words), dtype=np.uint64)
        for i, row in enumerate(self.rows_):
            for message in row:
                out[i, message // 64] |= np.uint64(1) << np.uint64(message % 64)
        return out
