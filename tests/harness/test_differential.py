"""Property-based differential harness: layouts x backends vs a set oracle.

Seeded random programs (:mod:`programs`) exercise every knowledge-storage
bulk primitive — transmissions, filtered and unfiltered exchanges, scatter,
assignment, point adds, deficit recounts and event-clock batches — and each
program is replayed on every layout x backend combination against the pure
Python set-per-node oracle (:mod:`oracle`), comparing the packed state
bit-for-bit after every op.

The SAME program seeds run under every configuration, so a divergence
pinpoints the (layout, backend) pair at fault.  On failure the program is
delta-debugged to a locally-minimal op sequence and the assertion message
prints it along with the seed and replay instructions.

``REPRO_HARNESS_PROGRAMS`` scales the number of programs per configuration
(default 25 locally; CI runs 200+).
"""

from __future__ import annotations

import os

import pytest

from repro.engine import _ckernel, backends

from programs import (
    HARNESS_LAYOUTS,
    describe_failure,
    generate_program,
    run_program,
    shrink_program,
)

#: Programs per (layout, backend) configuration.  The local default keeps
#: `pytest -q` fast; the CI harness leg raises it to 200+.
N_PROGRAMS = int(os.environ.get("REPRO_HARNESS_PROGRAMS", "15"))

#: Base seed; program k uses BASE_SEED + k under every configuration.
BASE_SEED = 990000

BACKENDS = ("numpy", "c", "c-threads")


def _require_backend(name: str) -> None:
    if name != "numpy" and not _ckernel.available():
        pytest.skip("compiled kernel unavailable on this machine")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("layout", HARNESS_LAYOUTS)
def test_programs_match_oracle(layout: str, backend: str) -> None:
    _require_backend(backend)
    with backends.use(backend):
        for k in range(N_PROGRAMS):
            program = generate_program(BASE_SEED + k)
            failure = run_program(program, layout)
            if failure is None:
                continue
            # Shrink before reporting: re-run smaller candidate programs and
            # keep deletions that still diverge anywhere.
            minimal = shrink_program(
                program, lambda p: run_program(p, layout) is not None
            )
            final = run_program(minimal, layout)
            pytest.fail(describe_failure(minimal, layout, backend, final or failure))


@pytest.mark.parametrize("layout", HARNESS_LAYOUTS)
def test_programs_match_oracle_across_simd_levels(layout: str, monkeypatch) -> None:
    """The same programs, replayed at every SIMD level the CPU supports.

    ``_SWAP_MIN_WORK`` is forced to 0 so the harness's small matrices take
    the swap-form round kernels (including the saturation-filtered variant
    behind ``exchange_complete``) instead of staying on the snapshot +
    scatter path — the SIMD dispatch lives in exactly those kernels.
    """
    _require_backend("c")
    if _ckernel.simd_detected() == 0:
        pytest.skip("CPU supports no SIMD level beyond scalar")
    from repro.engine import knowledge as knowledge_mod

    monkeypatch.setattr(knowledge_mod, "_SWAP_MIN_WORK", 0)
    original = _ckernel.simd_active()
    try:
        with backends.use("c"):
            for level in range(_ckernel.simd_detected() + 1):
                _ckernel.set_simd_level(level)
                for k in range(max(1, N_PROGRAMS // 3)):
                    program = generate_program(BASE_SEED + k)
                    failure = run_program(program, layout)
                    if failure is None:
                        continue
                    minimal = shrink_program(
                        program, lambda p: run_program(p, layout) is not None
                    )
                    final = run_program(minimal, layout)
                    pytest.fail(
                        f"simd level {_ckernel.simd_name(level)}: "
                        + describe_failure(minimal, layout, "c", final or failure)
                    )
    finally:
        _ckernel.set_simd_level(original)


def test_program_generation_is_deterministic() -> None:
    a = generate_program(BASE_SEED)
    b = generate_program(BASE_SEED)
    assert a == b


def test_generator_covers_all_op_kinds() -> None:
    from programs import OP_KINDS

    seen = set()
    for k in range(200):
        seen.update(kind for kind, _ in generate_program(BASE_SEED + k)["ops"])
    assert seen == set(OP_KINDS)


def test_generator_hits_word_boundaries() -> None:
    sizes = {generate_program(BASE_SEED + k)["n_messages"] for k in range(200)}
    assert sizes & {63, 64, 65, 127, 128}


def test_shrinker_minimizes_injected_failure() -> None:
    """The shrinker reduces a synthetic failure to its single guilty op."""
    program = generate_program(BASE_SEED)
    assert len(program["ops"]) >= 3
    poison = ("add", {"node": 0, "message": program["n_messages"] - 1})

    def fails(p) -> bool:
        return poison in p["ops"]

    program = dict(program)
    program["ops"] = program["ops"][:2] + [poison] + program["ops"][2:]
    minimal = shrink_program(program, fails)
    assert minimal["ops"] == [poison]
