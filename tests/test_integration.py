"""End-to-end integration tests across protocols, graph families and failures.

These tests exercise the full public API the way a downstream user would and
check the paper's headline claims at a small scale:

* all three gossiping protocols complete on all supported graph families,
* the qualitative cost ordering of Figure 1 holds,
* the memory model's time/messages trade-off versus the baseline holds,
* combining leader election with gossiping works end to end.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    FastGossiping,
    LeaderElection,
    MemoryGossiping,
    PushPullGossip,
    complete_graph,
    erdos_renyi,
    hypercube,
    make_graph,
    paper_graph_spec,
    random_regular,
    sample_uniform_failures,
)
from repro.analysis import fit_constant, push_pull_gossip_messages_per_node
from repro.core import tuned_memory_gossiping
from repro.engine import MessageAccounting
from repro.graphs import GraphSpec, power_law_graph


PROTOCOLS = [
    ("push-pull", lambda: PushPullGossip()),
    ("fast-gossiping", lambda: FastGossiping()),
    ("memory", lambda: MemoryGossiping(leader=0)),
]

GRAPHS = [
    ("paper-er", lambda: erdos_renyi(256, expected_degree=64, rng=1, require_connected=True)),
    ("regular", lambda: random_regular(256, 32, rng=2, require_connected=True)),
    ("complete", lambda: complete_graph(128)),
    ("hypercube", lambda: hypercube(7)),
]


class TestAllProtocolsOnAllGraphs:
    @pytest.mark.parametrize("graph_name,graph_factory", GRAPHS)
    @pytest.mark.parametrize("protocol_name,protocol_factory", PROTOCOLS)
    def test_completion(self, graph_name, graph_factory, protocol_name, protocol_factory):
        graph = graph_factory()
        result = protocol_factory().run(graph, rng=3)
        assert result.completed, f"{protocol_name} failed on {graph_name}"
        assert result.knowledge.is_complete()
        assert result.rounds > 0
        assert result.total_messages() > 0


class TestFigureOneOrdering:
    def test_cost_ordering_and_tradeoff(self, medium_paper_graph):
        push_pull = PushPullGossip().run(medium_paper_graph, rng=4)
        fast = FastGossiping().run(medium_paper_graph, rng=5)
        memory = MemoryGossiping(leader=0).run(medium_paper_graph, rng=6)
        # Message ordering of Figure 1.
        assert memory.messages_per_node() < fast.messages_per_node()
        assert fast.messages_per_node() < push_pull.messages_per_node()
        # Time/messages trade-off: cheaper protocols take more rounds.
        assert fast.rounds > push_pull.rounds

    def test_push_pull_scales_like_log_n(self):
        sizes = (128, 256, 512, 1024)
        costs = []
        for index, n in enumerate(sizes):
            graph = make_graph(paper_graph_spec(n), rng=10 + index)
            result = PushPullGossip().run(graph, rng=20 + index)
            assert result.completed
            costs.append(result.messages_per_node())
        constant = fit_constant(sizes, costs, push_pull_gossip_messages_per_node)
        predicted = [constant * math.log2(n) for n in sizes]
        for measured, expected in zip(costs, predicted):
            assert measured == pytest.approx(expected, rel=0.35)

    def test_memory_cost_flat_in_n(self):
        costs = []
        for index, n in enumerate((128, 512)):
            graph = make_graph(paper_graph_spec(n), rng=30 + index)
            result = MemoryGossiping(leader=0).run(graph, rng=40 + index)
            assert result.completed
            costs.append(result.messages_per_node())
        assert abs(costs[1] - costs[0]) < 4.0


class TestLeaderElectionPipeline:
    def test_election_plus_gossip(self, small_paper_graph):
        election = LeaderElection().run(small_paper_graph, rng=7)
        assert election.unique
        gossip = MemoryGossiping(leader=election.leader).run(small_paper_graph, rng=8)
        assert gossip.completed
        # End-to-end cost: still far below the push-pull baseline.
        baseline = PushPullGossip().run(small_paper_graph, rng=9)
        total = gossip.messages_per_node() + election.messages_per_node()
        assert total < 2 * baseline.messages_per_node()


class TestFailureResilience:
    def test_memory_model_with_failures_end_to_end(self, medium_paper_graph):
        n = medium_paper_graph.n
        params = tuned_memory_gossiping().with_overrides(num_trees=3)
        plan = sample_uniform_failures(n, n // 10, rng=50, protect=[0])
        result = MemoryGossiping(params, leader=0).run(
            medium_paper_graph, rng=51, failures=plan
        )
        alive = plan.alive_mask(n)
        # Healthy nodes learned the overwhelming majority of healthy messages.
        # This is a with-high-probability property: a node whose every
        # informing contact crashes before Phase II is cut off from the
        # replay, so assert over the population rather than the single
        # unluckiest node.
        counts = result.knowledge.counts()[alive]
        well_informed = counts >= 0.9 * (n - n // 10)
        assert well_informed.mean() >= 0.99
        assert np.median(counts) >= 0.99 * (n - n // 10)
        # Failed nodes never transmitted anything.
        per_node = result.ledger.per_node(MessageAccounting.OPENS_AND_PACKETS)
        phase1_only = result.ledger.phase_totals("phase1-tree-construction")
        assert per_node[plan.failed].sum() <= phase1_only.channel_opens

    def test_power_law_substrate(self):
        graph = power_law_graph(400, 2.3, min_degree=3, rng=60)
        # Heavy-tailed graphs may be disconnected; restrict to the giant
        # component via require-connected resampling is not available here, so
        # simply check the protocol runs and reaches the giant component.
        if graph.min_degree() == 0 or not graph.is_connected():
            pytest.skip("sampled power-law graph not connected")
        result = PushPullGossip().run(graph, rng=61)
        assert result.completed


class TestSpecDrivenWorkflow:
    def test_user_workflow_from_spec_to_report(self, tmp_path):
        """The README workflow: spec -> graph -> protocol -> result -> save."""
        spec = GraphSpec("erdos_renyi", 128, {"p": 0.3, "require_connected": True})
        graph = make_graph(spec, rng=70)
        result = FastGossiping().run(graph, rng=71, record_trace=True)
        assert result.completed
        from repro.io import save_json

        path = save_json(result.summary(), tmp_path / "run.json")
        assert path.exists()
        assert result.trace.final_coverage() == pytest.approx(1.0)
