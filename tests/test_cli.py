"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "fast-gossiping"
        assert args.nodes == 1024

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "figure1"])
        assert args.name == "figure1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "not-an-experiment"])


class TestRunCommand:
    def test_run_memory_protocol(self, capsys):
        code = main(["run", "--protocol", "memory", "-n", "256", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory" in out
        assert "packets/node" in out

    def test_run_json_output(self, capsys):
        code = main(["run", "--protocol", "push-pull", "-n", "128", "--seed", "1", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["protocol"] == "push-pull"
        assert data["completed"] is True

    def test_run_on_complete_graph(self, capsys):
        code = main(["run", "--graph", "complete", "-n", "128", "--seed", "2"])
        assert code == 0
        assert "complete(n=128)" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table1_experiment(self, capsys):
        code = main(["experiment", "table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm1_fast_gossiping" in out

    def test_figure2_with_output_and_plot(self, tmp_path, capsys):
        code = main(
            [
                "experiment",
                "figure2",
                "--seed",
                "7",
                "--plot",
                "--output",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loss" in out
        assert "legend:" in out  # the ASCII plot was rendered
        assert (tmp_path / "figure2_rows.csv").exists()
        assert (tmp_path / "figure2_rows.json").exists()


class TestScenariosCommand:
    def test_list(self, capsys):
        code = main(["scenarios", "list"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("figure1", "table1", "density", "graph-models"):
            assert name in out

    def test_run_smoke_with_store(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            ["scenarios", "run", "figure2", "--smoke", "--out", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loss" in out
        assert (out_dir / "store" / "figure2.jsonl").exists()
        assert (out_dir / "figure2_rows.json").exists()
        assert (out_dir / "figure2_rows.csv").exists()

    def test_rerun_without_resume_fails(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert main(["scenarios", "run", "figure2", "--smoke", "--out", out_dir]) == 0
        capsys.readouterr()
        code = main(["scenarios", "run", "figure2", "--smoke", "--out", out_dir])
        captured = capsys.readouterr()
        assert code == 1
        assert "resume" in captured.err

    def test_resume_reproduces_store(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["scenarios", "run", "figure2", "--smoke", "--out", str(out_dir)]) == 0
        store_file = out_dir / "store" / "figure2.jsonl"
        full = store_file.read_bytes()
        # Simulate a kill: drop the last record plus append half a line.
        lines = full.splitlines(keepends=True)
        store_file.write_bytes(b"".join(lines[:-1]) + lines[-1][:10])
        code = main(
            ["scenarios", "run", "figure2", "--smoke", "--out", str(out_dir), "--resume"]
        )
        assert code == 0
        assert store_file.read_bytes() == full

    def test_resume_requires_out(self, capsys):
        code = main(["scenarios", "run", "figure2", "--smoke", "--resume"])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_unknown_scenario(self, capsys):
        code = main(["scenarios", "run", "not-a-scenario"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["scenarios", "run", "figure2"])
        assert args.max_retries == 2
        assert args.timeout is None
        assert args.chaos is None
        assert args.chaos_seed == 0
        assert args.chaos_attempts == 1

    def test_invalid_chaos_spec(self, capsys):
        code = main(["scenarios", "run", "figure2", "--smoke", "--chaos", "meteor=1"])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_chaos_run_completes_clean(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            [
                "scenarios", "run", "figure2", "--smoke",
                "--out", str(out_dir),
                "--chaos", "kill=1,error=1",
                "--chaos-seed", "7",
                "--max-retries", "3",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "supervision:" in captured.err
        assert "0 quarantined" in captured.err
        assert (out_dir / "store" / "figure2.jsonl").exists()
        assert (out_dir / "figure2_rows.json").exists()

    def test_quarantine_exits_nonzero(self, capsys):
        # A fault outliving the retry budget simulates a poison configuration:
        # the run finishes (degraded) and exits 3 rather than aborting.
        code = main(
            [
                "scenarios", "run", "figure2", "--smoke",
                "--chaos", "error=1",
                "--chaos-attempts", "99",
                "--max-retries", "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "quarantined" in captured.err

    def test_keyboard_interrupt_prints_resume_command(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "run_scenario", interrupt)
        code = main(
            ["scenarios", "run", "figure2", "--smoke", "--out", str(tmp_path / "out")]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "safely on disk" in captured.err
        assert "resume with" in captured.err
        assert "--resume" in captured.err
        assert "figure2" in captured.err

    def test_run_table1_scenario(self, capsys):
        code = main(["scenarios", "run", "table1", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm1_fast_gossiping" in out

    def test_run_multiple_scenarios(self, capsys):
        code = main(["scenarios", "run", "table1", "election", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm1_fast_gossiping" in out
        assert "budgeted" in out


class TestOtherCommands:
    def test_table1_command(self, capsys):
        code = main(["table1", "1024"])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase1_distribution_steps" in out
        assert "fanout" in out

    def test_graph_info(self, capsys):
        code = main(["graph-info", "-n", "256", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean_degree" in out
        assert "connected" in out


@pytest.fixture(scope="module")
def smoke_store(tmp_path_factory):
    """One figure2 smoke run whose store backs the `repro results` tests."""
    out_dir = tmp_path_factory.mktemp("results-cli")
    assert main(["scenarios", "run", "figure2", "--smoke", "--out", str(out_dir)]) == 0
    return out_dir / "store"


class TestResultsCommand:
    def test_stats_overview(self, smoke_store, capsys):
        code = main(["results", "stats", str(smoke_store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "figure2" in out
        assert "records" in out

    def test_stats_metrics(self, smoke_store, capsys):
        code = main(["results", "stats", str(smoke_store), "figure2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "metric" in out
        assert "p50" in out and "p99" in out

    def test_stats_group_by_json(self, smoke_store, capsys):
        code = main(
            [
                "results", "stats", str(smoke_store), "figure2",
                "--group-by", "n", "--metrics", "rounds", "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert rows and all("n" in row and "repetitions" in row for row in rows)

    def test_query_json_rows_carry_identity(self, smoke_store, capsys):
        code = main(["results", "query", str(smoke_store), "figure2", "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert rows and {"config", "repetition", "seed"} <= set(rows[0])

    def test_query_where_and_limit(self, smoke_store, capsys):
        code = main(
            [
                "results", "query", str(smoke_store), "figure2",
                "--where", "repetition=0", "--limit", "1", "--json",
            ]
        )
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(rows) == 1
        assert rows[0]["repetition"] == 0

    def test_query_bad_where(self, smoke_store, capsys):
        code = main(["results", "query", str(smoke_store), "figure2", "--where", "oops"])
        assert code == 2
        assert "FIELD=VALUE" in capsys.readouterr().err

    def test_rebuild(self, smoke_store, capsys):
        code = main(["results", "rebuild", str(smoke_store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "rebuilt figure2" in out

    def test_missing_store_dir(self, tmp_path, capsys):
        code = main(["results", "stats", str(tmp_path / "nope")])
        assert code == 2
        assert "not a store directory" in capsys.readouterr().err

    def test_disabled_index_is_an_error(self, smoke_store, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_STORE_INDEX", "1")
        code = main(["results", "stats", str(smoke_store)])
        assert code == 2
        assert "REPRO_DISABLE_STORE_INDEX" in capsys.readouterr().err


class TestCacheFromOption:
    def test_cache_from_requires_out(self, capsys):
        code = main(
            ["scenarios", "run", "figure2", "--smoke", "--cache-from", "/tmp/x"]
        )
        assert code == 2
        assert "--cache-from requires --out" in capsys.readouterr().err

    def test_cache_from_must_be_directory(self, tmp_path, capsys):
        code = main(
            [
                "scenarios", "run", "figure2", "--smoke",
                "--out", str(tmp_path / "out"),
                "--cache-from", str(tmp_path / "missing"),
            ]
        )
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_cache_from_serves_all_pairs(self, smoke_store, tmp_path, capsys):
        code = main(
            [
                "scenarios", "run", "figure2", "--smoke",
                "--out", str(tmp_path / "fresh"),
                "--cache-from", str(smoke_store),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "from --cache-from" in captured.err
        assert "0 executed" in captured.err

    def test_warm_rerun_reports_full_cache(self, smoke_store, capsys):
        code = main(
            [
                "scenarios", "run", "figure2", "--smoke",
                "--out", str(smoke_store.parent), "--resume",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cache:" in captured.err
        assert "0 executed" in captured.err
