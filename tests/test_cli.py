"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "fast-gossiping"
        assert args.nodes == 1024

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "figure1"])
        assert args.name == "figure1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "not-an-experiment"])


class TestRunCommand:
    def test_run_memory_protocol(self, capsys):
        code = main(["run", "--protocol", "memory", "-n", "256", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "memory" in out
        assert "packets/node" in out

    def test_run_json_output(self, capsys):
        code = main(["run", "--protocol", "push-pull", "-n", "128", "--seed", "1", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["protocol"] == "push-pull"
        assert data["completed"] is True

    def test_run_on_complete_graph(self, capsys):
        code = main(["run", "--graph", "complete", "-n", "128", "--seed", "2"])
        assert code == 0
        assert "complete(n=128)" in capsys.readouterr().out


class TestExperimentCommand:
    def test_table1_experiment(self, capsys):
        code = main(["experiment", "table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm1_fast_gossiping" in out

    def test_figure2_with_output_and_plot(self, tmp_path, capsys):
        code = main(
            [
                "experiment",
                "figure2",
                "--seed",
                "7",
                "--plot",
                "--output",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loss" in out
        assert "legend:" in out  # the ASCII plot was rendered
        assert (tmp_path / "figure2_rows.csv").exists()
        assert (tmp_path / "figure2_rows.json").exists()


class TestOtherCommands:
    def test_table1_command(self, capsys):
        code = main(["table1", "1024"])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase1_distribution_steps" in out
        assert "fanout" in out

    def test_graph_info(self, capsys):
        code = main(["graph-info", "-n", "256", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean_degree" in out
        assert "connected" in out
