"""Tests for the random graph generators and the GraphSpec factory."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    GraphSpec,
    complete_graph,
    configuration_model,
    erdos_renyi,
    hypercube,
    make_graph,
    paper_edge_probability,
    paper_expected_degree,
    paper_graph_spec,
    power_law_degree_sequence,
    power_law_graph,
    random_regular,
)
from repro.graphs.erdos_renyi import expected_degree_to_p


class TestErdosRenyi:
    def test_basic_properties(self):
        graph = erdos_renyi(200, 0.1, rng=1)
        assert graph.n == 200
        assert graph.num_edges > 0

    def test_edge_count_near_expectation(self):
        n, p = 400, 0.05
        graph = erdos_renyi(n, p, rng=2)
        expected = p * n * (n - 1) / 2
        assert abs(graph.num_edges - expected) < 0.2 * expected

    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, rng=1).num_edges == 0
        assert erdos_renyi(10, 1.0, rng=1).num_edges == 45

    def test_expected_degree_parametrisation(self):
        graph = erdos_renyi(300, expected_degree=20, rng=3)
        assert abs(graph.mean_degree() - 20) < 5

    def test_exactly_one_parametrisation_required(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 0.5, expected_degree=3)
        with pytest.raises(ValueError):
            erdos_renyi(10)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5)

    def test_require_connected(self):
        n = 256
        graph = erdos_renyi(n, paper_edge_probability(n), rng=4, require_connected=True)
        assert graph.is_connected()

    def test_require_connected_impossible(self):
        with pytest.raises(RuntimeError):
            erdos_renyi(50, 0.0, rng=5, require_connected=True, max_retries=2)

    def test_deterministic_given_seed(self):
        a = erdos_renyi(100, 0.1, rng=7)
        b = erdos_renyi(100, 0.1, rng=7)
        assert np.array_equal(a.indices, b.indices)

    def test_degree_concentration_paper_density(self):
        """In the paper's regime degrees concentrate around log^2 n."""
        n = 1024
        graph = erdos_renyi(n, paper_edge_probability(n), rng=8)
        expected = math.log2(n) ** 2
        assert abs(graph.mean_degree() - expected) < 0.15 * expected
        assert graph.min_degree() > 0.4 * expected

    def test_helpers(self):
        assert expected_degree_to_p(101, 10) == pytest.approx(0.1)
        assert expected_degree_to_p(1, 10) == 0.0
        assert paper_edge_probability(2) <= 1.0
        assert paper_expected_degree(1024) == pytest.approx(100.0)


class TestConfigurationModel:
    def test_regular_degrees_close(self):
        graph = random_regular(200, 20, rng=1)
        # Erased configuration model: degrees may lose a few stubs.
        assert graph.max_degree() <= 20
        assert graph.mean_degree() > 18

    def test_degree_sum_must_be_even(self):
        with pytest.raises(ValueError):
            configuration_model([3, 3, 1])
        with pytest.raises(ValueError):
            random_regular(5, 3)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            configuration_model([2, -1, 1])

    def test_invalid_regular_params(self):
        with pytest.raises(ValueError):
            random_regular(0, 2)
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_custom_degree_sequence(self):
        degrees = [1, 1, 2, 2, 4, 4, 3, 3]
        graph = configuration_model(degrees, rng=2)
        assert graph.n == 8
        assert graph.degrees.sum() <= sum(degrees)

    def test_require_connected(self):
        graph = random_regular(128, 16, rng=3, require_connected=True)
        assert graph.is_connected()

    def test_deterministic(self):
        a = random_regular(64, 8, rng=5)
        b = random_regular(64, 8, rng=5)
        assert np.array_equal(a.indices, b.indices)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=60), st.integers(min_value=2, max_value=6))
    def test_property_simple_and_bounded(self, n, d):
        if (n * d) % 2:
            d += 1
        if d >= n:
            d = n - 1 if (n * (n - 1)) % 2 == 0 else n - 2
        graph = random_regular(n, max(d, 0), rng=0)
        assert graph.max_degree() <= max(d, 0)
        for u in range(graph.n):
            assert u not in graph.neighbors(u).tolist()


class TestDeterministicGraphs:
    def test_complete_graph(self):
        graph = complete_graph(10)
        assert graph.num_edges == 45
        assert graph.min_degree() == graph.max_degree() == 9
        assert graph.is_connected()

    def test_complete_single_node(self):
        assert complete_graph(1).num_edges == 0

    def test_complete_invalid(self):
        with pytest.raises(ValueError):
            complete_graph(0)

    def test_hypercube(self):
        graph = hypercube(4)
        assert graph.n == 16
        assert graph.min_degree() == graph.max_degree() == 4
        assert graph.is_connected()
        # Neighbours differ in exactly one bit.
        for u in range(graph.n):
            for v in graph.neighbors(u).tolist():
                assert bin(u ^ v).count("1") == 1

    def test_hypercube_dimension_zero(self):
        assert hypercube(0).n == 1

    def test_hypercube_invalid(self):
        with pytest.raises(ValueError):
            hypercube(-1)


class TestPowerLaw:
    def test_degree_sequence_even_sum(self):
        for seed in range(5):
            degrees = power_law_degree_sequence(101, 2.5, rng=seed)
            assert degrees.sum() % 2 == 0
            assert degrees.min() >= 2

    def test_degree_sequence_bounds(self):
        degrees = power_law_degree_sequence(400, 2.5, min_degree=3, max_degree=20, rng=1)
        assert degrees.min() >= 3
        assert degrees.max() <= 21  # one node may be bumped to fix parity

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 0.9)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.5, min_degree=0)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.5, min_degree=5, max_degree=4)
        with pytest.raises(ValueError):
            power_law_degree_sequence(0, 2.5)

    def test_graph_is_heavy_tailed(self):
        graph = power_law_graph(500, 2.2, rng=2)
        assert graph.n == 500
        assert graph.max_degree() > 2 * graph.mean_degree()


class TestGraphSpec:
    def test_spec_roundtrip(self):
        spec = GraphSpec(kind="erdos_renyi", n=64, params={"p": 0.2})
        assert GraphSpec.from_dict(spec.as_dict()) == spec
        assert "erdos_renyi" in spec.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GraphSpec(kind="nonsense", n=10)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            GraphSpec(kind="complete", n=0)

    def test_make_graph_all_kinds(self):
        specs = [
            GraphSpec("erdos_renyi", 64, {"p": 0.2}),
            GraphSpec("random_regular", 64, {"d": 6}),
            GraphSpec("configuration_model", 6, {"degrees": [2, 2, 2, 2, 2, 2]}),
            GraphSpec("complete", 16),
            GraphSpec("hypercube", 16),
            GraphSpec("power_law", 100, {"exponent": 2.5}),
        ]
        for spec in specs:
            graph = make_graph(spec, rng=1)
            assert graph.n == spec.n

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError):
            make_graph(GraphSpec("hypercube", 12))

    def test_paper_graph_spec(self):
        spec = paper_graph_spec(1024)
        assert spec.kind == "erdos_renyi"
        assert spec.params["p"] == pytest.approx(paper_edge_probability(1024))
        graph = make_graph(spec, rng=1)
        assert graph.is_connected()

    def test_make_graph_deterministic(self):
        spec = GraphSpec("erdos_renyi", 128, {"p": 0.1})
        a = make_graph(spec, rng=9)
        b = make_graph(spec, rng=9)
        assert np.array_equal(a.indices, b.indices)
