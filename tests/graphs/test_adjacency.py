"""Tests for repro.graphs.adjacency (CSR adjacency structure)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import Adjacency
from repro.engine.rng import make_rng


def path_graph(n: int) -> Adjacency:
    edges = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    return Adjacency.from_edges(n, edges)


class TestConstruction:
    def test_from_edges_basic(self):
        graph = Adjacency.from_edges(4, np.asarray([[0, 1], [1, 2], [2, 3]]))
        assert graph.n == 4
        assert graph.num_edges == 3
        assert graph.degrees.tolist() == [1, 2, 2, 1]

    def test_self_loops_removed(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 0], [0, 1]]))
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 0)

    def test_duplicate_edges_removed(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 1], [1, 0], [0, 1]]))
        assert graph.num_edges == 1
        assert graph.degree(0) == 1

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Adjacency.from_edges(3, np.asarray([[0, 3]]))

    def test_empty_graph(self):
        graph = Adjacency.from_edges(4, np.zeros((0, 2), dtype=np.int64))
        assert graph.num_edges == 0
        assert graph.min_degree() == 0
        assert graph.is_connected() is False  # 4 isolated nodes

    def test_single_node(self):
        graph = Adjacency.from_edges(1, np.zeros((0, 2), dtype=np.int64))
        assert graph.is_connected()

    def test_from_neighbor_lists(self):
        graph = Adjacency.from_neighbor_lists([[1, 2], [0], [0]])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 2)

    def test_networkx_roundtrip(self):
        nx = pytest.importorskip("networkx")
        original = nx.erdos_renyi_graph(30, 0.2, seed=1)
        graph = Adjacency.from_networkx(original)
        assert graph.n == 30
        assert graph.num_edges == original.number_of_edges()
        back = graph.to_networkx()
        assert back.number_of_edges() == original.number_of_edges()

    def test_inconsistent_csr_rejected(self):
        with pytest.raises(ValueError):
            Adjacency(np.asarray([0, 2]), np.asarray([1]))


class TestQueries:
    def test_neighbors_sorted(self):
        graph = Adjacency.from_edges(5, np.asarray([[0, 4], [0, 2], [0, 1]]))
        assert graph.neighbors(0).tolist() == [1, 2, 4]

    def test_has_edge_symmetry(self):
        graph = path_graph(5)
        for u in range(5):
            for v in range(5):
                assert graph.has_edge(u, v) == graph.has_edge(v, u)
                assert graph.has_edge(u, v) == (abs(u - v) == 1)

    def test_edge_list_canonical(self):
        graph = path_graph(4)
        edges = graph.edge_list()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_degree_stats(self):
        graph = path_graph(5)
        assert graph.min_degree() == 1
        assert graph.max_degree() == 2
        assert graph.mean_degree() == pytest.approx(8 / 5)


class TestSampling:
    def test_sample_neighbors_valid(self):
        graph = path_graph(10)
        rng = make_rng(0)
        nodes = np.arange(10)
        samples = graph.sample_neighbors(nodes, rng)
        for node, sample in zip(nodes.tolist(), samples.tolist()):
            assert graph.has_edge(node, sample)

    def test_sample_isolated_gives_minus_one(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 1]]))
        samples = graph.sample_neighbors(np.asarray([2]), make_rng(0))
        assert samples.tolist() == [-1]

    def test_sample_empty_input(self):
        graph = path_graph(3)
        assert graph.sample_neighbors(np.asarray([], dtype=np.int64), make_rng(0)).size == 0

    def test_sample_neighbor_scalar(self):
        graph = path_graph(3)
        assert graph.sample_neighbor(0, make_rng(0)) == 1

    def test_sample_is_roughly_uniform(self):
        graph = Adjacency.from_edges(5, np.asarray([[0, 1], [0, 2], [0, 3], [0, 4]]))
        rng = make_rng(1)
        samples = graph.sample_neighbors(np.zeros(4000, dtype=np.int64), rng)
        counts = np.bincount(samples, minlength=5)[1:]
        assert counts.min() > 800  # each neighbour ~1000 expected

    def test_sample_avoiding(self):
        graph = Adjacency.from_edges(5, np.asarray([[0, 1], [0, 2], [0, 3], [0, 4]]))
        rng = make_rng(2)
        for _ in range(20):
            picked = graph.sample_neighbors_avoiding(0, rng, avoid=[1, 2], count=1)
            assert picked.size == 1
            assert picked[0] in (3, 4)

    def test_sample_avoiding_distinct(self):
        graph = Adjacency.from_edges(6, np.asarray([[0, i] for i in range(1, 6)]))
        picked = graph.sample_neighbors_avoiding(0, make_rng(3), count=4)
        assert picked.size == 4
        assert len(set(picked.tolist())) == 4

    def test_sample_avoiding_all_avoided(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 1], [0, 2]]))
        picked = graph.sample_neighbors_avoiding(0, make_rng(4), avoid=[1, 2], count=1)
        assert picked.size == 0

    def test_sample_avoiding_count_exceeds_neighbors(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 1], [0, 2]]))
        picked = graph.sample_neighbors_avoiding(0, make_rng(5), count=10)
        assert set(picked.tolist()) == {1, 2}

    def test_sample_avoiding_with_replacement(self):
        graph = Adjacency.from_edges(2, np.asarray([[0, 1]]))
        picked = graph.sample_neighbors_avoiding(0, make_rng(6), count=5, distinct=False)
        assert picked.size == 5
        assert set(picked.tolist()) == {1}


class TestSampleAvoidingMany:
    """The batched open-avoid kernel (one searchsorted pass, skip-sampling)."""

    def _scalar_reference(self, graph, nodes, uniforms, avoid, count):
        out = np.full((len(nodes), count), -1, dtype=np.int64)
        for i, v in enumerate(nodes):
            nbrs = graph.neighbors(v).tolist()
            excluded = []
            if avoid is not None:
                for a in avoid[i]:
                    if a < 0:
                        continue
                    if a in nbrs and nbrs.index(a) not in excluded:
                        excluded.append(nbrs.index(a))
            excluded.sort()
            for j in range(count):
                pool = len(nbrs) - len(excluded)
                if pool <= 0:
                    break
                rank = min(int(uniforms[i, j] * pool), pool - 1)
                for position in excluded:
                    if rank >= position:
                        rank += 1
                out[i, j] = nbrs[rank]
                excluded.append(rank)
                excluded.sort()
        return out

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_skip_sampling(self, seed):
        """Batch output is bit-identical to the per-node reference given the
        documented stream discipline (one ``rng.random((m, count))`` draw)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 48))
        graph = Adjacency.from_edges(
            n, rng.integers(0, n, (4 * n, 2)).astype(np.int64)
        )
        m = int(rng.integers(1, 3 * n))
        nodes = rng.integers(0, n, m).astype(np.int64)
        count = int(rng.integers(1, 5))
        avoid = rng.integers(-1, n, (m, 4)).astype(np.int64)
        sample_seed = int(rng.integers(1 << 31))
        got = graph.sample_neighbors_avoiding_many(
            nodes, make_rng(sample_seed), avoid=avoid, count=count
        )
        uniforms = make_rng(sample_seed).random((m, count))
        expected = self._scalar_reference(graph, nodes.tolist(), uniforms, avoid, count)
        assert np.array_equal(got, expected)

    def test_avoid_and_distinctness_respected(self):
        graph = Adjacency.from_edges(6, np.asarray([[0, i] for i in range(1, 6)]))
        nodes = np.zeros(64, dtype=np.int64)
        avoid = np.full((64, 2), -1, dtype=np.int64)
        avoid[:, 0] = 1
        picked = graph.sample_neighbors_avoiding_many(
            nodes, make_rng(9), avoid=avoid, count=3
        )
        assert picked.shape == (64, 3)
        for row in picked:
            assert 1 not in row.tolist()
            assert len(set(row.tolist())) == 3
            assert set(row.tolist()) <= {2, 3, 4, 5}

    def test_shortfall_padded_with_minus_one_trailing(self):
        graph = Adjacency.from_edges(4, np.asarray([[0, 1], [0, 2], [0, 3]]))
        avoid = np.asarray([[1, -1]], dtype=np.int64)
        picked = graph.sample_neighbors_avoiding_many(
            np.zeros(1, dtype=np.int64), make_rng(10), avoid=avoid, count=4
        )
        assert picked.shape == (1, 4)
        assert set(picked[0, :2].tolist()) == {2, 3}
        assert picked[0, 2:].tolist() == [-1, -1]

    def test_isolated_node_gets_no_sample(self):
        graph = Adjacency.from_edges(3, np.asarray([[0, 1]]))
        picked = graph.sample_neighbors_avoiding_many(
            np.asarray([2, 0], dtype=np.int64), make_rng(11), count=1
        )
        assert picked[0, 0] == -1
        assert picked[1, 0] == 1

    def test_duplicate_avoid_entries_not_double_counted(self):
        graph = Adjacency.from_edges(4, np.asarray([[0, 1], [0, 2], [0, 3]]))
        avoid = np.asarray([[1, 1, 1, -1]], dtype=np.int64)
        for seed in range(10):
            picked = graph.sample_neighbors_avoiding_many(
                np.zeros(1, dtype=np.int64), make_rng(seed), avoid=avoid, count=2
            )
            assert set(picked[0].tolist()) == {2, 3}

    def test_empty_inputs(self):
        graph = path_graph(3)
        assert graph.sample_neighbors_avoiding_many(
            np.zeros(0, dtype=np.int64), make_rng(0), count=2
        ).shape == (0, 2)
        assert graph.sample_neighbors_avoiding_many(
            np.zeros(4, dtype=np.int64), make_rng(0), count=0
        ).shape == (4, 0)

    def test_stream_consumption_is_shape_only(self):
        """The draw count depends only on (m, count), never on degrees, so
        interleaved protocols stay reproducible."""
        graph = Adjacency.from_edges(5, np.asarray([[0, 1], [0, 2], [3, 4]]))
        rng_a = make_rng(21)
        rng_b = make_rng(21)
        graph.sample_neighbors_avoiding_many(
            np.asarray([0, 3], dtype=np.int64), rng_a, count=2
        )
        rng_b.random((2, 2))
        assert rng_a.random() == rng_b.random()

    def test_neighbor_positions(self):
        graph = Adjacency.from_edges(5, np.asarray([[0, 1], [0, 3], [2, 3]]))
        nodes = np.asarray([0, 0, 0, 2, 4], dtype=np.int64)
        values = np.asarray([1, 2, 3, 3, 0], dtype=np.int64)
        assert graph.neighbor_positions(nodes, values).tolist() == [0, -1, 1, 0, -1]

    def test_out_of_range_avoid_addresses_are_ignored(self):
        """Regression: an avoid address >= n used to alias into the next
        node's key range and exclude a phantom neighbour."""
        graph = Adjacency.from_edges(
            3, np.asarray([[0, 1], [0, 2], [1, 2]])
        )  # triangle
        nodes = np.asarray([0, 0], dtype=np.int64)
        values = np.asarray([3, -7], dtype=np.int64)
        assert graph.neighbor_positions(nodes, values).tolist() == [-1, -1]
        picked = graph.sample_neighbors_avoiding_many(
            np.zeros(1, dtype=np.int64),
            make_rng(12),
            avoid=np.asarray([[3, -1]], dtype=np.int64),
            count=2,
        )
        assert set(picked[0].tolist()) == {1, 2}


class TestTraversal:
    def test_bfs_distances_path(self):
        graph = path_graph(6)
        dist = graph.bfs_distances(0)
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_bfs_cutoff(self):
        graph = path_graph(6)
        dist = graph.bfs_distances(0, cutoff=2)
        assert dist.tolist() == [0, 1, 2, -1, -1, -1]

    def test_unreachable_nodes(self):
        graph = Adjacency.from_edges(4, np.asarray([[0, 1], [2, 3]]))
        dist = graph.bfs_distances(0)
        assert dist[2] == -1 and dist[3] == -1
        assert set(graph.connected_component(0).tolist()) == {0, 1}
        assert not graph.is_connected()

    def test_connected_path(self):
        assert path_graph(10).is_connected()


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def random_edge_list(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.asarray(edges, dtype=np.int64).reshape(-1, 2)


class TestAdjacencyProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_edge_list())
    def test_handshake_lemma(self, data):
        """Sum of degrees equals twice the number of edges."""
        n, edges = data
        graph = Adjacency.from_edges(n, edges)
        assert graph.degrees.sum() == 2 * graph.num_edges

    @settings(max_examples=50, deadline=None)
    @given(random_edge_list())
    def test_symmetry_and_simplicity(self, data):
        n, edges = data
        graph = Adjacency.from_edges(n, edges)
        for u in range(n):
            nbrs = graph.neighbors(u)
            # No self loops, sorted, unique.
            assert u not in nbrs.tolist()
            assert np.all(np.diff(nbrs) > 0)
            for v in nbrs.tolist():
                assert graph.has_edge(v, u)

    @settings(max_examples=30, deadline=None)
    @given(random_edge_list())
    def test_edge_list_roundtrip(self, data):
        n, edges = data
        graph = Adjacency.from_edges(n, edges)
        rebuilt = Adjacency.from_edges(n, graph.edge_list())
        assert np.array_equal(rebuilt.indptr, graph.indptr)
        assert np.array_equal(rebuilt.indices, graph.indices)
