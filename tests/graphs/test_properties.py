"""Tests for repro.graphs.properties (structural analysis)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import (
    complete_graph,
    degree_statistics,
    erdos_renyi,
    estimate_conductance,
    estimate_diameter,
    average_distance_sample,
    hypercube,
    paper_edge_probability,
    profile_graph,
    random_regular,
    spectral_gap,
)
from repro.graphs.adjacency import Adjacency


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(hypercube(4))
        assert stats.minimum == stats.maximum == 4
        assert stats.std == 0.0
        assert stats.concentration == 0.0

    def test_path_graph(self):
        graph = Adjacency.from_edges(4, np.asarray([[0, 1], [1, 2], [2, 3]]))
        stats = degree_statistics(graph)
        assert stats.minimum == 1 and stats.maximum == 2
        assert stats.mean == pytest.approx(1.5)

    def test_paper_density_concentrates(self):
        n = 1024
        graph = erdos_renyi(n, paper_edge_probability(n), rng=1)
        stats = degree_statistics(graph)
        assert stats.concentration < 1.0  # spread well below the mean


class TestSpectralGap:
    def test_complete_graph_gap_large(self):
        gap = spectral_gap(complete_graph(50))
        assert gap > 0.9

    def test_cycle_gap_small(self):
        n = 64
        edges = np.column_stack([np.arange(n), (np.arange(n) + 1) % n])
        cycle = Adjacency.from_edges(n, edges)
        assert spectral_gap(cycle) < 0.1

    def test_random_graph_is_expander(self):
        n = 512
        graph = erdos_renyi(n, paper_edge_probability(n), rng=2, require_connected=True)
        assert spectral_gap(graph) > 0.3

    def test_tiny_graph(self):
        assert spectral_gap(Adjacency.from_edges(2, np.asarray([[0, 1]]))) == 1.0


class TestConductanceAndDistances:
    def test_conductance_of_expander_is_large(self):
        graph = random_regular(256, 16, rng=3, require_connected=True)
        assert estimate_conductance(graph, samples=20, rng=0) > 0.2

    def test_conductance_of_barbell_is_small(self):
        # Two cliques joined by a single edge: conductance ~ 1/(k^2).
        k = 20
        cliques = []
        for offset in (0, k):
            rows, cols = np.triu_indices(k, k=1)
            cliques.append(np.column_stack([rows + offset, cols + offset]))
        bridge = np.asarray([[k - 1, k]])
        graph = Adjacency.from_edges(2 * k, np.concatenate(cliques + [bridge]))
        assert estimate_conductance(graph, samples=40, rng=1) < 0.05

    def test_conductance_trivial_graph(self):
        assert estimate_conductance(Adjacency.from_edges(2, np.asarray([[0, 1]]))) == 1.0

    def test_diameter_path(self):
        n = 20
        edges = np.column_stack([np.arange(n - 1), np.arange(1, n)])
        graph = Adjacency.from_edges(n, edges)
        assert estimate_diameter(graph, samples=n, rng=0) == n - 1

    def test_diameter_complete(self):
        assert estimate_diameter(complete_graph(20), samples=5, rng=0) == 1

    def test_diameter_random_graph_logarithmic(self):
        n = 1024
        graph = erdos_renyi(n, paper_edge_probability(n), rng=4, require_connected=True)
        diameter = estimate_diameter(graph, samples=5, rng=0)
        assert diameter <= 2 * math.log2(n) / math.log2(math.log2(n) ** 2) + 3

    def test_average_distance(self):
        graph = complete_graph(30)
        assert average_distance_sample(graph, samples=5, rng=0) == pytest.approx(1.0)

    def test_trivial_sizes(self):
        single = Adjacency.from_edges(1, np.zeros((0, 2), dtype=np.int64))
        assert estimate_diameter(single) == 0
        assert average_distance_sample(single) == 0.0


class TestProfile:
    def test_profile_fields(self):
        n = 256
        graph = erdos_renyi(n, paper_edge_probability(n), rng=5, require_connected=True)
        profile = profile_graph(graph, rng=0)
        data = profile.as_dict()
        assert data["n"] == n
        assert data["connected"] is True
        assert data["spectral_gap"] > 0.2
        assert data["conductance_estimate"] > 0.1
        assert data["mean_degree"] == pytest.approx(graph.mean_degree())

    def test_profile_without_spectral(self):
        graph = complete_graph(16)
        profile = profile_graph(graph, rng=0, spectral=False)
        assert profile.spectral_gap is None
