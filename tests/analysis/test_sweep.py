"""Tests for repro.analysis.sweep (parameter sweeps and parallel execution)."""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweep import SweepTask, expand_grid, run_sweep


def square_task(task: SweepTask) -> dict:
    """Module-level task function (picklable for process pools)."""
    return {"value": task.params["x"] ** 2, "seed_seen": task.seed}


class TestExpandGrid:
    def test_count(self):
        tasks = expand_grid([("a", {"x": 1}), ("b", {"x": 2})], repetitions=3, base_seed=0)
        assert len(tasks) == 6
        assert {t.key for t in tasks} == {"a", "b"}
        assert {t.repetition for t in tasks} == {0, 1, 2}

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            expand_grid([("a", {})], repetitions=0, base_seed=0)

    def test_seeds_are_distinct_and_deterministic(self):
        tasks_a = expand_grid([("a", {}), ("b", {})], repetitions=4, base_seed=7)
        tasks_b = expand_grid([("a", {}), ("b", {})], repetitions=4, base_seed=7)
        assert [t.seed for t in tasks_a] == [t.seed for t in tasks_b]
        assert len({t.seed for t in tasks_a}) == len(tasks_a)

    def test_params_copied(self):
        params = {"x": 1}
        tasks = expand_grid([("a", params)], repetitions=1, base_seed=0)
        tasks[0].params["x"] = 99
        assert params["x"] == 1


class TestRunSweep:
    def test_serial_execution(self):
        tasks = expand_grid([("a", {"x": 2}), ("b", {"x": 3})], repetitions=2, base_seed=1)
        records = run_sweep(square_task, tasks, n_jobs=1)
        assert len(records) == 4
        assert {r["value"] for r in records} == {4, 9}
        # Bookkeeping fields injected.
        assert all("key" in r and "repetition" in r and "seed" in r for r in records)

    def test_order_preserved(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(5)], repetitions=1, base_seed=2)
        records = run_sweep(square_task, tasks, n_jobs=1)
        assert [r["key"] for r in records] == list(range(5))

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(square_task, [], n_jobs=0)

    def test_empty_tasks(self):
        assert run_sweep(square_task, [], n_jobs=1) == []

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_parallel_matches_serial(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(6)], repetitions=2, base_seed=3)
        serial = run_sweep(square_task, tasks, n_jobs=1)
        parallel = run_sweep(square_task, tasks, n_jobs=2)
        assert [r["value"] for r in serial] == [r["value"] for r in parallel]
        assert [r["seed"] for r in serial] == [r["seed"] for r in parallel]
