"""Tests for repro.analysis.sweep (parameter sweeps and parallel execution)."""

from __future__ import annotations

import os

import pytest

from repro.analysis.sweep import SweepTask, expand_grid, run_sweep, stable_key_hash


def square_task(task: SweepTask) -> dict:
    """Module-level task function (picklable for process pools)."""
    return {"value": task.params["x"] ** 2, "seed_seen": task.seed}


def failing_task(task: SweepTask) -> dict:
    """Module-level task that fails for one specific input."""
    if task.params["x"] == 3:
        raise RuntimeError("boom at x=3")
    return {"value": task.params["x"]}


def env_task(task: SweepTask) -> dict:
    """Module-level task reporting a REPRO_* env var seen in the worker."""
    import os

    return {"backend": os.environ.get("REPRO_KERNEL_BACKEND", "")}


class TestExpandGrid:
    def test_count(self):
        tasks = expand_grid([("a", {"x": 1}), ("b", {"x": 2})], repetitions=3, base_seed=0)
        assert len(tasks) == 6
        assert {t.key for t in tasks} == {"a", "b"}
        assert {t.repetition for t in tasks} == {0, 1, 2}

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            expand_grid([("a", {})], repetitions=0, base_seed=0)

    def test_seeds_are_distinct_and_deterministic(self):
        tasks_a = expand_grid([("a", {}), ("b", {})], repetitions=4, base_seed=7)
        tasks_b = expand_grid([("a", {}), ("b", {})], repetitions=4, base_seed=7)
        assert [t.seed for t in tasks_a] == [t.seed for t in tasks_b]
        assert len({t.seed for t in tasks_a}) == len(tasks_a)

    def test_params_copied(self):
        params = {"x": 1}
        tasks = expand_grid([("a", params)], repetitions=1, base_seed=0)
        tasks[0].params["x"] = 99
        assert params["x"] == 1


class TestRunSweep:
    def test_serial_execution(self):
        tasks = expand_grid([("a", {"x": 2}), ("b", {"x": 3})], repetitions=2, base_seed=1)
        records = run_sweep(square_task, tasks, n_jobs=1)
        assert len(records) == 4
        assert {r["value"] for r in records} == {4, 9}
        # Bookkeeping fields injected.
        assert all("key" in r and "repetition" in r and "seed" in r for r in records)

    def test_order_preserved(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(5)], repetitions=1, base_seed=2)
        records = run_sweep(square_task, tasks, n_jobs=1)
        assert [r["key"] for r in records] == list(range(5))

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(square_task, [], n_jobs=0)

    def test_empty_tasks(self):
        assert run_sweep(square_task, [], n_jobs=1) == []

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_parallel_matches_serial(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(6)], repetitions=2, base_seed=3)
        serial = run_sweep(square_task, tasks, n_jobs=1)
        parallel = run_sweep(square_task, tasks, n_jobs=2)
        assert [r["value"] for r in serial] == [r["value"] for r in parallel]
        assert [r["seed"] for r in serial] == [r["seed"] for r in parallel]

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_parallel_chunked_window(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(9)], repetitions=1, base_seed=4)
        records = run_sweep(square_task, tasks, n_jobs=2, window=2)
        assert [r["key"] for r in records] == list(range(9))

    def test_invalid_window(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(3)], repetitions=1, base_seed=4)
        with pytest.raises(ValueError):
            run_sweep(square_task, tasks, n_jobs=2, window=0)


class TestSeedStability:
    """Regression: seeds derive from the configuration key, not its index."""

    def test_stable_key_hash_is_deterministic(self):
        assert stable_key_hash(("a", 1)) == stable_key_hash(("a", 1))
        assert stable_key_hash(("a", 1)) != stable_key_hash(("a", 2))
        # Tuples and lists canonicalize identically (both become JSON arrays).
        assert stable_key_hash(("a", 1)) == stable_key_hash(["a", 1])

    def test_adding_a_configuration_keeps_other_seeds(self):
        small = expand_grid([("a", {}), ("c", {})], repetitions=2, base_seed=7)
        large = expand_grid([("a", {}), ("b", {}), ("c", {})], repetitions=2, base_seed=7)
        seeds_of = lambda tasks, key: [t.seed for t in tasks if t.key == key]
        assert seeds_of(small, "a") == seeds_of(large, "a")
        assert seeds_of(small, "c") == seeds_of(large, "c")

    def test_reordering_configurations_keeps_seeds(self):
        forward = expand_grid([("a", {}), ("b", {})], repetitions=3, base_seed=1)
        backward = expand_grid([("b", {}), ("a", {})], repetitions=3, base_seed=1)
        by_key = lambda tasks: {
            (t.key, t.repetition): t.seed for t in tasks
        }
        assert by_key(forward) == by_key(backward)


class TestSchedulerHooks:
    def test_progress_serial(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(3)], repetitions=1, base_seed=5)
        seen = []
        run_sweep(square_task, tasks, n_jobs=1, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_on_result_replacement(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(2)], repetitions=1, base_seed=5)

        def stamp(index, task, record):
            return {**record, "stamped": True}

        records = run_sweep(square_task, tasks, n_jobs=1, on_result=stamp)
        assert all(r["stamped"] for r in records)

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_progress_and_on_result_parallel(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(5)], repetitions=1, base_seed=6)
        seen, collected = [], []

        def collect(index, task, record):
            collected.append(index)
            return None

        run_sweep(
            square_task,
            tasks,
            n_jobs=2,
            progress=lambda d, t: seen.append((d, t)),
            on_result=collect,
        )
        assert [d for d, _ in seen] == [1, 2, 3, 4, 5]
        assert all(t == 5 for _, t in seen)
        assert sorted(collected) == list(range(5))

    def test_fail_fast_serial(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(6)], repetitions=1, base_seed=7)
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(failing_task, tasks, n_jobs=1)

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_fail_fast_parallel(self):
        tasks = expand_grid([(i, {"x": i}) for i in range(8)], repetitions=1, base_seed=7)
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(failing_task, tasks, n_jobs=2, window=2)

    @pytest.mark.skipif(os.cpu_count() is None or os.cpu_count() < 2, reason="needs >=2 CPUs")
    def test_backend_env_propagates_to_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        tasks = expand_grid([(i, {}) for i in range(2)], repetitions=1, base_seed=8)
        records = run_sweep(env_task, tasks, n_jobs=2)
        assert all(r["backend"] == "numpy" for r in records)
