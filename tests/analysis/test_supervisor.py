"""Tests for repro.analysis.supervisor (fault-tolerant sweep execution).

The supervisor must keep a sweep alive through worker crashes, hung tasks and
poison configurations — the execution-layer analogue of the paper's
``f = n^epsilon`` random node failures — while staying exactly reproducible.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.supervisor import (
    RetryPolicy,
    SweepReport,
    TaskFailure,
    run_supervised_sweep,
)
from repro.analysis.sweep import SweepTask, expand_grid
from repro.engine.chaos import Fault, FaultPlan, sample_fault_plan
from repro.io.store import config_hash


def square_task(task: SweepTask) -> dict:
    """Module-level task function (picklable for process pools)."""
    return {"value": task.params["x"] ** 2}


def poison_task(task: SweepTask) -> dict:
    """Module-level task that always fails for one specific input."""
    if task.params["x"] == 3:
        raise RuntimeError("boom at x=3")
    return {"value": task.params["x"]}


def flaky_task(task: SweepTask) -> dict:
    """Module-level task that fails its first two attempts (file-counted)."""
    marker = task.params["dir"] + f"/attempts_{task.params['x']}"
    with open(marker, "a") as handle:
        handle.write("x\n")
    with open(marker) as handle:
        attempts = len(handle.readlines())
    if attempts <= 2:
        raise RuntimeError(f"transient failure on attempt {attempts}")
    return {"value": task.params["x"], "attempts": attempts}


def _tasks(count=5, base_seed=1):
    return expand_grid([(i, {"x": i}) for i in range(count)], repetitions=1, base_seed=base_seed)


def _pairs(tasks):
    return [(config_hash(t.key, t.params), t.repetition) for t in tasks]


FAST = RetryPolicy(max_retries=2, backoff_base=0.01, jitter=0.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3, jitter=0.0)
        task = _tasks(1)[0]
        assert policy.delay_for(task, 1) == pytest.approx(0.1)
        assert policy.delay_for(task, 2) == pytest.approx(0.2)
        assert policy.delay_for(task, 3) == pytest.approx(0.3)  # capped
        assert policy.delay_for(task, 9) == pytest.approx(0.3)

    def test_jittered_schedule_is_reproducible(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=42)
        task = _tasks(1)[0]
        schedule = [policy.delay_for(task, a) for a in (1, 2, 3)]
        assert schedule == [policy.delay_for(task, a) for a in (1, 2, 3)]
        # Jitter stays inside the [1 - j, 1 + j] band around the base delay.
        assert 0.05 <= schedule[0] <= 0.15

    def test_jitter_streams_differ_per_task_and_attempt(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.5, seed=0)
        a, b = _tasks(2)[:2]
        assert policy.delay_for(a, 1) != policy.delay_for(b, 1)
        assert policy.delay_for(a, 1) != policy.delay_for(a, 2)

    def test_invalid_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_for(_tasks(1)[0], 0)


class TestHappyPath:
    def test_all_ok_order_preserved(self):
        tasks = _tasks(6)
        records, report = run_supervised_sweep(square_task, tasks, n_jobs=2, policy=FAST)
        assert [r["value"] for r in records] == [i**2 for i in range(6)]
        assert [r["key"] for r in records] == list(range(6))
        assert report.ok == report.total == 6
        assert not report.degraded
        assert report.retries == report.timeouts == report.worker_crashes == 0

    def test_empty_tasks(self):
        records, report = run_supervised_sweep(square_task, [], policy=FAST)
        assert records == [] and report.total == 0

    def test_hooks(self):
        tasks = _tasks(3)
        seen, replaced = [], []

        def stamp(index, task, record):
            replaced.append(index)
            return {**record, "stamped": True}

        records, _ = run_supervised_sweep(
            square_task,
            tasks,
            policy=FAST,
            progress=lambda d, t: seen.append((d, t)),
            on_result=stamp,
        )
        assert all(r["stamped"] for r in records)
        assert seen == [(1, 3), (2, 3), (3, 3)]
        assert sorted(replaced) == [0, 1, 2]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="n_jobs"):
            run_supervised_sweep(square_task, _tasks(1), n_jobs=0)
        with pytest.raises(ValueError, match="pairs"):
            run_supervised_sweep(square_task, _tasks(2), pairs=[("x", 0)])


class TestQuarantine:
    def test_poison_task_does_not_abort_the_grid(self):
        tasks = _tasks(5)
        failures = []
        records, report = run_supervised_sweep(
            poison_task,
            tasks,
            n_jobs=2,
            policy=FAST,
            on_failure=lambda i, t, f: failures.append((i, f)),
        )
        assert records[3] is None
        assert [r["value"] for r in records if r is not None] == [0, 1, 2, 4]
        assert report.degraded and report.ok == 4
        (failure,) = report.quarantined
        assert failure.index == 3 and failure.key == 3
        assert failure.attempts == FAST.max_retries + 1
        assert failure.kind == "error" and "boom at x=3" in failure.message
        assert len(failure.history) == FAST.max_retries + 1
        assert failures == [(3, failure)]

    def test_failure_round_trips_to_json(self):
        records, report = run_supervised_sweep(
            poison_task, _tasks(4), policy=RetryPolicy(max_retries=0)
        )
        payload = report.to_jsonable()
        assert payload["ok"] == 3 and len(payload["quarantined"]) == 1
        assert payload["quarantined"][0]["attempts"] == 1
        assert "boom" in payload["quarantined"][0]["message"]

    def test_zero_retry_budget_quarantines_immediately(self):
        _, report = run_supervised_sweep(
            poison_task, _tasks(4), policy=RetryPolicy(max_retries=0, jitter=0.0)
        )
        assert report.retries == 0 and len(report.quarantined) == 1


class TestRetries:
    def test_transient_failure_recovers(self, tmp_path):
        tasks = expand_grid(
            [(i, {"x": i, "dir": str(tmp_path)}) for i in range(3)],
            repetitions=1,
            base_seed=2,
        )
        records, report = run_supervised_sweep(flaky_task, tasks, n_jobs=2, policy=FAST)
        assert all(r is not None for r in records)
        assert all(r["attempts"] == 3 for r in records)
        assert report.retried == 3 and report.retries == 6
        assert not report.degraded


class TestChaosIntegration:
    def test_worker_kill_recovers(self):
        tasks = _tasks(6)
        pairs = _pairs(tasks)
        plan = sample_fault_plan(pairs, {"kill": 1}, seed=7)
        records, report = run_supervised_sweep(
            square_task,
            tasks,
            n_jobs=2,
            policy=RetryPolicy(max_retries=3, backoff_base=0.01, jitter=0.0),
            chaos=plan,
            pairs=pairs,
        )
        assert all(r is not None for r in records)
        assert [r["value"] for r in records] == [i**2 for i in range(6)]
        assert report.worker_crashes >= 1
        assert report.pool_restarts >= 1
        assert not report.degraded

    def test_transient_error_fault_retries(self):
        tasks = _tasks(4)
        pairs = _pairs(tasks)
        plan = FaultPlan(
            faults=(Fault(kind="error", config=pairs[1][0], repetition=0, attempts=1),)
        )
        records, report = run_supervised_sweep(
            square_task, tasks, n_jobs=2, policy=FAST, chaos=plan, pairs=pairs
        )
        assert all(r is not None for r in records)
        assert report.retried == 1 and report.retries == 1

    def test_persistent_fault_beyond_budget_is_quarantined(self):
        tasks = _tasks(4)
        pairs = _pairs(tasks)
        plan = FaultPlan(
            faults=(Fault(kind="error", config=pairs[2][0], repetition=0, attempts=99),)
        )
        records, report = run_supervised_sweep(
            square_task, tasks, n_jobs=2, policy=FAST, chaos=plan, pairs=pairs
        )
        assert records[2] is None
        assert report.degraded and report.quarantined[0].index == 2

    def test_hang_is_reaped_by_timeout(self):
        tasks = _tasks(4)
        pairs = _pairs(tasks)
        plan = FaultPlan(
            faults=(Fault(kind="hang", config=pairs[1][0], repetition=0, seconds=60.0),)
        )
        start = time.monotonic()
        records, report = run_supervised_sweep(
            square_task,
            tasks,
            n_jobs=2,
            policy=RetryPolicy(max_retries=2, timeout=0.75, backoff_base=0.01, jitter=0.0),
            chaos=plan,
            pairs=pairs,
        )
        assert time.monotonic() - start < 30.0  # reaped, not waited out
        assert all(r is not None for r in records)
        assert report.timeouts >= 1 and report.pool_restarts >= 1
        assert not report.degraded


class TestSweepReport:
    def test_summary_format(self):
        report = SweepReport(total=5, ok=4, retried=1, retries=2, worker_crashes=1)
        report.quarantined.append(
            TaskFailure(
                index=0, key="k", repetition=0, seed=1, attempts=3, kind="error", message="m"
            )
        )
        text = report.summary()
        assert "4/5 ok" in text and "1 quarantined" in text and "worker crashes" in text
