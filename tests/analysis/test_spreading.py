"""Tests for repro.analysis.spreading (growth statistics of traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import coverage_growth, phase_breakdown, rounds_to_coverage
from repro.core import PushPullGossip
from repro.engine.knowledge import KnowledgeMatrix
from repro.engine.trace import SpreadingTrace


def synthetic_trace() -> SpreadingTrace:
    km = KnowledgeMatrix(8)
    trace = SpreadingTrace()
    trace.record(0, "a", km)
    for i in range(8):
        km.union_from_node(i, (i + 1) % 8)
    trace.record(1, "a", km)
    for i in range(8):
        for j in range(8):
            km.union_from_node(i, j)
    trace.record(2, "b", km)
    return trace


class TestGrowth:
    def test_coverage_growth_summary(self):
        summary = coverage_growth(synthetic_trace())
        assert summary.initial_coverage == pytest.approx(1 / 8)
        assert summary.final_coverage == pytest.approx(1.0)
        assert summary.rounds == 3
        assert summary.max_round_growth >= summary.mean_round_growth >= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            coverage_growth(SpreadingTrace())

    def test_single_record(self):
        km = KnowledgeMatrix(4)
        trace = SpreadingTrace()
        trace.record(0, "a", km)
        summary = coverage_growth(trace)
        assert summary.rounds == 1
        assert summary.max_round_growth == 1.0

    def test_rounds_to_coverage(self):
        trace = synthetic_trace()
        assert rounds_to_coverage(trace, 0.1) == 0
        assert rounds_to_coverage(trace, 0.2) == 1
        assert rounds_to_coverage(trace, 1.0) == 2
        assert rounds_to_coverage(trace, 0.0) == 0

    def test_rounds_to_coverage_unreached(self):
        km = KnowledgeMatrix(8)
        trace = SpreadingTrace()
        trace.record(0, "a", km)
        assert rounds_to_coverage(trace, 0.9) is None

    def test_rounds_to_coverage_validation(self):
        with pytest.raises(ValueError):
            rounds_to_coverage(synthetic_trace(), 1.5)

    def test_phase_breakdown(self):
        breakdown = phase_breakdown(synthetic_trace())
        assert set(breakdown) == {"a", "b"}
        assert breakdown["b"]["coverage"] == pytest.approx(1.0)
        assert breakdown["a"]["last_round"] == 1.0


class TestOnRealProtocol:
    def test_push_pull_growth_is_exponential_early(self, small_paper_graph):
        result = PushPullGossip().run(small_paper_graph, rng=1, record_trace=True)
        summary = coverage_growth(result.trace)
        assert summary.final_coverage == pytest.approx(1.0)
        # Early rounds at least double the coverage (push+pull 2x growth).
        assert summary.max_round_growth >= 2.0
