"""Tests for repro.analysis.statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SampleStatistics, summarize, summarize_records, welford


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert stats.std == pytest.approx(1.0)

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert stats.confidence_interval() == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        stats = summarize(np.random.default_rng(0).normal(10, 2, size=50))
        low, high = stats.confidence_interval()
        assert low < stats.mean < high
        assert stats.as_dict()["ci_low"] == pytest.approx(low)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_property_welford_matches_summarize(self, values):
        direct = summarize(values)
        streaming = welford(values)
        assert streaming.count == direct.count
        assert streaming.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert streaming.std == pytest.approx(direct.std, rel=1e-6, abs=1e-6)
        assert streaming.minimum == direct.minimum
        assert streaming.maximum == direct.maximum

    def test_welford_empty_rejected(self):
        with pytest.raises(ValueError):
            welford([])


class TestSummarizeRecords:
    def test_selected_keys(self):
        records = [
            {"a": 1.0, "b": 2.0, "c": "x"},
            {"a": 3.0, "b": 4.0, "c": "y"},
        ]
        out = summarize_records(records, ["a", "b"])
        assert out["a"].mean == pytest.approx(2.0)
        assert out["b"].maximum == 4.0

    def test_missing_keys_skipped(self):
        out = summarize_records([{"a": 1.0}], ["a", "zzz"])
        assert "zzz" not in out

    def test_none_values_ignored(self):
        out = summarize_records([{"a": 1.0}, {"a": None}], ["a"])
        assert out["a"].count == 1
