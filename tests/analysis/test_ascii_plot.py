"""Tests for repro.analysis.ascii_plot."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import AsciiPlot, plot_experiment_rows, plot_series


class TestAsciiPlot:
    def test_basic_render_contains_markers_and_legend(self):
        plot = AsciiPlot(width=40, height=10, title="demo", x_label="n", y_label="cost")
        plot.add_series("a", [1, 2, 3], [1.0, 2.0, 3.0])
        plot.add_series("b", [1, 2, 3], [3.0, 2.0, 1.0])
        text = plot.render()
        assert "demo" in text
        assert "legend: * a  o b" in text
        assert "*" in text and "o" in text
        assert "[x: n]" in text
        assert "[y: cost]" in text

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot().render()

    def test_mismatched_series_rejected(self):
        plot = AsciiPlot()
        with pytest.raises(ValueError):
            plot.add_series("a", [1, 2], [1.0])

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            AsciiPlot(width=5, height=2)

    def test_too_many_series_rejected(self):
        plot = AsciiPlot()
        for index in range(8):
            plot.add_series(f"s{index}", [1], [1.0])
        with pytest.raises(ValueError):
            plot.add_series("overflow", [1], [1.0])

    def test_constant_series_does_not_crash(self):
        plot = AsciiPlot(width=20, height=6)
        plot.add_series("flat", [1, 2, 3], [5.0, 5.0, 5.0])
        text = plot.render()
        assert "flat" in text

    def test_log_x_axis_labels(self):
        plot = AsciiPlot(width=30, height=8, log_x=True, x_label="n")
        plot.add_series("a", [256, 1024, 4096], [1.0, 2.0, 3.0])
        text = plot.render()
        assert "(log scale)" in text
        assert "256" in text
        assert "4.1e+03" in text or "4.10e+03" in text or "4096" in text

    def test_row_column_extremes_plotted(self):
        plot = AsciiPlot(width=10, height=4)
        plot.add_series("a", [0, 1], [0.0, 1.0])
        lines = plot.render().splitlines()
        canvas_lines = [line for line in lines if "|" in line]
        assert canvas_lines[0].rstrip().endswith("*")  # max y at top-right
        assert "*" in canvas_lines[-1]  # min y at bottom


class TestHelpers:
    def test_plot_series_mapping(self):
        text = plot_series({"a": [(1, 1.0), (2, 2.0)]}, width=20, height=5, title="t")
        assert "t" in text and "a" in text

    def test_plot_experiment_rows_groups(self):
        rows = [
            {"n": 256, "protocol": "push-pull", "messages_per_node": 18.0},
            {"n": 512, "protocol": "push-pull", "messages_per_node": 20.0},
            {"n": 256, "protocol": "memory", "messages_per_node": 4.4},
            {"n": 512, "protocol": "memory", "messages_per_node": 5.9},
        ]
        text = plot_experiment_rows(
            rows, x="n", y="messages_per_node", group_by="protocol", title="fig1"
        )
        assert "push-pull" in text and "memory" in text
        assert "fig1" in text

    def test_plot_experiment_rows_single_series(self):
        rows = [{"n": 256, "v": 1.0}, {"n": 512, "v": 2.0}]
        text = plot_experiment_rows(rows, x="n", y="v", group_by=None, log_x=False)
        assert "legend: * v" in text
