"""Tests for repro.analysis.bounds (theoretical reference curves)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    broadcast_messages_per_node_complete,
    fast_gossiping_messages_per_node,
    fast_gossiping_rounds,
    fit_constant,
    gossip_lower_bound_messages,
    leader_election_messages_per_node,
    memory_gossiping_messages_per_node,
    memory_gossiping_rounds,
    push_pull_gossip_messages_per_node,
    push_pull_gossip_rounds,
    shape_correlation,
)


class TestBoundShapes:
    def test_push_pull_is_logarithmic(self):
        assert push_pull_gossip_rounds(2**10) == pytest.approx(10.0)
        assert push_pull_gossip_messages_per_node(2**20, 2.0) == pytest.approx(40.0)

    def test_fast_gossiping_below_push_pull_for_large_n(self):
        for n in (2**12, 2**20, 10**6):
            assert fast_gossiping_messages_per_node(n) < push_pull_gossip_messages_per_node(n)

    def test_fast_gossiping_rounds_above_push_pull(self):
        for n in (2**12, 2**20):
            assert fast_gossiping_rounds(n) > push_pull_gossip_rounds(n)

    def test_memory_constant(self):
        assert memory_gossiping_messages_per_node(10**3, 5.0) == 5.0
        assert memory_gossiping_messages_per_node(10**6, 5.0) == 5.0
        assert memory_gossiping_rounds(2**10) == pytest.approx(10.0)

    def test_loglog_bounds(self):
        assert leader_election_messages_per_node(2**16) == pytest.approx(4.0)
        assert broadcast_messages_per_node_complete(2**16, 2.0) == pytest.approx(8.0)

    def test_lower_bound_monotone(self):
        values = [gossip_lower_bound_messages(n) for n in (10**3, 10**4, 10**5)]
        assert values == sorted(values)

    def test_guarded_small_inputs(self):
        for bound in (
            push_pull_gossip_rounds,
            fast_gossiping_rounds,
            fast_gossiping_messages_per_node,
            memory_gossiping_rounds,
        ):
            assert bound(1) > 0


class TestFitting:
    def test_fit_constant_exact(self):
        sizes = [2**8, 2**10, 2**12, 2**16]
        measured = [3.0 * math.log2(n) for n in sizes]
        c = fit_constant(sizes, measured, push_pull_gossip_messages_per_node)
        assert c == pytest.approx(3.0)

    def test_fit_constant_noisy(self):
        rng = np.random.default_rng(0)
        sizes = [2**k for k in range(8, 18)]
        measured = [2.0 * math.log2(n) + rng.normal(0, 0.1) for n in sizes]
        c = fit_constant(sizes, measured, push_pull_gossip_messages_per_node)
        assert c == pytest.approx(2.0, abs=0.05)

    def test_fit_constant_validation(self):
        with pytest.raises(ValueError):
            fit_constant([], [], push_pull_gossip_rounds)
        with pytest.raises(ValueError):
            fit_constant([1, 2], [1.0], push_pull_gossip_rounds)

    def test_shape_correlation_high_for_matching_shape(self):
        sizes = [2**k for k in range(8, 20)]
        measured = [5 * math.log2(n) / math.log2(math.log2(n)) for n in sizes]
        corr = shape_correlation(sizes, measured, fast_gossiping_messages_per_node)
        assert corr > 0.999

    def test_shape_correlation_nan_for_constant_shape(self):
        sizes = [2**8, 2**10]
        corr = shape_correlation(sizes, [1.0, 2.0], memory_gossiping_messages_per_node)
        assert math.isnan(corr)
