"""Tests for repro.engine.metrics (transmission ledgers and accounting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.metrics import MessageAccounting, PhaseTotals, TransmissionLedger


class TestRecording:
    def test_empty_ledger(self):
        ledger = TransmissionLedger(4)
        assert ledger.total() == 0
        assert ledger.rounds == 0
        assert ledger.average_per_node() == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TransmissionLedger(0)

    def test_record_opens_pushes_pulls(self):
        ledger = TransmissionLedger(4)
        ledger.record_opens(np.asarray([0, 1, 2, 3]))
        ledger.record_pushes(np.asarray([0, 1]))
        ledger.record_pulls(np.asarray([2]))
        assert ledger.total(MessageAccounting.OPENS) == 4
        assert ledger.total(MessageAccounting.PUSHES) == 2
        assert ledger.total(MessageAccounting.PULLS) == 1
        assert ledger.total(MessageAccounting.PACKETS) == 3
        assert ledger.total(MessageAccounting.OPENS_AND_PACKETS) == 7

    def test_repeated_nodes_counted_multiple_times(self):
        ledger = TransmissionLedger(3)
        ledger.record_pulls(np.asarray([1, 1, 1]))
        assert ledger.pull_packets[1] == 3

    def test_empty_array_is_noop(self):
        ledger = TransmissionLedger(3)
        ledger.record_pushes(np.asarray([], dtype=np.int64))
        assert ledger.total() == 0

    def test_rounds(self):
        ledger = TransmissionLedger(3)
        for _ in range(5):
            ledger.end_round()
        assert ledger.rounds == 5

    def test_per_node_and_max(self):
        ledger = TransmissionLedger(3)
        ledger.record_pushes(np.asarray([0, 0, 1]))
        per_node = ledger.per_node()
        assert per_node.tolist() == [2, 1, 0]
        assert ledger.max_per_node() == 2
        assert ledger.average_per_node() == pytest.approx(1.0)


class TestPhases:
    def test_phase_attribution(self):
        ledger = TransmissionLedger(2)
        ledger.begin_phase("one")
        ledger.record_pushes(np.asarray([0]))
        ledger.end_round()
        ledger.end_phase()
        ledger.begin_phase("two")
        ledger.record_pulls(np.asarray([1, 1]))
        ledger.end_round()
        ledger.end_phase()
        assert ledger.phases == ["one", "two"]
        assert ledger.phase_totals("one").push_packets == 1
        assert ledger.phase_totals("one").rounds == 1
        assert ledger.phase_totals("two").pull_packets == 2

    def test_recording_outside_phase(self):
        ledger = TransmissionLedger(2)
        ledger.record_pushes(np.asarray([0]))
        assert ledger.total() == 1
        assert ledger.phases == []

    def test_reentering_phase_accumulates(self):
        ledger = TransmissionLedger(2)
        ledger.begin_phase("p")
        ledger.record_pushes(np.asarray([0]))
        ledger.end_phase()
        ledger.begin_phase("p")
        ledger.record_pushes(np.asarray([1]))
        ledger.end_phase()
        assert ledger.phase_totals("p").push_packets == 2
        assert ledger.phases == ["p"]

    def test_phase_totals_packets(self):
        totals = PhaseTotals(channel_opens=1, push_packets=2, pull_packets=3, rounds=4)
        assert totals.packets == 5
        assert totals.as_dict()["packets"] == 5

    def test_summary_structure(self):
        ledger = TransmissionLedger(2)
        ledger.begin_phase("p")
        ledger.record_opens(np.asarray([0, 1]))
        ledger.record_pushes(np.asarray([0]))
        ledger.end_round()
        ledger.end_phase()
        summary = ledger.summary()
        assert summary["total_channel_opens"] == 2
        assert summary["total_packets"] == 1
        assert "p" in summary["phases"]


class TestMerge:
    def test_merge_adds_counters(self):
        a = TransmissionLedger(3)
        b = TransmissionLedger(3)
        a.begin_phase("x")
        a.record_pushes(np.asarray([0]))
        a.end_round()
        a.end_phase()
        b.begin_phase("y")
        b.record_pulls(np.asarray([1]))
        b.end_round()
        b.end_phase()
        merged = a.merge(b)
        assert merged.total() == 2
        assert merged.rounds == 2
        assert set(merged.phases) == {"x", "y"}
        # Originals untouched.
        assert a.total() == 1 and b.total() == 1

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            TransmissionLedger(2).merge(TransmissionLedger(3))


class TestAccountingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=60),
        st.lists(st.integers(min_value=0, max_value=9), max_size=60),
        st.lists(st.integers(min_value=0, max_value=9), max_size=60),
    )
    def test_accounting_identities(self, opens, pushes, pulls):
        """opens + packets == strict accounting; packets == pushes + pulls."""
        ledger = TransmissionLedger(10)
        ledger.record_opens(np.asarray(opens, dtype=np.int64))
        ledger.record_pushes(np.asarray(pushes, dtype=np.int64))
        ledger.record_pulls(np.asarray(pulls, dtype=np.int64))
        assert ledger.total(MessageAccounting.PACKETS) == len(pushes) + len(pulls)
        assert ledger.total(MessageAccounting.OPENS) == len(opens)
        assert ledger.total(MessageAccounting.OPENS_AND_PACKETS) == len(opens) + len(
            pushes
        ) + len(pulls)
        per_node_sum = ledger.per_node(MessageAccounting.OPENS_AND_PACKETS).sum()
        assert per_node_sum == ledger.total(MessageAccounting.OPENS_AND_PACKETS)
