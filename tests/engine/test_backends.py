"""Tests for the kernel backend registry and the sharded (threaded) kernels.

Two layers are covered here:

* the registry itself — name/environment resolution, the ``auto`` rule, the
  thread-count heuristic with its measured small-batch cutoff, and the
  :func:`repro.engine.backends.use` override used by tests and benchmarks;
* bit-identity of every sharded ``*_mt`` kernel against its serial
  counterpart — row data *and* frontier bookkeeping — at several shard
  counts, with ``shard_work=1`` so even tiny batches actually thread.

Whole-protocol trajectory parity across backends lives in
``tests/engine/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import os
import select
import signal

import numpy as np
import pytest

from repro.core.completion import CompletionTracker, gossip_complete
from repro.engine import _ckernel, backends
from repro.engine.knowledge import FrontierKnowledge, KnowledgeMatrix

needs_compiled = pytest.mark.skipif(
    not _ckernel.available(), reason="compiled kernel unavailable on this machine"
)


def threaded(max_threads: int) -> backends.CThreadsBackend:
    """A c-threads backend that shards even the tiniest batches."""
    return backends.CThreadsBackend(max_threads=max_threads, shard_work=1)


def resolve_compiled(name=None, **kwargs):
    """Resolve a compiled backend, absorbing the degradation warning.

    Explicitly requesting ``c``/``c-threads`` without the compiled library
    warns by design; under ``filterwarnings = ["error"]`` that warning must
    be asserted rather than leaked into the registry tests, which check
    resolution behaviour, not availability.
    """
    if _ckernel.available():
        return backends.resolve(name, **kwargs) if name else backends.resolve(**kwargs)
    with pytest.warns(RuntimeWarning, match="compiled library is unavailable"):
        return backends.resolve(name, **kwargs) if name else backends.resolve(**kwargs)


@pytest.fixture(autouse=True)
def _restore_active_backend():
    previous = backends._ACTIVE
    yield
    backends.set_active(previous)


class TestRegistry:
    def test_known_names_resolve(self):
        assert backends.resolve("numpy").name == "numpy"
        assert resolve_compiled("c").name == "c"
        resolved = resolve_compiled("c-threads", max_threads=3)
        assert resolved.name == "c-threads"
        assert resolved.max_threads == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            backends.resolve("cuda")

    def test_env_backend_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert backends.resolve().name == "numpy"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "c-threads")
        assert resolve_compiled().name == "c-threads"

    def test_env_thread_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "6")
        assert backends.default_max_threads() == 6
        assert resolve_compiled("c-threads").max_threads == 6
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "soon")
        with pytest.raises(ValueError, match="REPRO_KERNEL_THREADS"):
            backends.default_max_threads()

    def test_auto_prefers_threads_then_serial_then_numpy(self, monkeypatch):
        if _ckernel.available():
            assert backends.resolve("auto", max_threads=4).name == "c-threads"
            assert backends.resolve("auto", max_threads=1).name == "c"
        monkeypatch.setattr(_ckernel, "_LIB", None)
        assert backends.resolve("auto", max_threads=4).name == "numpy"

    def test_use_context_manager_restores(self):
        before = backends.active()
        with backends.use("numpy") as switched:
            assert backends.active() is switched
            assert switched.name == "numpy"
        assert backends.active() is before

    def test_use_compiled_tracks_library_availability(self, monkeypatch):
        serial = resolve_compiled("c")
        threads = resolve_compiled("c-threads", max_threads=4)
        assert serial.use_compiled() == _ckernel.available()
        monkeypatch.setattr(_ckernel, "_LIB", None)
        assert not serial.use_compiled()
        assert not threads.use_compiled()
        assert not backends.resolve("numpy").use_compiled()


class TestThreadHeuristic:
    def test_small_batches_stay_serial(self):
        backend = backends.CThreadsBackend(max_threads=8)
        # Below twice the measured per-shard work: dispatch would dominate.
        assert backend.threads_for(0) == 1
        assert backend.threads_for(backends.WORDS_PER_SHARD) == 1
        assert backend.threads_for(2 * backends.WORDS_PER_SHARD - 1) == 1

    def test_threads_scale_with_work_and_clamp(self):
        backend = backends.CThreadsBackend(max_threads=8)
        assert backend.threads_for(2 * backends.WORDS_PER_SHARD) == 2
        assert backend.threads_for(5 * backends.WORDS_PER_SHARD) == 5
        assert backend.threads_for(500 * backends.WORDS_PER_SHARD) == 8

    def test_single_thread_budget_never_shards(self):
        backend = backends.CThreadsBackend(max_threads=1, shard_work=1)
        assert backend.threads_for(10**9) == 1

    def test_n1000_exchange_round_is_below_cutoff(self):
        # The regression guard behind the heuristic: a full n=1000 exchange
        # round must not pay pool dispatch.
        n, words = 1000, 16
        backend = backends.CThreadsBackend(max_threads=8)
        assert backend.threads_for((2 * n + n) * words) == 1


@needs_compiled
class TestEnsureShards:
    def test_grows_and_clamps(self, monkeypatch):
        assert _ckernel.ensure_shards(1) == 1
        got = _ckernel.ensure_shards(3)
        assert 1 <= got <= 3
        # Clamp check with the cap lowered, so the test does not actually
        # spawn (and permanently keep) MAX_SHARDS-1 worker threads.
        monkeypatch.setattr(_ckernel, "MAX_SHARDS", 4)
        assert _ckernel.ensure_shards(10**6) <= 4

    def test_growth_mid_session_stays_correct(self):
        """Workers spawned after jobs have run must join cleanly.

        A new worker registers at the current pool generation; starting
        from generation zero instead would let it acknowledge a job it
        never joined and release a later barrier early.  Interleave pool
        growth with jobs and check every result.
        """
        rng = np.random.default_rng(23)
        base = random_state(9, 150, 6 * 64)
        snapshot = base.snapshot()
        for shards in (2, 3, 5, 8):
            senders = rng.integers(0, 150, 600).astype(np.int64)
            receivers = rng.integers(0, 150, 600).astype(np.int64)
            expected = base.data.copy()
            _ckernel.scatter_or(expected, snapshot, senders, receivers)
            got = _ckernel.ensure_shards(shards)
            for _ in range(3):
                actual = base.data.copy()
                _ckernel.scatter_or_mt(actual, snapshot, senders, receivers, got)
                assert np.array_equal(expected, actual)

    def test_concurrent_mt_callers_from_python_threads(self):
        """Sharded jobs from several Python threads must not interleave.

        ctypes releases the GIL, and the pool has a single job slot — a
        caller mutex serializes submissions, so every caller's shards all
        run (a race drops shards silently: rows lose their ORs).
        """
        from concurrent.futures import ThreadPoolExecutor

        got = _ckernel.ensure_shards(4)
        if got < 2:
            pytest.skip("no pool workers available")
        base = random_state(5, 200, 5 * 64)
        snapshot = base.snapshot()
        rng = np.random.default_rng(99)
        jobs = []
        for _ in range(4):
            senders = rng.integers(0, 200, 800).astype(np.int64)
            receivers = rng.integers(0, 200, 800).astype(np.int64)
            expected = base.data.copy()
            _ckernel.scatter_or(expected, snapshot, senders, receivers)
            jobs.append((senders, receivers, expected))

        def work(job):
            senders, receivers, expected = job
            for _ in range(50):
                actual = base.data.copy()
                _ckernel.scatter_or_mt(actual, snapshot, senders, receivers, got)
                if not np.array_equal(actual, expected):
                    return False
            return True

        with ThreadPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(work, jobs))

    def test_threaded_kernels_usable_after_fork(self):
        """Pool threads do not survive fork; the child must rebuild them.

        The child grows a fresh pool step by step (generation bookkeeping
        from scratch) and verifies a sharded scatter against the serial
        result computed in the parent.  A regression here deadlocks or
        produces partial rows, so the parent enforces a timeout.
        """
        assert _ckernel.ensure_shards(4) >= 1  # parent pool exists pre-fork
        base = random_state(3, 120, 4 * 64)
        snapshot = base.snapshot()
        rng = np.random.default_rng(77)
        senders = rng.integers(0, 120, 500).astype(np.int64)
        receivers = rng.integers(0, 120, 500).astype(np.int64)
        expected = base.data.copy()
        _ckernel.scatter_or(expected, snapshot, senders, receivers)

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            status = b"0"
            try:
                ok = True
                for shards in (2, 4, 8):
                    got = _ckernel.ensure_shards(shards)
                    actual = base.data.copy()
                    if got > 1:
                        _ckernel.scatter_or_mt(
                            actual, snapshot, senders, receivers, got
                        )
                    else:
                        _ckernel.scatter_or(actual, snapshot, senders, receivers)
                    ok = ok and bool(np.array_equal(actual, expected))
                status = b"1" if ok else b"0"
            finally:
                os.write(write_fd, status)
                os._exit(0)
        os.close(write_fd)
        try:
            ready, _, _ = select.select([read_fd], [], [], 60)
            if not ready:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
                pytest.fail("threaded kernel deadlocked in forked child")
            result = os.read(read_fd, 1)
        finally:
            os.close(read_fd)
        os.waitpid(pid, 0)
        assert result == b"1"


def random_state(seed: int, n: int, words_bits: int) -> KnowledgeMatrix:
    rng = np.random.default_rng(seed)
    km = KnowledgeMatrix(n, words_bits)
    km.data |= rng.integers(0, 2**63, size=km.data.shape, dtype=np.uint64)
    return km


@needs_compiled
class TestShardedKernelParity:
    """Every *_mt kernel is bit-identical to serial at any shard count."""

    @pytest.mark.parametrize("shards", [2, 3, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_scatter_or(self, shards, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(16, 200))
        base = random_state(seed, n, 8 * 64)
        snapshot = base.snapshot()
        k = int(rng.integers(1, 4 * n))
        senders = rng.integers(0, n, k).astype(np.int64)
        receivers = rng.integers(0, n // 2, k).astype(np.int64)  # collisions

        serial = base.data.copy()
        _ckernel.scatter_or(serial, snapshot, senders, receivers)
        sharded = base.data.copy()
        got = _ckernel.ensure_shards(shards)
        _ckernel.scatter_or_mt(sharded, snapshot, senders, receivers, got)
        assert np.array_equal(serial, sharded)

    @pytest.mark.parametrize("shards", [2, 3, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_exchange_and_push_round(self, shards, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(16, 150))
        base = random_state(seed, n, 6 * 64)
        callers = np.arange(n, dtype=np.int64)
        targets = rng.integers(0, n, n).astype(np.int64)
        off = np.empty(n + 1, dtype=np.int64)
        adj = np.empty(2 * n, dtype=np.int64)
        got = _ckernel.ensure_shards(shards)

        # Reference: snapshot semantics, one OR per channel direction.
        expected = base.data.copy()
        snapshot = expected.copy()
        for c, t in zip(callers.tolist(), targets.tolist()):
            expected[c] |= snapshot[t]
            expected[t] |= snapshot[c]

        serial_next = np.empty_like(base.data)
        _ckernel.exchange(base.data, serial_next, callers, targets, off, adj)
        sharded_next = np.empty_like(base.data)
        _ckernel.exchange_mt(
            base.data, sharded_next, callers, targets, off, adj, got
        )
        assert np.array_equal(serial_next, expected)
        assert np.array_equal(serial_next, sharded_next)

        expected = base.data.copy()
        for c, t in zip(targets.tolist(), callers.tolist()):
            expected[t] |= snapshot[c]
        serial_next = np.empty_like(base.data)
        _ckernel.push_round(base.data, serial_next, targets, callers, off, adj)
        sharded_next = np.empty_like(base.data)
        _ckernel.push_round_mt(
            base.data, sharded_next, targets, callers, off, adj, got
        )
        assert np.array_equal(serial_next, expected)
        assert np.array_equal(serial_next, sharded_next)

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_recount(self, shards):
        rng = np.random.default_rng(7)
        km = random_state(11, 120, 5 * 64)
        mask = km.full_row_mask()
        rows = np.sort(rng.choice(120, size=77, replace=False)).astype(np.int64)
        got = _ckernel.ensure_shards(shards)
        assert np.array_equal(
            _ckernel.recount_deficits(km.data, mask, rows),
            _ckernel.recount_deficits_mt(km.data, mask, rows, got),
        )

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_frontier_scatter_data_and_bookkeeping(self, shards):
        def run(nshards):
            rng = np.random.default_rng(31)
            fk = FrontierKnowledge(240, 70 * 64)
            for _ in range(5):
                k = int(rng.integers(1, 700))
                senders = rng.integers(0, 240, k).astype(np.int64)
                receivers = rng.integers(0, 240, k).astype(np.int64)
                total = int(fk._nnz[senders].sum())
                if total == 0:
                    continue
                if fk._val_buf is None or fk._val_buf.size < total:
                    fk._val_buf = np.empty(2 * total, dtype=np.uint64)
                    fk._lin_buf = np.empty(2 * total, dtype=np.int64)
                if nshards == 1:
                    _ckernel.frontier_scatter(
                        fk.data, fk._active_words, fk._nnz, fk._word_active,
                        fk._dense_rows, senders, receivers,
                        fk._val_buf, fk._lin_buf,
                    )
                else:
                    _ckernel.frontier_scatter_mt(
                        fk.data, fk._active_words, fk._nnz, fk._word_active,
                        fk._dense_rows, senders, receivers,
                        fk._val_buf, fk._lin_buf, nshards,
                    )
            return fk

        serial = run(1)
        sharded = run(_ckernel.ensure_shards(shards))
        assert np.array_equal(serial.data, sharded.data)
        assert np.array_equal(serial._nnz, sharded._nnz)
        assert np.array_equal(serial._active_words, sharded._active_words)
        assert np.array_equal(serial._word_active, sharded._word_active)
        assert np.array_equal(serial._dense_rows, sharded._dense_rows)


@needs_compiled
class TestBackendDispatchParity:
    """The matrix-level entry points agree across installed backends."""

    @pytest.mark.parametrize("threads", [2, 8])
    def test_knowledge_rounds_match_serial_backend(self, threads):
        def run(backend):
            rng = np.random.default_rng(91)
            km = KnowledgeMatrix(300)
            with backends.use(backend):
                for _ in range(6):
                    callers = np.arange(300, dtype=np.int64)
                    targets = rng.integers(0, 300, 300).astype(np.int64)
                    km.apply_exchange(callers, targets)
                    senders = rng.integers(0, 300, 500).astype(np.int64)
                    receivers = rng.integers(0, 300, 500).astype(np.int64)
                    km.apply_transmissions(senders, receivers)
            return km.data.copy()

        assert np.array_equal(
            run(backends.CSerialBackend()), run(threaded(threads))
        )

    @pytest.mark.parametrize("threads", [2, 8])
    def test_frontier_matrix_rounds_match(self, threads):
        def run(backend):
            rng = np.random.default_rng(17)
            fk = FrontierKnowledge(260, 70 * 64)
            with backends.use(backend):
                for _ in range(8):
                    senders = rng.integers(0, 260, 260).astype(np.int64)
                    receivers = rng.integers(0, 260, 260).astype(np.int64)
                    fk.apply_transmissions(senders, receivers)
            return fk

        serial = run(backends.CSerialBackend())
        sharded = run(threaded(threads))
        assert np.array_equal(serial.data, sharded.data)
        assert np.array_equal(serial._dense_rows, sharded._dense_rows)
        assert np.array_equal(serial._nnz, sharded._nnz)

    def test_completion_tracker_matches_reference(self):
        rng = np.random.default_rng(5)
        n = 150
        km = KnowledgeMatrix(n)
        with backends.use(threaded(8)):
            tracker = CompletionTracker(km)
            for _ in range(50):
                senders = rng.integers(0, n, 2 * n).astype(np.int64)
                receivers = rng.integers(0, n, 2 * n).astype(np.int64)
                touched = km.apply_transmissions(senders, receivers)
                tracker.update(touched)
                assert tracker.is_complete() == gossip_complete(km)
                if tracker.is_complete():
                    break
        assert tracker.is_complete()
