"""Semantic-equivalence tests for the vectorized gossip kernel.

The hot path of the simulator was rewritten from per-transmission Python
loops to vectorised NumPy (and optionally compiled C) kernels.  These tests
pin the new kernels to the original reference semantics: per-transmission
row ORs evaluated against a start-of-step snapshot.  They cover

* ``KnowledgeMatrix.apply_transmissions`` against a reference Python loop on
  randomized (senders, receivers, snapshot) batches with repeated receivers,
* ``KnowledgeMatrix.apply_exchange`` (including the saturation filter)
  against the same reference applied in both directions,
* the incremental :class:`CompletionTracker` against ``gossip_complete``
  across randomized round sequences, with and without failures,
* bit-identical results between the compiled and pure-NumPy code paths,
  including whole protocol runs,
* bit-identical whole-protocol trajectories across the ``numpy`` / ``c`` /
  ``c-threads`` kernel backends at 1, 2 and 8 threads
  (:class:`TestBackendTrajectoryParity`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import CompletionTracker, gossip_complete
from repro.core.random_walks import WalkPool
from repro.engine import _ckernel, backends
from repro.engine.knowledge import KnowledgeMatrix


def reference_apply(data: np.ndarray, senders, receivers, snapshot) -> None:
    """The seed implementation: one row OR per transmission, snapshot reads."""
    for s, r in zip(np.asarray(senders).tolist(), np.asarray(receivers).tolist()):
        data[r] |= snapshot[s]


def random_batch(rng, n, size):
    """A random transmission batch with plenty of repeated receivers."""
    senders = rng.integers(0, n, size)
    receivers = rng.integers(0, n // 2, size)  # force receiver collisions
    return senders.astype(np.int64), receivers.astype(np.int64)


def random_matrix(rng, n, n_messages=None) -> KnowledgeMatrix:
    km = KnowledgeMatrix(n, n_messages)
    noise = rng.integers(0, 2**63, size=km.data.shape, dtype=np.uint64)
    km.data |= noise & rng.integers(0, 2**63, size=km.data.shape, dtype=np.uint64)
    return km


def force_numpy_path(monkeypatch):
    """Disable the compiled kernels for the duration of a test."""
    monkeypatch.setattr(_ckernel, "_LIB", None)


@pytest.fixture(params=["compiled", "numpy"])
def kernel_path(request, monkeypatch):
    if request.param == "numpy":
        force_numpy_path(monkeypatch)
    elif not _ckernel.available():
        pytest.skip("compiled kernel unavailable on this machine")
    return request.param


class TestApplyTransmissionsEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_loop(self, kernel_path, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 200))
        km = random_matrix(rng, n)
        ref = km.data.copy()
        senders, receivers = random_batch(rng, n, int(rng.integers(1, 4 * n)))

        reference_apply(ref, senders, receivers, ref.copy())
        km.apply_transmissions(senders, receivers)
        assert np.array_equal(km.data, ref)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference_with_explicit_snapshot(self, kernel_path, seed):
        rng = np.random.default_rng(100 + seed)
        n = 64
        km = random_matrix(rng, n)
        other = random_matrix(rng, n)
        ref = km.data.copy()
        senders, receivers = random_batch(rng, n, 3 * n)

        reference_apply(ref, senders, receivers, other.data)
        km.apply_transmissions(senders, receivers, other.data)
        assert np.array_equal(km.data, ref)

    def test_sequential_chaining_is_prevented(self, kernel_path):
        """A message may not hop through two nodes in one synchronous step."""
        km = KnowledgeMatrix(3)
        km.apply_transmissions(
            np.asarray([0, 1], dtype=np.int64), np.asarray([1, 2], dtype=np.int64)
        )
        assert km.knows(1, 0)
        assert not km.knows(2, 0)  # node 2 sees node 1's start-of-step row

    def test_empty_batch_is_noop(self, kernel_path):
        km = KnowledgeMatrix(5)
        before = km.data.copy()
        km.apply_transmissions(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert np.array_equal(km.data, before)


class TestApplyExchangeEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_both_directions(self, kernel_path, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(10, 150))
        km = random_matrix(rng, n)
        ref = km.data.copy()
        k = int(rng.integers(1, n + 1))
        callers = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
        targets = rng.integers(0, n, k).astype(np.int64)

        snap = ref.copy()
        reference_apply(ref, callers, targets, snap)
        reference_apply(ref, targets, callers, snap)
        km.apply_exchange(callers, targets)
        assert np.array_equal(km.data, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_saturation_filter_is_bit_exact(self, kernel_path, seed):
        """Filtered and unfiltered exchanges produce identical matrices."""
        rng = np.random.default_rng(300 + seed)
        n = 80
        km_a = KnowledgeMatrix(n)
        km_b = KnowledgeMatrix(n)
        # Pre-saturate a random subset so the filter has something to do.
        saturated = rng.choice(n, size=n // 3, replace=False)
        full = km_a.full_row_mask()
        km_a.data[saturated] = full
        km_b.data[saturated] = full
        tracker = CompletionTracker(km_a)
        for _ in range(6):
            callers = np.arange(n, dtype=np.int64)
            targets = rng.integers(0, n, n).astype(np.int64)
            touched, promoted = km_a.apply_exchange(
                callers,
                targets,
                complete=tracker.complete_rows,
                complete_row=tracker.mask,
            )
            tracker.update(touched)
            tracker.mark_promoted(promoted)
            km_b.apply_exchange(callers, targets)
            assert np.array_equal(km_a.data, km_b.data)
            assert tracker.is_complete() == km_b.is_complete()


class TestTrackerMatchesGossipComplete:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_round_sequences(self, kernel_path, seed):
        rng = np.random.default_rng(400 + seed)
        n = int(rng.integers(20, 120))
        km = KnowledgeMatrix(n)
        tracker = CompletionTracker(km)
        for _ in range(40):
            senders, receivers = random_batch(rng, n, int(rng.integers(1, 2 * n)))
            touched = km.apply_transmissions(senders, receivers)
            tracker.update(touched)
            assert tracker.is_complete() == gossip_complete(km)
            if tracker.is_complete():
                break

    @pytest.mark.parametrize("seed", range(4))
    def test_with_alive_subset(self, kernel_path, seed):
        rng = np.random.default_rng(500 + seed)
        n = 60
        alive = np.sort(rng.choice(n, size=n - 7, replace=False)).astype(np.int64)
        alive_mask = np.zeros(n, dtype=bool)
        alive_mask[alive] = True
        km = KnowledgeMatrix(n)
        tracker = CompletionTracker(km, alive)
        for _ in range(60):
            # Only alive nodes communicate (the protocols' channel invariant).
            senders = alive[rng.integers(0, alive.size, alive.size)]
            receivers = alive[rng.integers(0, alive.size, alive.size)]
            touched = km.apply_transmissions(senders, receivers)
            tracker.update(touched)
            assert tracker.is_complete() == gossip_complete(km, alive)
            if tracker.is_complete():
                break
        assert tracker.is_complete()

    def test_missing_pairs_tracks_reference(self, kernel_path):
        from repro.core.completion import missing_pairs

        rng = np.random.default_rng(42)
        n = 50
        km = KnowledgeMatrix(n)
        tracker = CompletionTracker(km)
        for _ in range(10):
            senders, receivers = random_batch(rng, n, n)
            touched = km.apply_transmissions(senders, receivers)
            tracker.update(touched)
            assert tracker.missing_pairs() == missing_pairs(km)


@pytest.mark.skipif(not _ckernel.available(), reason="no compiled kernel")
class TestCompiledMatchesNumpy:
    def test_walk_delivery_identical(self, monkeypatch):
        def run(use_numpy):
            rng = np.random.default_rng(7)
            km = KnowledgeMatrix(32)
            payloads = km.data[rng.integers(0, 32, 10)].copy()
            pool = WalkPool(payloads, move_cap=5)
            pool.send_many(
                np.arange(10, dtype=np.int64),
                rng.integers(0, 32, 10).astype(np.int64),
            )
            if use_numpy:
                with pytest.MonkeyPatch.context() as mp:
                    mp.setattr(_ckernel, "_LIB", None)
                    pool.deliver(km)
            else:
                pool.deliver(km)
            return km.data.copy(), pool.payloads.copy()

        data_c, payloads_c = run(False)
        data_np, payloads_np = run(True)
        assert np.array_equal(data_c, data_np)
        assert np.array_equal(payloads_c, payloads_np)

    def test_full_protocol_runs_identical(self):
        """Whole protocol runs are bit-identical with and without the C path."""
        from repro import FastGossiping, PushPullGossip, erdos_renyi
        from repro.graphs import paper_edge_probability

        n = 256
        graph = erdos_renyi(n, paper_edge_probability(n), rng=3, require_connected=True)

        def both(protocol_cls, seed):
            a = protocol_cls().run(graph, rng=seed)
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(_ckernel, "_LIB", None)
                b = protocol_cls().run(graph, rng=seed)
            return a, b

        for cls, seed in ((PushPullGossip, 11), (FastGossiping, 12)):
            a, b = both(cls, seed)
            assert a.rounds == b.rounds
            assert a.completed == b.completed
            assert a.knowledge == b.knowledge
            assert a.ledger.total() == b.ledger.total()


@pytest.mark.slow
@pytest.mark.skipif(not _ckernel.available(), reason="no compiled kernel")
class TestBackendTrajectoryParity:
    """Full-protocol trajectories are backend- and thread-count-invariant.

    Receiver shards partition rows disjointly and every gather precedes
    every write, so the ``c-threads`` backend must reproduce the serial
    trajectories bit-for-bit at any thread count.  ``shard_work=1`` forces
    the threaded kernels on, despite the small test batches that would
    normally stay below the dispatch cutoff.
    """

    def _backend_matrix(self):
        yield "numpy", backends.NumpyBackend()
        yield "c", backends.CSerialBackend()
        for threads in (1, 2, 8):
            yield (
                f"c-threads[{threads}]",
                backends.CThreadsBackend(max_threads=threads, shard_work=1),
            )

    def test_all_protocols_all_backends(self, small_paper_graph):
        from repro import FastGossiping, MemoryGossiping, PushPullGossip

        protocols = (
            (PushPullGossip, 21),
            (FastGossiping, 22),
            (lambda: MemoryGossiping(leader=0), 23),
        )
        for factory, seed in protocols:
            reference = None
            for label, backend in self._backend_matrix():
                with backends.use(backend):
                    result = factory().run(small_paper_graph, rng=seed)
                summary = (
                    result.rounds,
                    result.completed,
                    result.ledger.total(),
                )
                if reference is None:
                    reference = (summary, result.knowledge)
                else:
                    assert summary == reference[0], (
                        f"{factory} trajectory diverged on backend {label}"
                    )
                    assert result.knowledge == reference[1], (
                        f"{factory} knowledge diverged on backend {label}"
                    )
