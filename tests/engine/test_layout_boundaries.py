"""Boundary tests for knowledge-layout auto-selection and block geometry.

The ``auto`` layout compares :func:`repro.engine.layouts.estimate_bytes`
against the ``REPRO_KNOWLEDGE_DENSE_BUDGET`` byte budget with ``<=``, so the
exact-budget problem must stay dense and one byte less must page.  Block
geometry edge cases — one-row blocks (``REPRO_KNOWLEDGE_BLOCK=1``) and node
counts landing exactly on a block boundary — must stay bit-identical to the
dense layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import layouts
from repro.engine.knowledge import KnowledgeMatrix
from repro.engine.layouts import (
    PagedKnowledge,
    SparseKnowledge,
    estimate_bytes,
    make_knowledge,
)

#: n = m = 128 gives words = 2, so the dense estimate is exactly
#: 16 * 128 * 2 = 4096 bytes (no frontier bookkeeping below 64 words).
N = 128
DENSE_BYTES = estimate_bytes("dense", N, N)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Boundary tests control the env vars explicitly."""
    monkeypatch.delenv("REPRO_KNOWLEDGE_LAYOUT", raising=False)
    monkeypatch.delenv("REPRO_KNOWLEDGE_DENSE_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_KNOWLEDGE_BLOCK", raising=False)


class TestBudgetBoundary:
    def test_estimate_is_exact_for_the_probe_size(self):
        assert DENSE_BYTES == 16 * N * 2

    def test_exactly_at_budget_stays_dense(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_DENSE_BUDGET", str(DENSE_BYTES))
        assert make_knowledge(N, N).layout == "dense"

    def test_one_byte_under_budget_pages(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_DENSE_BUDGET", str(DENSE_BYTES - 1))
        storage = make_knowledge(N, N)
        assert storage.layout == "paged"
        assert isinstance(storage, PagedKnowledge)

    def test_explicit_layout_beats_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_DENSE_BUDGET", "0")
        assert make_knowledge(N, N, layout="dense").layout == "dense"

    def test_use_scope_beats_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_DENSE_BUDGET", str(DENSE_BYTES))
        with layouts.use("sparse"):
            assert isinstance(make_knowledge(N, N), SparseKnowledge)


def _exercise(storage):
    """A deterministic mixed workload touching every bulk primitive."""
    rng = np.random.default_rng(77)
    n = storage.n_nodes
    for _ in range(4):
        k = n // 2
        callers = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
        shift = rng.integers(1, n)
        targets = (callers + shift) % n
        collide = callers == targets
        targets[collide] = (targets[collide] + 1) % n
        storage.apply_exchange(callers, targets)
        senders = rng.integers(0, n, size=k).astype(np.int64)
        receivers = (senders + 1 + rng.integers(0, n - 1, size=k)) % n
        storage.apply_transmissions(senders, receivers.astype(np.int64))
    return storage.fingerprint()


class TestBlockGeometry:
    def test_block_size_one_matches_dense(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_BLOCK", "1")
        paged = PagedKnowledge(N, N)
        assert paged.block_rows == 1
        assert paged.n_blocks == N
        assert _exercise(paged) == _exercise(KnowledgeMatrix(N, N))

    @pytest.mark.parametrize("layout_cls", [PagedKnowledge, SparseKnowledge])
    def test_n_exactly_on_block_boundary(self, layout_cls):
        """n = 64 with 32-row blocks: the last block is full, no ragged tail."""
        storage = layout_cls(64, 64, block_rows=32)
        assert storage.n_blocks == 2
        assert _exercise(storage) == _exercise(KnowledgeMatrix(64, 64))

    @pytest.mark.parametrize("layout_cls", [PagedKnowledge, SparseKnowledge])
    def test_ragged_tail_block(self, layout_cls):
        """n = 65 with 32-row blocks leaves a one-row tail block."""
        storage = layout_cls(65, 65, block_rows=32)
        assert storage.n_blocks == 3
        assert _exercise(storage) == _exercise(KnowledgeMatrix(65, 65))

    def test_env_block_size_reaches_constructor(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_BLOCK", "17")
        assert PagedKnowledge(N, N).block_rows == 17

    def test_block_larger_than_n_is_clamped(self):
        storage = PagedKnowledge(8, 8, block_rows=4096)
        assert storage.block_rows == 8
        assert storage.n_blocks == 1
