"""Tests for repro.engine.chaos (deterministic fault injection)."""

from __future__ import annotations

import pytest

from repro.engine.chaos import (
    FAULT_KINDS,
    NO_CHAOS,
    ChaosError,
    ChaosSpec,
    Fault,
    FaultPlan,
    corrupt_last_line,
    inject_worker_faults,
    parse_chaos_counts,
    sample_fault_plan,
)

PAIRS = [(format(i, "016x"), rep) for i in range(4) for rep in range(2)]


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor", config="0" * 16, repetition=0)

    def test_invalid_attempts_and_seconds(self):
        with pytest.raises(ValueError, match="attempts"):
            Fault(kind="kill", config="0" * 16, repetition=0, attempts=0)
        with pytest.raises(ValueError, match="seconds"):
            Fault(kind="hang", config="0" * 16, repetition=0, seconds=0)

    def test_fires_on_attempt_window(self):
        fault = Fault(kind="error", config="0" * 16, repetition=0, attempts=2)
        assert fault.fires_on(0) and fault.fires_on(1)
        assert not fault.fires_on(2)

    def test_pair_identity(self):
        fault = Fault(kind="error", config="a" * 16, repetition=3)
        assert fault.pair == ("a" * 16, 3)


class TestFaultPlan:
    def test_no_chaos_is_empty(self):
        assert NO_CHAOS.is_empty()
        assert NO_CHAOS.describe() == "no faults"
        assert NO_CHAOS.for_pair(PAIRS[0]) == ()

    def test_kind_routing(self):
        pair = PAIRS[0]
        plan = FaultPlan(
            faults=(
                Fault(kind="kill", config=pair[0], repetition=pair[1]),
                Fault(kind="corrupt", config=pair[0], repetition=pair[1]),
            )
        )
        assert [f.kind for f in plan.worker_faults(pair)] == ["kill"]
        assert [f.kind for f in plan.store_faults(pair)] == ["corrupt"]
        assert len(plan.for_pair(pair)) == 2
        assert plan.worker_faults(PAIRS[1]) == ()

    def test_describe_mentions_targets(self):
        plan = FaultPlan(
            faults=(Fault(kind="error", config="a" * 16, repetition=1, attempts=3),)
        )
        text = plan.describe()
        assert "error@" in text and "(x3)" in text


class TestParseChaosCounts:
    def test_counts_and_bare_kind(self):
        assert parse_chaos_counts("kill=1,error=2") == {"kill": 1, "error": 2}
        assert parse_chaos_counts("kill") == {"kill": 1}
        assert parse_chaos_counts("kill, kill=2") == {"kill": 3}
        assert parse_chaos_counts("") == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_chaos_counts("kil=1")

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError, match="invalid fault count"):
            parse_chaos_counts("kill=lots")
        with pytest.raises(ValueError, match="non-negative"):
            parse_chaos_counts("kill=-1")


class TestSampleFaultPlan:
    def test_deterministic_for_same_inputs(self):
        a = sample_fault_plan(PAIRS, {"kill": 2, "error": 1}, seed=5)
        b = sample_fault_plan(PAIRS, {"kill": 2, "error": 1}, seed=5)
        assert a == b
        assert not a.is_empty()

    def test_seed_changes_targets(self):
        plans = {
            tuple(f.pair for f in sample_fault_plan(PAIRS, {"kill": 2}, seed=s).faults)
            for s in range(10)
        }
        assert len(plans) > 1

    def test_targets_are_distinct_sweep_pairs(self):
        plan = sample_fault_plan(PAIRS, {"error": len(PAIRS)}, seed=1)
        assert sorted(f.pair for f in plan.faults) == sorted(PAIRS)

    def test_count_bounds(self):
        with pytest.raises(ValueError, match="pairs"):
            sample_fault_plan(PAIRS, {"kill": len(PAIRS) + 1}, seed=0)
        with pytest.raises(ValueError, match="pairs"):
            sample_fault_plan(PAIRS, {"kill": -1}, seed=0)
        assert sample_fault_plan(PAIRS, {"kill": 0}, seed=0).is_empty()

    def test_attempts_and_hang_seconds_propagate(self):
        plan = sample_fault_plan(PAIRS, {"hang": 1}, seed=2, attempts=4, hang_seconds=0.5)
        (fault,) = plan.faults
        assert fault.attempts == 4 and fault.seconds == 0.5


class TestChaosSpec:
    def test_materialize_matches_sample(self):
        spec = ChaosSpec(counts={"kill": 1, "error": 1}, seed=3)
        assert spec.materialize(PAIRS) == sample_fault_plan(
            PAIRS, {"kill": 1, "error": 1}, seed=3
        )

    def test_validates_kinds_and_attempts(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ChaosSpec(counts={"nope": 1})
        with pytest.raises(ValueError, match="attempts"):
            ChaosSpec(counts={"kill": 1}, attempts=0)


class TestInjectWorkerFaults:
    def test_error_fault_raises_on_scheduled_attempt_only(self):
        fault = Fault(kind="error", config="b" * 16, repetition=0, attempts=1)
        with pytest.raises(ChaosError, match="injected fault"):
            inject_worker_faults([fault], attempt=0)
        inject_worker_faults([fault], attempt=1)  # retry attempt: no fault

    def test_hang_fault_sleeps(self):
        import time

        fault = Fault(kind="hang", config="b" * 16, repetition=0, seconds=0.05)
        start = time.monotonic()
        inject_worker_faults([fault], attempt=0)
        assert time.monotonic() - start >= 0.05


class TestCorruptLastLine:
    def test_garbles_only_the_last_line_in_place(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": 2}\n')
        before = path.read_bytes()
        corrupted = corrupt_last_line(path)
        after = path.read_bytes()
        assert corrupted == len(b'{"b": 2}')
        assert len(after) == len(before)  # in place: offsets stay valid
        assert after.startswith(b'{"a": 1}\n')
        assert after.endswith(b"\n")
        with pytest.raises(UnicodeDecodeError):
            after.splitlines()[1].decode("utf-8")

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_last_line(path)


def test_fault_kind_order_is_stable():
    # Seed derivation keys on the index into FAULT_KINDS; reordering it would
    # silently change every sampled chaos plan.
    assert FAULT_KINDS == ("kill", "error", "hang", "corrupt")
