"""Tests for repro.engine.trace (per-round progress traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.knowledge import KnowledgeMatrix, SingleMessageState
from repro.engine.trace import RoundRecord, SpreadingTrace


class TestSpreadingTrace:
    def test_disabled_trace_records_nothing(self):
        trace = SpreadingTrace(enabled=False)
        trace.record(0, "p", KnowledgeMatrix(4))
        assert len(trace) == 0
        assert trace.final_coverage() == 0.0

    def test_record_gossip_state(self):
        km = KnowledgeMatrix(4)
        trace = SpreadingTrace()
        trace.record(0, "phase1", km)
        km.union_from_node(0, 1)
        trace.record(1, "phase1", km)
        assert len(trace) == 2
        assert trace.records[0].coverage == pytest.approx(0.25)
        assert trace.records[1].coverage > trace.records[0].coverage
        assert trace.records[1].max_known == 2

    def test_coverage_curve_monotone_for_unions(self):
        km = KnowledgeMatrix(8)
        trace = SpreadingTrace()
        rng = np.random.default_rng(0)
        for step in range(10):
            km.union_from_node(int(rng.integers(8)), int(rng.integers(8)))
            trace.record(step, "p", km)
        curve = trace.coverage_curve()
        assert np.all(np.diff(curve) >= 0)

    def test_rounds_per_phase(self):
        km = KnowledgeMatrix(4)
        trace = SpreadingTrace()
        trace.record(0, "a", km)
        trace.record(1, "a", km)
        trace.record(2, "b", km)
        assert trace.rounds_per_phase() == {"a": 2, "b": 1}

    def test_record_broadcast(self):
        state = SingleMessageState(10, source=0)
        trace = SpreadingTrace()
        trace.record_broadcast(0, "push", state)
        state.inform(np.asarray([1, 2, 3]), 1)
        trace.record_broadcast(1, "push", state)
        assert trace.records[0].fully_informed_nodes == 1
        assert trace.records[1].fully_informed_nodes == 4
        assert trace.final_coverage() == pytest.approx(0.4)

    def test_as_rows(self):
        km = KnowledgeMatrix(4)
        trace = SpreadingTrace()
        trace.record(0, "p", km)
        rows = trace.as_rows()
        assert rows[0]["round"] == 0
        assert rows[0]["phase"] == "p"
        assert set(rows[0]) >= {"coverage", "min_known", "mean_known", "max_known"}
