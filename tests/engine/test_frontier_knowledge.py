"""Equivalence and boundary tests for the sparsity-aware frontier kernels.

``FrontierKnowledge`` must be a drop-in replacement for the dense
``KnowledgeMatrix``: identical data after every batch, at every density, on
both the compiled and the pure-NumPy code path, including the exact moment a
row saturates past the crossover threshold.  These tests pin

* random transmission/exchange batches against the dense matrix, driven from
  the all-sparse start-up through full saturation,
* the exactly-at-threshold behaviour of the per-row ``word_cap`` ratchet,
* single-word versus multi-word message spaces,
* ``REPRO_DISABLE_CKERNEL``-style parity (compiled vs NumPy frontier paths),
* whole-protocol trajectory identity between ``adaptive_knowledge`` runs and
  ``REPRO_DISABLE_FRONTIER`` dense runs at equal seeds, and
* the memory-model replay batcher (merged groups vs per-group replay).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory_gossiping import _ReplayBatcher
from repro.engine import _ckernel
from repro.engine.knowledge import (
    FrontierKnowledge,
    KnowledgeMatrix,
    WORD_BITS,
    adaptive_knowledge,
)


@pytest.fixture(params=["compiled", "numpy"])
def kernel_path(request, monkeypatch):
    if request.param == "numpy":
        monkeypatch.setattr(_ckernel, "_LIB", None)
    elif not _ckernel.available():
        pytest.skip("compiled kernel unavailable on this machine")
    return request.param


def assert_frontier_invariants(fk: FrontierKnowledge) -> None:
    """Sparse rows must list exactly their nonzero words."""
    sparse = ~fk._dense_rows
    nonzero = fk.data != 0
    # Every nonzero word of a sparse row is active (otherwise the sparse
    # path would silently drop knowledge).
    assert not (nonzero[sparse] & ~fk._word_active[sparse]).any()
    for node in np.flatnonzero(sparse)[:10]:
        listed = fk._active_words[node, : fk._nnz[node]]
        assert len(set(listed.tolist())) == fk._nnz[node]
        assert set(listed.tolist()) == set(np.flatnonzero(fk._word_active[node]).tolist())


class TestFrontierMatchesDense:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_transmission_rounds(self, kernel_path, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(80, 400))
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        for _ in range(14):
            m = int(rng.integers(1, 2 * n))
            senders = rng.integers(0, n, m).astype(np.int64)
            receivers = rng.integers(0, n, m).astype(np.int64)
            fk.apply_transmissions(senders, receivers)
            km.apply_transmissions(senders, receivers)
            assert np.array_equal(fk.data, km.data)
            assert_frontier_invariants(fk)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_exchange_rounds(self, kernel_path, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(80, 300))
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        for _ in range(12):
            k = int(rng.integers(1, n + 1))
            callers = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
            targets = rng.integers(0, n, k).astype(np.int64)
            fk.apply_exchange(callers, targets)
            km.apply_exchange(callers, targets)
            assert np.array_equal(fk.data, km.data)
        assert_frontier_invariants(fk)

    def test_saturation_filtered_exchange(self, kernel_path):
        """The tracker-filtered (late-game) path stays bit-exact."""
        from repro.core.completion import CompletionTracker

        rng = np.random.default_rng(7)
        n = 150
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        saturated = rng.choice(n, size=n // 3, replace=False)
        full = km.full_row_mask()
        fk.data[saturated] = full
        fk.notify_rows_written(saturated)
        km.data[saturated] = full
        tracker = CompletionTracker(fk)
        for _ in range(8):
            callers = np.arange(n, dtype=np.int64)
            targets = rng.integers(0, n, n).astype(np.int64)
            touched, promoted = fk.apply_exchange(
                callers, targets, complete=tracker.complete_rows, complete_row=tracker.mask
            )
            tracker.update(touched)
            tracker.mark_promoted(promoted)
            km.apply_exchange(callers, targets)
            assert np.array_equal(fk.data, km.data)
            assert tracker.is_complete() == km.is_complete()

    def test_explicit_snapshot_delegates_to_dense(self, kernel_path):
        rng = np.random.default_rng(11)
        n = 100
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        other = KnowledgeMatrix(n)
        other.data |= rng.integers(0, 2**63, size=other.data.shape, dtype=np.uint64)
        senders = rng.integers(0, n, n).astype(np.int64)
        receivers = rng.integers(0, n, n).astype(np.int64)
        fk.apply_transmissions(senders, receivers, other.data)
        km.apply_transmissions(senders, receivers, other.data)
        assert np.array_equal(fk.data, km.data)
        # Snapshot writes bypass the pair bookkeeping: rows ratchet dense.
        assert fk._dense_rows[receivers].all()

    def test_add_and_union_paths(self, kernel_path):
        n = 200
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        nodes = np.arange(0, n, 3, dtype=np.int64)
        fk.add_many(nodes, 130)
        km.add_many(nodes, 130)
        fk.add(5, 77)
        km.add(5, 77)
        row = km.row_with([1, 64, 199])
        fk.union_into(9, row)
        km.union_into(9, row)
        fk.union_from_node(10, 9)
        km.union_from_node(10, 9)
        assert np.array_equal(fk.data, km.data)
        assert fk._dense_rows[9] and fk._dense_rows[10]
        assert_frontier_invariants(fk)
        # The batch kernels must keep working on the mixed state.
        rng = np.random.default_rng(3)
        senders = rng.integers(0, n, 2 * n).astype(np.int64)
        receivers = rng.integers(0, n, 2 * n).astype(np.int64)
        fk.apply_transmissions(senders, receivers)
        km.apply_transmissions(senders, receivers)
        assert np.array_equal(fk.data, km.data)


class TestCrossoverBoundary:
    def test_exactly_at_cap_stays_sparse_one_past_ratchets(self, kernel_path):
        """A row may list exactly ``word_cap`` words; one more goes dense."""
        n = 300  # words = 5 at n=300... use explicit message space below
        fk = FrontierKnowledge(64 * 40, crossover=0.2)  # words=40, cap=8
        assert fk.word_cap == 8
        node = 3
        # Fill the row's frontier to exactly the cap (own word counts).
        start_nnz = int(fk._nnz[node])
        for i in range(fk.word_cap - start_nnz):
            fk.add(node, (10 + i) * WORD_BITS)
        assert int(fk._nnz[node]) == fk.word_cap
        assert not fk._dense_rows[node]
        # The row still participates sparsely and correctly.
        km = KnowledgeMatrix(fk.n_nodes)
        km.data[:] = fk.data
        s = np.asarray([node], dtype=np.int64)
        r = np.asarray([17], dtype=np.int64)
        fk.apply_transmissions(s, r)
        km.apply_transmissions(s, r)
        assert np.array_equal(fk.data, km.data)
        # One word past the cap ratchets the row onto the dense path.
        fk.add(node, 30 * WORD_BITS)
        km.add(node, 30 * WORD_BITS)
        assert fk._dense_rows[node]
        fk.apply_transmissions(s, r)
        km.apply_transmissions(s, r)
        assert np.array_equal(fk.data, km.data)

    def test_batch_exactly_at_crossover_uses_dense(self, monkeypatch):
        """The estimate comparison is strict: at-threshold batches go dense."""
        fk = FrontierKnowledge(64 * 64, crossover=0.5)
        calls = []
        original = KnowledgeMatrix.apply_transmissions

        def spy(self, senders, receivers, snapshot=None):
            calls.append(senders.size)
            return original(self, senders, receivers, snapshot)

        monkeypatch.setattr(KnowledgeMatrix, "apply_transmissions", spy)
        node = 0
        # Give node 0 exactly crossover * words active words.
        target = int(fk.crossover * fk.words)
        for i in range(target - int(fk._nnz[node])):
            fk.add(node, (1 + i) * WORD_BITS)
        assert int(fk._nnz[node]) == target
        s = np.asarray([node], dtype=np.int64)
        r = np.asarray([5], dtype=np.int64)
        fk.apply_transmissions(s, r)
        assert calls == [1]  # delegated to the dense kernel
        # One word fewer and the batch is sparse again (no delegation).
        other = 2
        assert int(fk._nnz[other]) == 1
        calls.clear()
        fk.apply_transmissions(np.asarray([other], dtype=np.int64), r)
        assert calls == []

    def test_single_word_messages(self, kernel_path):
        """words == 1: the frontier degenerates gracefully to dense."""
        rng = np.random.default_rng(13)
        n = 50  # n_messages = 50 <= 64 -> a single storage word
        fk = FrontierKnowledge(n)
        km = KnowledgeMatrix(n)
        assert fk.words == 1
        for _ in range(8):
            senders = rng.integers(0, n, n).astype(np.int64)
            receivers = rng.integers(0, n, n).astype(np.int64)
            fk.apply_transmissions(senders, receivers)
            km.apply_transmissions(senders, receivers)
            assert np.array_equal(fk.data, km.data)

    def test_multi_word_messages_non_square(self, kernel_path):
        """n_messages >> n_nodes exercises wide rows and the tail word."""
        rng = np.random.default_rng(17)
        n, msgs = 40, 64 * 9 + 7  # 10 words, ragged tail
        fk = FrontierKnowledge(n, msgs)
        km = KnowledgeMatrix(n, msgs)
        for m in rng.integers(0, msgs, 30):
            nodes = rng.integers(0, n, 5).astype(np.int64)
            fk.add_many(nodes, int(m))
            km.add_many(nodes, int(m))
        for _ in range(10):
            senders = rng.integers(0, n, 2 * n).astype(np.int64)
            receivers = rng.integers(0, n, 2 * n).astype(np.int64)
            fk.apply_transmissions(senders, receivers)
            km.apply_transmissions(senders, receivers)
            assert np.array_equal(fk.data, km.data)
        assert_frontier_invariants(fk)

    def test_invalid_crossover_rejected(self):
        with pytest.raises(ValueError):
            FrontierKnowledge(100, crossover=0.0)
        with pytest.raises(ValueError):
            FrontierKnowledge(100, crossover=1.5)


@pytest.mark.skipif(not _ckernel.available(), reason="no compiled kernel")
class TestCompiledMatchesNumpyFrontier:
    """REPRO_DISABLE_CKERNEL parity: identical data on both frontier paths."""

    def run_rounds(self, use_numpy: bool) -> np.ndarray:
        rng = np.random.default_rng(23)
        fk = FrontierKnowledge(500)
        for _ in range(10):
            senders = rng.integers(0, 500, 700).astype(np.int64)
            receivers = rng.integers(0, 500, 700).astype(np.int64)
            if use_numpy:
                with pytest.MonkeyPatch.context() as mp:
                    mp.setattr(_ckernel, "_LIB", None)
                    fk.apply_transmissions(senders, receivers)
            else:
                fk.apply_transmissions(senders, receivers)
        return fk.data.copy()

    def test_data_identical(self):
        assert np.array_equal(self.run_rounds(False), self.run_rounds(True))


@pytest.mark.slow
class TestProtocolTrajectoryEquivalence:
    """Full runs with the frontier are bit-identical to dense runs."""

    @pytest.fixture(scope="class")
    def graph(self):
        from repro import erdos_renyi
        from repro.graphs import paper_edge_probability

        n = 6208  # past the adaptive_knowledge width gate (97 words)
        return erdos_renyi(n, paper_edge_probability(n), rng=9, require_connected=True)

    @pytest.mark.parametrize("protocol_name", ["push-pull", "fast-gossiping", "memory"])
    def test_bit_identical_trajectories(self, graph, protocol_name, monkeypatch):
        from repro import FastGossiping, MemoryGossiping, PushPullGossip

        def make():
            return {
                "push-pull": lambda: PushPullGossip(),
                "fast-gossiping": lambda: FastGossiping(),
                "memory": lambda: MemoryGossiping(leader=0),
            }[protocol_name]()

        monkeypatch.delenv("REPRO_DISABLE_FRONTIER", raising=False)
        # This test pins the frontier-vs-dense contract specifically; neutralize
        # any forced storage layout from the surrounding environment.
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "dense")
        frontier = make().run(graph, rng=41)
        assert isinstance(frontier.knowledge, FrontierKnowledge)
        monkeypatch.setenv("REPRO_DISABLE_FRONTIER", "1")
        dense = make().run(graph, rng=41)
        assert type(dense.knowledge) is KnowledgeMatrix
        assert frontier.rounds == dense.rounds
        assert frontier.completed == dense.completed
        assert np.array_equal(frontier.knowledge.data, dense.knowledge.data)
        assert frontier.ledger.total() == dense.ledger.total()
        assert np.array_equal(frontier.ledger.per_node(), dense.ledger.per_node())

    def test_adaptive_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_FRONTIER", raising=False)
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "dense")
        assert isinstance(adaptive_knowledge(96 * 64), FrontierKnowledge)
        # Below the post-SIMD break-even (96 words) the dense kernels win.
        assert type(adaptive_knowledge(64 * 64)) is KnowledgeMatrix
        assert type(adaptive_knowledge(1000)) is KnowledgeMatrix
        monkeypatch.setenv("REPRO_DISABLE_FRONTIER", "1")
        assert type(adaptive_knowledge(96 * 64)) is KnowledgeMatrix


class TestReplayBatcher:
    def reference_apply(self, n, groups):
        km = KnowledgeMatrix(n)
        for senders, receivers in groups:
            km.apply_transmissions(senders, receivers)
        return km.data

    def batched_apply(self, n, groups, counter=None):
        km = KnowledgeMatrix(n)
        if counter is not None:
            original = KnowledgeMatrix.apply_transmissions

            def spy(self_, senders, receivers, snapshot=None):
                counter.append(senders.size)
                return original(self_, senders, receivers, snapshot)

            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(KnowledgeMatrix, "apply_transmissions", spy)
                batcher = _ReplayBatcher(km)
                for senders, receivers in groups:
                    batcher.add(senders, receivers)
                batcher.flush()
        else:
            batcher = _ReplayBatcher(km)
            for senders, receivers in groups:
                batcher.add(senders, receivers)
            batcher.flush()
        return km.data

    def as_groups(self, *pairs):
        return [
            (np.asarray(s, dtype=np.int64), np.asarray(r, dtype=np.int64))
            for s, r in pairs
        ]

    def test_disjoint_groups_merge_into_one_batch(self):
        groups = self.as_groups(([0, 1], [5, 6]), ([2, 3], [7, 8]), ([4], [9]))
        counter = []
        batched = self.batched_apply(20, groups, counter)
        assert counter == [5]  # one merged batch
        assert np.array_equal(batched, self.reference_apply(20, groups))

    def test_sender_collision_merges_with_compensation(self):
        """A chain (receiver of group 1 sends in group 2) merges via
        transitive compensation: the extra snapshot edges reproduce the
        relayed values in a single batch."""
        groups = self.as_groups(([0], [1]), ([1], [2]), ([2], [3]))
        counter = []
        batched = self.batched_apply(10, groups, counter)
        # One batch: 3 original edges + compensation 0->2, 0->3, 1->3.
        assert counter == [6]
        ref = self.reference_apply(10, groups)
        assert np.array_equal(batched, ref)
        # The chain actually relays: node 3 must know message 0 after the
        # sequential replay (one hop per group).
        km = KnowledgeMatrix(10)
        km.data[:] = ref
        assert km.knows(3, 0)

    def test_compensation_budget_forces_flush(self):
        """A colliding group whose compensation fan-out exceeds the budget is
        applied after a flush instead (never merged unboundedly)."""
        n = 600
        # 200 pending edges all into node 0, then a 1-edge group sent by 0:
        # compensation would need 200 extra edges > max(64, 2 * 1).
        groups = self.as_groups(
            (list(range(100, 300)), [0] * 200),
            ([0], [1]),
        )
        counter = []
        batched = self.batched_apply(n, groups, counter)
        assert counter == [200, 1]  # flushed, not compensated
        assert np.array_equal(batched, self.reference_apply(n, groups))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_group_sequences_match_sequential(self, seed):
        rng = np.random.default_rng(600 + seed)
        n = 120
        groups = []
        for _ in range(25):
            m = int(rng.integers(1, 15))
            groups.append(
                (
                    rng.integers(0, n, m).astype(np.int64),
                    rng.integers(0, n, m).astype(np.int64),
                )
            )
        assert np.array_equal(
            self.batched_apply(n, groups), self.reference_apply(n, groups)
        )

    def test_empty_groups_are_skipped(self):
        km = KnowledgeMatrix(5)
        batcher = _ReplayBatcher(km)
        empty = np.zeros(0, dtype=np.int64)
        batcher.add(empty, empty)
        batcher.flush()
        assert np.array_equal(km.data, KnowledgeMatrix(5).data)
