"""Tests for the event-clock scheduler and its determinism contract.

The contract (module docstring of :mod:`repro.engine.event_clock`):

* the event stream is a pure function of (seed, graph) — chunk size, storage
  layout and kernel backend never touch the generator,
* groups are maximal non-colliding prefixes: all ``2k`` endpoints pairwise
  distinct, callers sorted (the ``apply_exchange`` precondition),
* batched group application is bit-identical to applying the wakeups one at
  a time (pinned here against a sequential replay, and on random event lists
  by ``tests/harness/``),
* whole event-clock runs are bit-identical across every storage layout and
  kernel backend at equal seeds,
* churn plans are seeded data; membership only changes at forced group
  boundaries and dead nodes are thinned from the stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PushPullGossip, PushPullParameters
from repro.engine import _ckernel, backends, layouts
from repro.engine.event_clock import (
    ChurnPlan,
    EventScheduler,
    group_events,
    sample_churn_plan,
)
from repro.engine.knowledge import KnowledgeMatrix
from repro.graphs import erdos_renyi, paper_edge_probability


@pytest.fixture(scope="module")
def graph():
    n = 96
    return erdos_renyi(n, paper_edge_probability(n), rng=7, require_connected=True)


def collect_groups(graph, seed, **kwargs):
    scheduler = EventScheduler(
        graph, np.random.default_rng(seed), max_events=600, **kwargs
    )
    return list(scheduler.groups()), scheduler


class TestStreamDeterminism:
    def test_identical_streams_at_equal_seeds(self, graph):
        a, _ = collect_groups(graph, 42)
        b, _ = collect_groups(graph, 42)
        assert len(a) == len(b)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.callers, gb.callers)
            assert np.array_equal(ga.targets, gb.targets)
            assert np.array_equal(ga.openers, gb.openers)
            assert ga.end_time == gb.end_time
            assert ga.end_index == gb.end_index

    def test_different_seeds_differ(self, graph):
        a, _ = collect_groups(graph, 42)
        b, _ = collect_groups(graph, 43)
        assert any(
            not np.array_equal(ga.callers, gb.callers) for ga, gb in zip(a, b)
        )

    @pytest.mark.parametrize("chunk", [1, 7, 64, 1024])
    def test_stream_discipline_and_border_carry(self, graph, chunk):
        """The documented contract, replayed by hand: per chunk the
        generator yields gaps, then owners, then callees, and grouping the
        resulting stream in one :func:`group_events` pass reproduces the
        scheduler's partition exactly.  Varying the chunk size puts borders
        inside almost every group, so a scheduler that reset its
        duplicate-tracking state at chunk borders would diverge here."""
        budget = 600
        rng = np.random.default_rng(42)
        owners: list = []
        callees: list = []
        drawn = 0
        while drawn < budget:
            k = min(chunk, budget - drawn)
            rng.exponential(1.0 / graph.n, k)
            chunk_owners = rng.integers(0, graph.n, size=k)
            owners.extend(chunk_owners.tolist())
            callees.extend(graph.sample_neighbors(chunk_owners, rng).tolist())
            drawn += k
        expected = group_events(owners, callees, graph.n)

        groups, _ = collect_groups(graph, 42, chunk_events=chunk)
        emitted = [
            (g.callers.tolist(), g.targets.tolist()) for g in groups if g.size
        ]
        assert len(emitted) == len(expected)
        for (gc, gt), (rc, rt) in zip(emitted, expected):
            assert gc == rc.tolist()
            assert gt == rt.tolist()

    def test_budget_is_respected(self, graph):
        groups, scheduler = collect_groups(graph, 42)
        assert scheduler.events == 600
        assert sum(g.size for g in groups) <= 600
        assert groups[-1].end_index <= 600

    def test_times_increase(self, graph):
        groups, scheduler = collect_groups(graph, 42)
        times = [g.end_time for g in groups if g.size]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert scheduler.time >= times[-1]


class TestGroupInvariants:
    def test_groups_are_non_colliding_and_sorted(self, graph):
        groups, _ = collect_groups(graph, 42)
        assert sum(g.size for g in groups) > 0
        for g in groups:
            endpoints = np.concatenate([g.callers, g.targets])
            assert np.unique(endpoints).size == endpoints.size
            assert np.all(np.diff(g.callers) > 0)

    def test_groups_are_maximal(self, graph):
        """A collision boundary means the next event collides with the group."""
        groups, _ = collect_groups(graph, 42)
        for prev, nxt in zip(groups, groups[1:]):
            if prev.forced or nxt.size == 0:
                continue
            # The first event of the next group must share an endpoint with
            # the previous group, otherwise the boundary was premature.
            prev_nodes = set(prev.callers.tolist()) | set(prev.targets.tolist())
            collides = any(
                c in prev_nodes or t in prev_nodes
                for c, t in zip(nxt.callers.tolist(), nxt.targets.tolist())
            )
            assert collides

    def test_group_events_matches_scheduler_rule(self):
        callers = [0, 2, 4, 0, 1, 3]
        targets = [1, 3, 5, 2, 5, 4]
        groups = group_events(callers, targets, 6)
        # 0-1, 2-3, 4-5 are disjoint; the fourth event (0-2) collides.
        assert [g[0].tolist() for g in groups] == [[0, 2, 4], [0, 1, 3]]
        for c, t in groups:
            endpoints = np.concatenate([c, t])
            assert np.unique(endpoints).size == endpoints.size

    def test_group_events_rejects_self_events(self):
        with pytest.raises(ValueError, match="itself"):
            group_events([1], [1], 4)

    def test_forced_breaks_emit_boundaries(self, graph):
        groups, _ = collect_groups(graph, 42, breaks=[100, 300])
        forced_indices = [g.end_index for g in groups if g.forced]
        assert 100 in forced_indices
        assert 300 in forced_indices

    def test_break_boundaries_do_not_change_the_stream(self, graph):
        """Breaks re-cut groups but never consume randomness: the flattened
        event sequence is identical with and without them."""

        def flat(groups):
            pairs = []
            for g in groups:
                pairs.extend(zip(g.callers.tolist(), g.targets.tolist()))
            return pairs

        plain, _ = collect_groups(graph, 42)
        broken, _ = collect_groups(graph, 42, breaks=[50, 51, 200])
        assert sorted(flat(plain)) == sorted(flat(broken))


class TestLiveness:
    def test_dead_owner_is_thinned(self, graph):
        alive = np.ones(graph.n, dtype=bool)
        alive[5] = False
        groups, _ = collect_groups(graph, 42, alive=alive)
        for g in groups:
            assert 5 not in g.callers
            assert 5 not in g.openers

    def test_dead_callee_opens_channel_but_no_exchange(self, graph):
        alive = np.ones(graph.n, dtype=bool)
        alive[5] = False
        groups, _ = collect_groups(graph, 42, alive=alive)
        openers = np.concatenate([g.openers for g in groups])
        exchanges = sum(g.size for g in groups)
        # Dead callees are never exchange targets, yet their callers still
        # opened a channel: strictly more opens than exchanges.
        for g in groups:
            assert 5 not in g.targets
        assert openers.size > exchanges

    def test_set_alive_rejoins_node(self, graph):
        alive = np.ones(graph.n, dtype=bool)
        alive[5] = False
        scheduler = EventScheduler(
            graph,
            np.random.default_rng(42),
            max_events=600,
            alive=alive,
            breaks=[300],
        )
        seen_after_rejoin = False
        for group in scheduler.groups():
            if group.forced and group.end_index == 300:
                scheduler.set_alive(5, True)
            elif scheduler.events > 300 and 5 in group.callers:
                seen_after_rejoin = True
        assert scheduler.alive_mask()[5]
        assert seen_after_rejoin

    def test_validation(self, graph):
        with pytest.raises(ValueError, match="max_events"):
            EventScheduler(graph, np.random.default_rng(0), max_events=0)
        with pytest.raises(ValueError, match="chunk_events"):
            EventScheduler(
                graph, np.random.default_rng(0), max_events=1, chunk_events=0
            )


class TestChurnPlan:
    def test_sampling_is_deterministic(self):
        a = sample_churn_plan(64, leavers=10, rng=9, horizon=500)
        b = sample_churn_plan(64, leavers=10, rng=9, horizon=500)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.nodes, b.nodes)
        assert np.array_equal(a.joins, b.joins)

    def test_plan_shape(self):
        plan = sample_churn_plan(64, leavers=10, rng=9, horizon=500)
        assert len(plan) >= 10
        assert np.all(np.diff(plan.indices) >= 0)
        leaves = plan.nodes[~plan.joins]
        assert np.unique(leaves).size == 10
        # Every rejoin is a node that left, strictly later than its leave.
        for node in plan.nodes[plan.joins].tolist():
            left_at = plan.indices[(plan.nodes == node) & ~plan.joins][0]
            back_at = plan.indices[(plan.nodes == node) & plan.joins][0]
            assert back_at > left_at

    def test_final_alive(self):
        plan = ChurnPlan(
            indices=np.asarray([10, 20, 30], dtype=np.int64),
            nodes=np.asarray([3, 3, 4], dtype=np.int64),
            joins=np.asarray([False, True, False]),
        )
        final = plan.final_alive(np.ones(6, dtype=bool))
        assert final[3]  # left, came back
        assert not final[4]  # left for good
        assert final.sum() == 5

    def test_zero_leavers(self):
        plan = sample_churn_plan(64, leavers=0, rng=9, horizon=500)
        assert len(plan) == 0
        assert plan.breaks.size == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="leavers"):
            sample_churn_plan(8, leavers=8, rng=1, horizon=100)
        with pytest.raises(ValueError, match="ascending"):
            ChurnPlan(
                indices=np.asarray([20, 10], dtype=np.int64),
                nodes=np.asarray([1, 2], dtype=np.int64),
                joins=np.asarray([False, False]),
            )


class TestBatchedEqualsSequential:
    def test_group_replay_matches_one_event_at_a_time(self, graph):
        """The tentpole equivalence: batched apply_exchange per group is
        bit-identical to a per-wakeup pure replay of the same stream."""
        batched = KnowledgeMatrix(graph.n)
        sequential = KnowledgeMatrix(graph.n)
        scheduler = EventScheduler(
            graph, np.random.default_rng(11), max_events=4 * graph.n
        )
        for group in scheduler.groups():
            if not group.size:
                continue
            batched.apply_exchange(group.callers, group.targets)
            for c, t in zip(group.callers.tolist(), group.targets.tolist()):
                sent = sequential.rows(np.asarray([c]))[0]
                pulled = sequential.rows(np.asarray([t]))[0]
                sequential.union_into(t, sent)
                sequential.union_into(c, pulled)
        assert batched.fingerprint() == sequential.fingerprint()


class TestWholeRunParity:
    """Event-clock runs are bit-identical across layouts and backends."""

    LAYOUT_NAMES = ("dense", "paged", "sparse")
    BACKEND_NAMES = ("numpy", "c", "c-threads")

    def _fingerprint(self, graph, layout, backend):
        with backends.use(backend), layouts.use(layout):
            result = PushPullGossip(PushPullParameters(clock="event")).run(
                graph, rng=42
            )
        assert result.completed
        return (
            result.knowledge.fingerprint(),
            result.rounds,
            result.extras["events"],
            result.extras["sim_time"],
        )

    def test_bit_identical_across_layouts_and_backends(self, graph):
        reference = self._fingerprint(graph, "dense", "numpy")
        compiled = _ckernel.available()
        for layout in self.LAYOUT_NAMES:
            for backend in self.BACKEND_NAMES:
                if backend != "numpy" and not compiled:
                    continue
                got = self._fingerprint(graph, layout, backend)
                assert got == reference, f"{layout}/{backend}"

    def test_event_run_reports_event_extras(self, graph):
        result = PushPullGossip().run(graph, rng=42, clock="event")
        assert result.extras["clock"] == "event"
        assert result.extras["events"] > 0
        assert result.extras["sim_time"] > 0.0
        assert result.completed

    def test_sync_and_event_clocks_are_different_processes(self, graph):
        sync = PushPullGossip().run(graph, rng=42)
        event = PushPullGossip().run(graph, rng=42, clock="event")
        assert sync.extras["clock"] == "sync"
        assert event.extras["clock"] == "event"
        assert sync.rounds != event.rounds


class TestClockSeam:
    def test_unknown_clock_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown clock"):
            PushPullGossip().run(graph, rng=1, clock="warped")

    def test_churn_requires_event_clock(self, graph):
        plan = sample_churn_plan(graph.n, leavers=4, rng=3, horizon=200)
        with pytest.raises(ValueError, match="event clock"):
            PushPullGossip().run(graph, rng=1, clock="sync", churn=plan)

    def test_params_clock_is_honored(self, graph):
        result = PushPullGossip(PushPullParameters(clock="event")).run(graph, rng=1)
        assert result.extras["clock"] == "event"

    def test_explicit_clock_overrides_params(self, graph):
        result = PushPullGossip(PushPullParameters(clock="event")).run(
            graph, rng=1, clock="sync"
        )
        assert result.extras["clock"] == "sync"


class TestChurnRuns:
    def test_churn_run_completes_for_survivors(self, graph):
        plan = sample_churn_plan(graph.n, leavers=8, rng=3, horizon=400)
        result = PushPullGossip().run(graph, rng=5, clock="event", churn=plan)
        assert result.completed
        assert result.extras["churn_ops"] == len(plan)
        final = plan.final_alive(np.ones(graph.n, dtype=bool))
        # Completion targets the finally-alive membership: every surviving
        # node knows every survivor's message (a node that left for good may
        # never have spread its own).
        survivor_mask = result.knowledge.row_with(np.flatnonzero(final).tolist())
        missing = result.knowledge.count_missing(
            survivor_mask, np.flatnonzero(final)
        )
        assert int(missing.sum()) == 0

    def test_churn_run_is_deterministic(self, graph):
        plan = sample_churn_plan(graph.n, leavers=8, rng=3, horizon=400)
        a = PushPullGossip().run(graph, rng=5, clock="event", churn=plan)
        b = PushPullGossip().run(graph, rng=5, clock="event", churn=plan)
        assert a.knowledge.fingerprint() == b.knowledge.fingerprint()
        assert a.rounds == b.rounds
        assert a.extras == b.extras

    def test_empty_churn_plan_matches_plain_event_run(self, graph):
        """A zero-op churn plan must not perturb the trajectory."""
        empty = sample_churn_plan(graph.n, leavers=0, rng=3, horizon=400)
        plain = PushPullGossip().run(graph, rng=5, clock="event")
        with_plan = PushPullGossip().run(graph, rng=5, clock="event", churn=empty)
        assert plain.knowledge.fingerprint() == with_plan.knowledge.fingerprint()
        assert plain.rounds == with_plan.rounds
