"""SIMD-vs-scalar bit-identity for the compiled word-OR kernel families.

The compiled library dispatches its row primitives (row OR, OR-accumulate,
missing-word popcounts, frontier gathers) through function pointers selected
at load time from the CPU: scalar, SSE2, AVX2 or AVX-512
(``REPRO_DISABLE_SIMD=1`` pins scalar).  The vector forms must be *exactly*
the scalar forms, only wider — these tests replay identical op sequences at
every level the host supports and require bit-identical storage states,
deficit counts and fused in-kernel recounts.

Shapes are chosen to hit the awkward cases:

* word counts 1, 7, 63, 64, 65, 127 and 128 — below, at and just past each
  vector width (2/4/8 words per 128/256/512-bit register), with ragged
  tails that no vector stride covers evenly;
* odd word counts give *unaligned* row starts: row ``r`` begins at byte
  ``r * words * 8``, so e.g. 7-word rows never repeat the 32/64-byte
  alignment of row 0 and the kernels must use unaligned loads throughout;
* partially-filled last words (``n_messages`` not a multiple of 64)
  exercise the tail masks of the popcount kernels;
* the paged/sparse layouts run at ``block_rows`` 1, 3 and 8 so block seams
  fall inside, between and across vector strides.

``_SWAP_MIN_WORK`` is forced to 0 so these small matrices take the
swap-form round kernels (plain, saturation-filtered and fused-deficit
variants) exactly like production-size runs do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.completion import CompletionTracker
from repro.engine import _ckernel, backends
from repro.engine import knowledge as knowledge_mod
from repro.engine import (
    FrontierKnowledge,
    KnowledgeMatrix,
    PagedKnowledge,
    SparseKnowledge,
)

pytestmark = pytest.mark.skipif(
    not _ckernel.available(), reason="no compiled kernel"
)

#: Word counts straddling the 128/256/512-bit vector widths.
WORD_COUNTS = (1, 7, 63, 64, 65, 127, 128)

#: (layout, block_rows) pairs; block_rows only shapes the block layouts.
LAYOUTS = (
    ("dense", 1),
    ("frontier", 1),
    ("paged", 1),
    ("paged", 3),
    ("paged", 8),
    ("sparse", 1),
    ("sparse", 3),
    ("sparse", 8),
)

BACKENDS = ("c", "c-threads")


def _n_messages(words: int) -> int:
    """A message count occupying exactly ``words`` words, ragged tail when odd."""
    return 64 * words - (17 if words % 2 else 0)


def _make(layout: str, block_rows: int, n: int, m: int):
    if layout == "dense":
        return KnowledgeMatrix(n, m)
    if layout == "frontier":
        return FrontierKnowledge(n, m)
    if layout == "paged":
        return PagedKnowledge(n, m, block_rows=block_rows)
    return SparseKnowledge(n, m, block_rows=block_rows)


def _trajectory(layout: str, block_rows: int, words: int, seed: int) -> list:
    """Replay a fixed seeded op sequence; return everything observable.

    The sequence walks every kernel family: a dense transmission round
    (swap push kernel), a sparse one (snapshot + scatter kernel), an
    unfiltered exchange with fused deficits, a saturation-filtered
    exchange, an external-row scatter, and a standalone deficit recount.
    """
    rng = np.random.default_rng(seed)
    n = 33
    m = _n_messages(words)
    storage = _make(layout, block_rows, n, m)
    everyone = np.arange(n, dtype=np.int64)
    out = []

    def snap():
        out.append(storage.rows(everyone).tobytes())

    # Dense transmission batch with receiver collisions -> swap-form round.
    senders = rng.integers(0, n, 2 * n).astype(np.int64)
    receivers = rng.integers(0, n, 2 * n).astype(np.int64)
    storage.apply_transmissions(senders, receivers)
    snap()

    # Sparse batch (size * 4 < n) -> snapshot gather + scatter-OR kernel.
    storage.apply_transmissions(
        np.asarray([1, 2], dtype=np.int64), np.asarray([3, 5], dtype=np.int64)
    )
    snap()

    # Unfiltered exchange with the fused in-kernel deficit recount.
    tracker = CompletionTracker(storage)
    callers = np.arange(0, n, 2, dtype=np.int64)
    targets = np.asarray(
        [(c + 1) % n for c in callers], dtype=np.int64
    )
    touched, promoted = storage.apply_exchange(
        callers,
        targets,
        deficit_mask=tracker.mask,
        deficits_out=tracker.deficits,
    )
    if layout == "dense":
        # Only the resident-matrix swap kernel fuses the recount; the block
        # layouts (and the frontier's sparse rounds) recount via the tracker.
        assert storage.fused_deficits
    if storage.fused_deficits:
        tracker.refresh()
    else:
        tracker.update(touched)
        tracker.mark_promoted(promoted)
    out.append(tracker.deficits.tobytes())
    snap()

    # Saturate a minority of rows, then a filtered exchange (live majority
    # keeps the filtered swap kernel on) with fused deficits.
    full = storage.full_row_mask()
    saturated = np.asarray([0, 7, 13], dtype=np.int64)
    storage.assign_rows(saturated, full)
    tracker.mark_promoted(saturated)
    touched, promoted = storage.apply_exchange(
        callers,
        targets,
        complete=tracker.complete_rows,
        complete_row=tracker.mask,
        deficit_mask=tracker.mask,
        deficits_out=tracker.deficits,
    )
    if storage.fused_deficits:
        tracker.refresh()
    else:
        tracker.update(touched)
        tracker.mark_promoted(promoted)
    out.append(np.sort(np.asarray(promoted)).tobytes())
    out.append(tracker.deficits.tobytes())
    out.append(dict(storage.filter_stats))
    snap()

    # External-row scatter (the broadcast/replay primitive).
    source = np.stack(
        [storage.row_with([0, min(5, m - 1)]), storage.row_with([m - 1])]
    )
    storage.scatter_rows(
        source,
        np.asarray([0, 1, 0], dtype=np.int64),
        np.asarray([4, 9, 9], dtype=np.int64),
    )
    snap()

    # Standalone missing-word popcount over every row.
    out.append(storage.count_missing(full, everyone).tobytes())
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("layout,block_rows", LAYOUTS)
@pytest.mark.parametrize("words", WORD_COUNTS)
def test_all_levels_bit_identical(words, layout, block_rows, backend, monkeypatch):
    if _ckernel.simd_detected() == 0:
        pytest.skip("CPU supports no SIMD level beyond scalar")
    monkeypatch.setattr(knowledge_mod, "_SWAP_MIN_WORK", 0)
    original = _ckernel.simd_active()
    try:
        with backends.use(backend):
            reference = None
            for level in range(_ckernel.simd_detected() + 1):
                assert _ckernel.set_simd_level(level) == level
                got = _trajectory(layout, block_rows, words, seed=words * 101)
                if reference is None:
                    reference = got
                elif got != reference:
                    bad = [i for i, (a, b) in enumerate(zip(reference, got)) if a != b]
                    pytest.fail(
                        f"{_ckernel.simd_name(level)} diverged from scalar on "
                        f"layout={layout} block_rows={block_rows} words={words} "
                        f"backend={backend} at observation(s) {bad}"
                    )
    finally:
        _ckernel.set_simd_level(original)


def test_set_simd_level_clamps_and_reports():
    detected = _ckernel.simd_detected()
    original = _ckernel.simd_active()
    try:
        assert _ckernel.set_simd_level(99) == detected
        assert _ckernel.simd_active() == detected
        assert _ckernel.set_simd_level(-3) == 0
        assert _ckernel.simd_name(0) == "scalar"
        assert _ckernel.simd_name(detected) == _ckernel.SIMD_LEVELS[detected]
    finally:
        _ckernel.set_simd_level(original)


def test_simd_info_shape():
    info = backends.simd_info()
    assert set(info) == {"active", "detected", "disabled"}
    assert info["active"] in _ckernel.SIMD_LEVELS
    assert info["detected"] in _ckernel.SIMD_LEVELS
    assert isinstance(info["disabled"], bool)


def test_whole_protocol_runs_identical_across_levels():
    """Full protocol trajectories are invariant under the SIMD level."""
    if _ckernel.simd_detected() == 0:
        pytest.skip("CPU supports no SIMD level beyond scalar")
    from repro import FastGossiping, PushPullGossip, erdos_renyi
    from repro.graphs import paper_edge_probability

    n = 192
    graph = erdos_renyi(n, paper_edge_probability(n), rng=4, require_connected=True)
    original = _ckernel.simd_active()
    try:
        for cls, seed in ((PushPullGossip, 31), (FastGossiping, 32)):
            reference = None
            for level in range(_ckernel.simd_detected() + 1):
                _ckernel.set_simd_level(level)
                result = cls().run(graph, rng=seed)
                summary = (result.rounds, result.completed, result.ledger.total())
                if reference is None:
                    reference = (summary, result.knowledge)
                else:
                    assert summary == reference[0], (
                        f"{cls.__name__} diverged at level {_ckernel.simd_name(level)}"
                    )
                    assert result.knowledge == reference[1]
    finally:
        _ckernel.set_simd_level(original)
