"""Tests for repro.engine.knowledge (bitset knowledge matrices)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.knowledge import WORD_BITS, KnowledgeMatrix, SingleMessageState


class TestConstruction:
    def test_initial_own_messages(self):
        km = KnowledgeMatrix(10)
        for node in range(10):
            assert km.knows(node, node)
            assert km.counts()[node] == 1

    def test_empty_constructor(self):
        km = KnowledgeMatrix.empty(5)
        assert km.total_known() == 0

    def test_word_count(self):
        assert KnowledgeMatrix(64).words == 1
        assert KnowledgeMatrix(65).words == 2
        assert KnowledgeMatrix(128).words == 2
        assert KnowledgeMatrix(129).words == 3

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            KnowledgeMatrix(0)
        with pytest.raises(ValueError):
            KnowledgeMatrix(4, 0)

    def test_fewer_messages_than_nodes(self):
        km = KnowledgeMatrix(10, 4)
        assert km.knows(0, 0) and km.knows(3, 3)
        assert km.counts()[5] == 0

    def test_copy_is_independent(self):
        km = KnowledgeMatrix(8)
        clone = km.copy()
        km.add(0, 5)
        assert not clone.knows(0, 5)
        assert km != clone

    def test_equality(self):
        assert KnowledgeMatrix(8) == KnowledgeMatrix(8)
        assert KnowledgeMatrix(8) != KnowledgeMatrix(9)


class TestElementAccess:
    def test_add_and_knows(self):
        km = KnowledgeMatrix(70)
        km.add(3, 69)
        assert km.knows(3, 69)
        assert not km.knows(4, 69)

    def test_add_is_idempotent(self):
        km = KnowledgeMatrix(16)
        km.add(2, 7)
        km.add(2, 7)
        assert km.counts()[2] == 2  # own message + message 7

    def test_message_out_of_range(self):
        km = KnowledgeMatrix(8)
        with pytest.raises(IndexError):
            km.add(0, 8)
        with pytest.raises(IndexError):
            km.knows(0, -1)

    def test_known_messages_sorted(self):
        km = KnowledgeMatrix(100)
        km.add(0, 99)
        km.add(0, 42)
        assert km.known_messages(0).tolist() == [0, 42, 99]

    def test_missing_messages(self):
        km = KnowledgeMatrix(5)
        missing = km.missing_messages_at(2)
        assert 2 not in missing
        assert set(missing) == {0, 1, 3, 4}

    def test_row_with(self):
        km = KnowledgeMatrix(130)
        row = km.row_with([0, 64, 129])
        km.union_into(5, row)
        assert km.knows(5, 0) and km.knows(5, 64) and km.knows(5, 129)


class TestBulkUpdates:
    def test_union_from_node(self):
        km = KnowledgeMatrix(8)
        km.union_from_node(0, 1)
        assert km.knows(0, 1) and km.knows(0, 0)

    def test_union_from_snapshot_uses_old_state(self):
        km = KnowledgeMatrix(8)
        snapshot = km.snapshot()
        km.add(1, 7)  # happens "after" the snapshot
        km.union_from_node(0, 1, snapshot)
        assert not km.knows(0, 7)

    def test_apply_transmissions_synchronous(self):
        # Chain 0 -> 1 -> 2 in the same step: 2 must not learn 0's message.
        km = KnowledgeMatrix(3)
        km.apply_transmissions(np.asarray([0, 1]), np.asarray([1, 2]))
        assert km.knows(1, 0)
        assert km.knows(2, 1)
        assert not km.knows(2, 0)

    def test_apply_transmissions_duplicate_receivers(self):
        km = KnowledgeMatrix(4)
        km.apply_transmissions(np.asarray([0, 1]), np.asarray([3, 3]))
        assert km.knows(3, 0) and km.knows(3, 1)

    def test_apply_transmissions_empty(self):
        km = KnowledgeMatrix(4)
        before = km.snapshot()
        km.apply_transmissions(np.asarray([], dtype=np.int64), np.asarray([], dtype=np.int64))
        assert np.array_equal(km.data, before)

    def test_apply_transmissions_shape_mismatch(self):
        km = KnowledgeMatrix(4)
        with pytest.raises(ValueError):
            km.apply_transmissions(np.asarray([0]), np.asarray([1, 2]))


class TestAggregates:
    def test_counts_and_total(self):
        km = KnowledgeMatrix(6)
        km.add(0, 1)
        km.add(0, 2)
        counts = km.counts()
        assert counts[0] == 3
        assert km.total_known() == 6 + 2

    def test_nodes_knowing(self):
        km = KnowledgeMatrix(6)
        km.add(4, 1)
        assert set(km.nodes_knowing(1).tolist()) == {1, 4}
        assert km.num_nodes_knowing(1) == 2

    def test_informed_counts_per_message(self):
        km = KnowledgeMatrix(5)
        km.add(0, 3)
        km.add(1, 3)
        per_message = km.informed_counts_per_message()
        assert per_message[3] == 3
        assert per_message[0] == 1

    def test_is_complete_detects_completion(self):
        km = KnowledgeMatrix(70)
        assert not km.is_complete()
        for node in range(70):
            for message in range(70):
                km.add(node, message)
        assert km.is_complete()
        assert km.coverage() == pytest.approx(1.0)

    def test_fully_informed_nodes(self):
        km = KnowledgeMatrix(4)
        for message in range(4):
            km.add(2, message)
        mask = km.fully_informed_nodes()
        assert mask[2]
        assert mask.sum() == 1

    def test_coverage_initial(self):
        km = KnowledgeMatrix(10)
        assert km.coverage() == pytest.approx(0.1)


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def _matrix_and_ops(draw):
    n = draw(st.integers(min_value=2, max_value=90))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=40,
        )
    )
    return n, ops


class TestKnowledgeProperties:
    @settings(max_examples=40, deadline=None)
    @given(_matrix_and_ops())
    def test_unions_are_monotone_and_sound(self, data):
        """After arbitrary unions, knowledge contains exactly the union of sources."""
        n, ops = data
        km = KnowledgeMatrix(n)
        reference = {node: {node} for node in range(n)}
        for dst, src in ops:
            km.union_from_node(dst, src)
            reference[dst] |= reference[src]
        for node in range(n):
            assert set(km.known_messages(node).tolist()) == reference[node]

    @settings(max_examples=40, deadline=None)
    @given(_matrix_and_ops())
    def test_counts_match_known_messages(self, data):
        n, ops = data
        km = KnowledgeMatrix(n)
        for dst, src in ops:
            km.union_from_node(dst, src)
        counts = km.counts()
        for node in range(n):
            assert counts[node] == km.known_messages(node).size

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_total_known_equals_per_message_sum(self, n):
        km = KnowledgeMatrix(n)
        assert km.total_known() == km.informed_counts_per_message().sum() == n

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=80),
        st.integers(min_value=0, max_value=79),
        st.integers(min_value=0, max_value=79),
    )
    def test_add_then_knows_roundtrip(self, n, node, message):
        km = KnowledgeMatrix(n)
        node %= n
        message %= n
        km.add(node, message)
        assert km.knows(node, message)
        assert message in km.known_messages(node)


class TestSingleMessageState:
    def test_initial_state(self):
        state = SingleMessageState(10, source=3)
        assert state.num_informed() == 1
        assert state.informed[3]
        assert state.informed_at[3] == 0

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            SingleMessageState(5, source=5)
        with pytest.raises(ValueError):
            SingleMessageState(0)

    def test_inform_counts_new_only(self):
        state = SingleMessageState(10, source=0)
        new = state.inform(np.asarray([0, 1, 1, 2]), round_index=1)
        assert new == 2
        assert state.num_informed() == 3
        assert state.informed_at[1] == 1

    def test_inform_empty(self):
        state = SingleMessageState(4)
        assert state.inform(np.asarray([], dtype=np.int64), 1) == 0

    def test_complete(self):
        state = SingleMessageState(3, source=0)
        state.inform(np.asarray([1, 2]), 1)
        assert state.is_complete()
        assert state.uninformed_nodes().size == 0
        assert set(state.informed_nodes().tolist()) == {0, 1, 2}
