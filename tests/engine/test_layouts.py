"""Cross-layout equivalence tests for the pluggable knowledge storage.

The storage contract (:class:`repro.engine.knowledge.KnowledgeStorage`) is
that every layout — dense :class:`KnowledgeMatrix`, block-paged
:class:`PagedKnowledge`, lifetime-sparse :class:`SparseKnowledge` — produces
**bit-identical trajectories** at every size where dense fits.  These tests
pin that contract:

* randomized batch operations (``apply_transmissions``, ``apply_exchange``
  with the saturation filter, ``scatter_rows``, element mutators) against
  the dense reference, at block-boundary sizes ``n = block_rows ± 1`` and on
  both the compiled and pure-NumPy kernel paths,
* ``count_missing`` for every layout (including the frontier's
  active-word-set counter) pinned to the plain masked scan,
* whole-protocol trajectory parity across the full layout x backend matrix
  (dense / paged / sparse x numpy / c / c-threads),
* the selection registry (env var, ``use`` scope, explicit argument, the
  ``auto`` memory model),
* a sweep interrupted under the dense layout and resumed under the paged
  layout, which must be bit-identical to an uninterrupted dense run.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import _ckernel, backends, layouts
from repro.engine.knowledge import (
    FrontierKnowledge,
    KnowledgeMatrix,
    KnowledgeStorage,
)
from repro.engine.layouts import PagedKnowledge, SparseKnowledge


@pytest.fixture(params=["compiled", "numpy"])
def kernel_path(request, monkeypatch):
    if request.param == "numpy":
        monkeypatch.setattr(_ckernel, "_LIB", None)
    elif not _ckernel.available():
        pytest.skip("compiled kernel unavailable on this machine")
    return request.param


BLOCK = 16
#: Block-boundary sizes: one block minus/plus one row, and a multi-block n.
BOUNDARY_SIZES = (BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 5)


def make_layouts(n, n_messages=None):
    """One instance of every layout, block sizes forced small."""
    return {
        "dense": KnowledgeMatrix(n, n_messages),
        "paged": PagedKnowledge(n, n_messages, block_rows=BLOCK),
        "sparse": SparseKnowledge(n, n_messages, block_rows=BLOCK),
    }


def random_batch(rng, n, size):
    senders = rng.integers(0, n, size).astype(np.int64)
    receivers = rng.integers(0, max(1, n // 2), size).astype(np.int64)
    return senders, receivers


class TestUnitEquivalence:
    """Randomized storage operations match the dense reference bit-for-bit."""

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    @pytest.mark.parametrize("seed", range(3))
    def test_apply_transmissions(self, kernel_path, n, seed):
        rng = np.random.default_rng(seed)
        instances = make_layouts(n)
        for _ in range(4):
            senders, receivers = random_batch(rng, n, int(rng.integers(1, 3 * n)))
            for store in instances.values():
                store.apply_transmissions(senders, receivers)
        reference = instances["dense"]
        for name, store in instances.items():
            assert store == reference, f"layout {name} diverged"
            assert store.fingerprint() == reference.fingerprint()

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    @pytest.mark.parametrize("seed", range(3))
    def test_apply_exchange_with_saturation(self, kernel_path, n, seed):
        rng = np.random.default_rng(100 + seed)
        instances = make_layouts(n)
        complete_row = instances["dense"].full_row_mask()
        for _ in range(6):
            # Callers must be sorted and unique (one outgoing channel per
            # node — the dense pull path relies on it); targets may repeat.
            k = int(rng.integers(1, n))
            callers = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
            targets = rng.integers(0, n, k).astype(np.int64)
            # Recompute saturation per layout from its own state: identical
            # states must produce identical filters.
            results = {}
            for name, store in instances.items():
                complete = (
                    store.count_missing(
                        complete_row, np.arange(n, dtype=np.int64)
                    )
                    == 0
                )
                results[name] = store.apply_exchange(
                    callers,
                    targets,
                    complete=complete,
                    complete_row=complete_row,
                )
            # ``touched`` is a multiset whose duplication is layout-specific
            # (the contract allows duplicates; the tracker dedups), so compare
            # the deduplicated sets.
            ref_touched, ref_promoted = results["dense"]
            for name, (touched, promoted) in results.items():
                assert np.array_equal(np.unique(touched), np.unique(ref_touched))
                assert np.array_equal(np.sort(promoted), np.sort(ref_promoted))
        reference = instances["dense"]
        for name, store in instances.items():
            assert store == reference, f"layout {name} diverged"

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_scatter_rows_external_source(self, kernel_path, n):
        rng = np.random.default_rng(7)
        instances = make_layouts(n)
        words = instances["dense"].words
        pool = rng.integers(0, 2**63, size=(8, words), dtype=np.uint64)
        src_idx = rng.integers(0, 8, 3 * n).astype(np.int64)
        receivers = rng.integers(0, n, 3 * n).astype(np.int64)
        for store in instances.values():
            store.scatter_rows(pool, src_idx, receivers)
        reference = instances["dense"]
        for name, store in instances.items():
            assert store == reference, f"layout {name} diverged"

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_element_mutators(self, kernel_path, n):
        rng = np.random.default_rng(13)
        instances = make_layouts(n)
        words = instances["dense"].words
        nodes = rng.integers(0, n, 10).astype(np.int64)
        message = int(rng.integers(0, n))
        extra_row = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        for store in instances.values():
            store.add(int(nodes[0]), message)
            store.add_many(nodes, message)
            store.union_into(int(nodes[1]), extra_row)
            store.union_from_node(int(nodes[2]), int(nodes[1]))
        reference = instances["dense"]
        for name, store in instances.items():
            assert store == reference, f"layout {name} diverged"
            assert store.total_known() == reference.total_known()
            assert np.array_equal(store.counts(), reference.counts())

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_row_queries_and_data_property(self, kernel_path, n):
        rng = np.random.default_rng(17)
        instances = make_layouts(n)
        for _ in range(3):
            senders, receivers = random_batch(rng, n, 2 * n)
            for store in instances.values():
                store.apply_transmissions(senders, receivers)
        reference = instances["dense"].data
        probe = rng.integers(0, n, 5).astype(np.int64)
        for store in instances.values():
            assert np.array_equal(store.data, reference)
            assert np.array_equal(store.rows(probe), reference[probe])
            assert np.array_equal(store.row(int(probe[0])), reference[probe[0]])
            assert np.array_equal(
                store.known_messages(int(probe[1])),
                np.flatnonzero(
                    np.unpackbits(
                        reference[probe[1]].view(np.uint8), bitorder="little"
                    )
                ),
            )

    def test_copy_is_independent(self):
        for name, store in make_layouts(40).items():
            clone = store.copy()
            assert clone == store
            clone.add(0, 5)
            assert not store.knows(0, 5), f"layout {name} copy aliases storage"


class TestCountMissingPinned:
    """Every layout's count_missing equals the plain masked dense scan."""

    def reference(self, store: KnowledgeStorage, mask, rows):
        dense = store.data
        return np.bitwise_count(mask[None, :] & ~dense[rows]).sum(
            axis=1, dtype=np.int64
        )

    @pytest.mark.parametrize("n", (BLOCK + 1, 3 * BLOCK + 5))
    @pytest.mark.parametrize("seed", range(3))
    def test_all_layouts(self, kernel_path, n, seed):
        rng = np.random.default_rng(seed)
        instances = make_layouts(n)
        for _ in range(3):
            senders, receivers = random_batch(rng, n, 2 * n)
            for store in instances.values():
                store.apply_transmissions(senders, receivers)
        words = instances["dense"].words
        mask = rng.integers(0, 2**63, size=words, dtype=np.uint64)
        rows = rng.integers(0, n, n // 2).astype(np.int64)
        for name, store in instances.items():
            got = store.count_missing(mask, rows)
            assert np.array_equal(got, self.reference(store, mask, rows)), name
        # Empty row list: a zero-length result, never an error.
        empty = np.zeros(0, dtype=np.int64)
        for store in instances.values():
            assert store.count_missing(mask, empty).size == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_frontier_active_word_counter(self, kernel_path, seed):
        # n past the frontier width gate so rows actually live in index form.
        n = 64 * 66
        rng = np.random.default_rng(40 + seed)
        fk = FrontierKnowledge(n)
        senders, receivers = random_batch(rng, n, n)
        fk.apply_transmissions(senders, receivers)
        assert fk.frontier_fraction() > 0.0  # the frontier path is exercised
        mask = fk.full_row_mask()
        rows = rng.integers(0, n, 200).astype(np.int64)
        got = fk.count_missing(mask, rows)
        assert np.array_equal(got, self.reference(fk, mask, rows))


class TestSparseMechanics:
    """Sparse-layout internals: growth, merge dedup, dense escape."""

    def test_capacity_growth_and_escape(self):
        n = 2 * BLOCK
        sk = SparseKnowledge(n, block_rows=BLOCK)
        km = KnowledgeMatrix(n)
        rng = np.random.default_rng(3)
        assert sk.sparse_fraction() == 1.0
        # Saturate node 0's row far past the escape threshold.
        for _ in range(6):
            messages = rng.integers(0, n, 8)
            for m in messages.tolist():
                sk.add(0, m)
                km.add(0, m)
            senders, receivers = random_batch(rng, n, 4 * n)
            sk.apply_transmissions(senders, receivers)
            km.apply_transmissions(senders, receivers)
        assert sk == km
        # Promotion assigns whole rows, escaping the target block to dense.
        full = km.full_row_mask()
        sk.assign_rows(np.asarray([1], dtype=np.int64), full)
        km.assign_rows(np.asarray([1], dtype=np.int64), full)
        assert sk == km
        assert sk.sparse_fraction() < 1.0

    def test_storage_floor_well_below_dense(self):
        n, m = 4096, 4096
        sk = SparseKnowledge(n, m)
        km = KnowledgeMatrix(n, m)
        # One pair per row vs a full n x words matrix.
        assert sk.storage_nbytes() < km.storage_nbytes() / 4


class TestLayoutRegistry:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "paged")
        assert layouts.resolve_layout() == "paged"
        with layouts.use("sparse"):
            assert layouts.resolve_layout() == "sparse"
            assert layouts.resolve_layout("dense") == "dense"  # explicit wins
        assert layouts.resolve_layout() == "paged"

    def test_invalid_layout_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            layouts.resolve_layout("mmap")
        with pytest.raises(ValueError):
            with layouts.use("bogus"):
                pass
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "nope")
        with pytest.raises(ValueError):
            layouts.resolve_layout()

    def test_auto_selection_follows_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_KNOWLEDGE_LAYOUT", raising=False)
        n = 512
        assert isinstance(layouts.make_knowledge(n), KnowledgeMatrix)
        # Shrink the budget below the dense estimate: auto must page.
        monkeypatch.setenv("REPRO_KNOWLEDGE_DENSE_BUDGET", "1024")
        assert isinstance(layouts.make_knowledge(n), PagedKnowledge)

    def test_estimates_are_ordered(self):
        n, m = 100_000, 100_000
        dense = layouts.estimate_bytes("dense", n, m)
        paged = layouts.estimate_bytes("paged", n, m)
        sparse = layouts.estimate_bytes("sparse", n, m)
        assert sparse < paged < dense
        # The paged layout halves the dense matrix+swap footprint.
        assert paged < 0.6 * dense

    def test_block_rows_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KNOWLEDGE_BLOCK", "33")
        pk = PagedKnowledge(100)
        assert pk.block_rows == 33
        assert pk.n_blocks == 4

    def test_protocols_pick_up_use_scope(self, small_paper_graph):
        from repro import PushPullGossip

        with layouts.use("paged"):
            result = PushPullGossip().run(small_paper_graph, rng=5)
        assert isinstance(result.knowledge, PagedKnowledge)
        assert result.completed


@pytest.mark.slow
class TestCrossLayoutTrajectoryParity:
    """Full protocol runs are layout- AND backend-invariant, bit for bit."""

    def _backend_matrix(self):
        yield "numpy", backends.NumpyBackend()
        if _ckernel.available():
            yield "c", backends.CSerialBackend()
            yield "c-threads[2]", backends.CThreadsBackend(
                max_threads=2, shard_work=1
            )

    @pytest.mark.parametrize("protocol_name", ["push-pull", "fast-gossiping", "memory"])
    def test_all_layouts_all_backends(
        self, small_paper_graph, protocol_name, monkeypatch
    ):
        from repro import FastGossiping, MemoryGossiping, PushPullGossip

        factory = {
            "push-pull": lambda: PushPullGossip(),
            "fast-gossiping": lambda: FastGossiping(),
            "memory": lambda: MemoryGossiping(leader=0),
        }[protocol_name]
        seed = {"push-pull": 21, "fast-gossiping": 22, "memory": 23}[protocol_name]
        # Small blocks so n = 256 spans several blocks per layout.
        monkeypatch.setenv("REPRO_KNOWLEDGE_BLOCK", "100")
        reference = None
        for layout in ("dense", "paged", "sparse"):
            for backend_label, backend in self._backend_matrix():
                with layouts.use(layout), backends.use(backend):
                    result = factory().run(small_paper_graph, rng=seed)
                summary = (result.rounds, result.completed, result.ledger.total())
                label = f"{layout}/{backend_label}"
                if reference is None:
                    reference = (summary, result.knowledge, label)
                else:
                    assert summary == reference[0], (
                        f"{protocol_name} trajectory diverged: "
                        f"{label} vs {reference[2]}"
                    )
                    assert result.knowledge == reference[1], (
                        f"{protocol_name} knowledge diverged: "
                        f"{label} vs {reference[2]}"
                    )
                    assert (
                        result.knowledge.fingerprint()
                        == reference[1].fingerprint()
                    )


# --------------------------------------------------------------------------- #
# Resume-from-store under the paged layout
# --------------------------------------------------------------------------- #
def _store_task(task):
    """Module-level (picklable) sweep task: one real push-pull run."""
    from repro import PushPullGossip, erdos_renyi
    from repro.graphs import paper_edge_probability

    n = task.params["n"]
    graph = erdos_renyi(n, paper_edge_probability(n), rng=task.seed,
                        require_connected=True)
    result = PushPullGossip().run(graph, rng=task.seed + 1)
    return {
        "n": n,
        "rounds": result.rounds,
        "completed": bool(result.completed),
        "transmissions": int(result.ledger.total()),
        "fingerprint": result.knowledge.fingerprint(),
    }


class TestPagedResumeFromStore:
    def _spec(self):
        from repro.experiments.scenarios import ScenarioSpec

        return ScenarioSpec(
            name="layout-resume",
            result_name="layout-resume",
            description="cross-layout resume test",
            task=_store_task,
            grid=lambda config: [(("n", n), {"n": n}) for n in (64, 96, 128)],
            group_by=("n",),
            metrics=("rounds",),
        )

    def test_resume_under_paged_layout_is_bit_identical(self, tmp_path, monkeypatch):
        from repro.experiments import run_scenario
        from repro.io.store import ResultStore

        config = SimpleNamespace(repetitions=2, seed=11, n_jobs=1)
        spec = self._spec()

        # Uninterrupted reference run under the dense layout.
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "dense")
        store_a = ResultStore(tmp_path / "a")
        result_a = run_scenario(spec, config=config, store=store_a)
        store_a.close()
        file_a = (tmp_path / "a" / "layout-resume.jsonl").read_bytes()

        # Kill after two complete records plus a truncated third, then resume
        # the remainder under the paged layout with small blocks.  The rounds,
        # transmissions and knowledge fingerprints of the re-run pairs must be
        # bit-identical, so the store file converges to the reference bytes.
        lines = file_a.splitlines(keepends=True)
        assert len(lines) == 6  # 3 sizes x 2 repetitions
        (tmp_path / "b").mkdir()
        (tmp_path / "b" / "layout-resume.jsonl").write_bytes(
            b"".join(lines[:2]) + lines[2][:40]
        )
        monkeypatch.setenv("REPRO_KNOWLEDGE_LAYOUT", "paged")
        monkeypatch.setenv("REPRO_KNOWLEDGE_BLOCK", "50")
        store_b = ResultStore(tmp_path / "b")
        result_b = run_scenario(spec, config=config, store=store_b, resume=True)
        store_b.close()

        assert (tmp_path / "b" / "layout-resume.jsonl").read_bytes() == file_a
        assert result_b.raw_records == result_a.raw_records
