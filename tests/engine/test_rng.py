"""Tests for repro.engine.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.rng import derive_seed, ensure_rng, make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1_000_000, size=10)
        b = make_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(make_rng(seq), np.random.Generator)

    def test_ensure_rng_alias(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(3, 5)
        assert len(children) == 5

    def test_zero_count(self):
        assert spawn_rngs(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(3, 2)
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_deterministic_from_int_seed(self):
        first = [g.integers(0, 1_000_000) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 1_000_000) for g in spawn_rngs(9, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 4)
        assert len(children) == 4

    def test_spawn_from_seed_sequence(self):
        children = spawn_rngs(np.random.SeedSequence(5), 4)
        assert len(children) == 4


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_depends_on_components(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 2, 4)

    def test_depends_on_base(self):
        assert derive_seed(1, 2, 3) != derive_seed(2, 2, 3)

    def test_none_base_maps_to_zero(self):
        assert derive_seed(None, 1) == derive_seed(0, 1)

    def test_result_in_range(self):
        seed = derive_seed(123, 4, 5, 6)
        assert 0 <= seed < 2**63 - 1
