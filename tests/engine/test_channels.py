"""Tests for repro.engine.channels (per-step channel bookkeeping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.channels import ChannelSet, open_channels
from repro.engine.rng import make_rng
from repro.graphs import complete_graph, erdos_renyi


@pytest.fixture(scope="module")
def graph():
    return complete_graph(32)


class TestOpenChannels:
    def test_every_node_opens_one_channel(self, graph):
        channels = open_channels(graph, make_rng(1))
        assert channels.num_channels() == graph.n
        assert np.all(channels.outgoing >= 0)

    def test_targets_are_neighbors(self, graph):
        channels = open_channels(graph, make_rng(2))
        for caller, target in zip(channels.callers.tolist(), channels.targets.tolist()):
            assert graph.has_edge(caller, target)
            assert caller != target

    def test_participants_subset(self, graph):
        participants = np.asarray([0, 5, 9])
        channels = open_channels(graph, make_rng(3), participants=participants)
        assert set(channels.callers.tolist()) <= {0, 5, 9}
        assert channels.outgoing[1] == -1

    def test_deterministic_given_seed(self, graph):
        a = open_channels(graph, make_rng(7))
        b = open_channels(graph, make_rng(7))
        assert np.array_equal(a.outgoing, b.outgoing)

    def test_alive_mask_excludes_failed_callees(self, graph):
        alive = np.ones(graph.n, dtype=bool)
        alive[3] = False
        channels = open_channels(graph, make_rng(4), alive=alive)
        assert 3 not in channels.callers.tolist()
        assert 3 not in channels.targets.tolist()

    def test_isolated_node_opens_nothing(self):
        # Two components: node 2 is isolated -> cannot open a channel.
        from repro.graphs.adjacency import Adjacency

        graph = Adjacency.from_edges(3, np.asarray([[0, 1]]))
        channels = open_channels(graph, make_rng(5))
        assert channels.outgoing[2] == -1
        assert 2 not in channels.callers.tolist()


class TestChannelSetViews:
    def test_incoming_counts_sum_to_channels(self, graph):
        channels = open_channels(graph, make_rng(6))
        counts = channels.incoming_counts()
        assert counts.sum() == channels.num_channels()

    def test_incoming_pairs_grouped_by_callee(self, graph):
        channels = open_channels(graph, make_rng(8))
        callees, callers = channels.incoming_pairs()
        assert callees.size == channels.num_channels()
        assert np.all(np.diff(callees) >= 0)
        # Each (callee, caller) pair corresponds to an opened channel.
        for callee, caller in zip(callees.tolist()[:10], callers.tolist()[:10]):
            assert channels.outgoing[caller] == callee

    def test_channels_into(self, graph):
        channels = open_channels(graph, make_rng(9))
        node = int(channels.targets[0])
        into = channels.channels_into(node)
        assert all(channels.outgoing[c] == node for c in into.tolist())
        assert into.size == channels.incoming_counts()[node]

    def test_has_outgoing(self, graph):
        channels = open_channels(graph, make_rng(10), participants=np.asarray([4]))
        assert channels.has_outgoing(4)
        assert not channels.has_outgoing(5)

    def test_empty_channel_set(self):
        from repro.graphs.adjacency import Adjacency

        graph = Adjacency.from_edges(2, np.asarray([[0, 1]]))
        channels = open_channels(graph, make_rng(11), participants=np.asarray([], dtype=np.int64))
        assert channels.num_channels() == 0
        callees, callers = channels.incoming_pairs()
        assert callees.size == 0 and callers.size == 0


class TestOnRandomGraph:
    def test_incoming_roughly_balanced(self):
        graph = erdos_renyi(500, expected_degree=60, rng=1, require_connected=True)
        channels = open_channels(graph, make_rng(12))
        counts = channels.incoming_counts()
        # Balls-into-bins: the maximum number of incoming channels stays small.
        assert counts.max() <= 12
        assert counts.sum() == channels.num_channels()
