"""Tests for repro.engine.failures (crash-failure plans)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.failures import NO_FAILURES, FailurePlan, sample_uniform_failures


class TestFailurePlan:
    def test_no_failures_constant(self):
        assert NO_FAILURES.is_empty()
        assert NO_FAILURES.count == 0
        assert NO_FAILURES.alive_mask(5).all()

    def test_deduplication_and_sorting(self):
        plan = FailurePlan(failed=np.asarray([3, 1, 3, 2]))
        assert plan.failed.tolist() == [1, 2, 3]
        assert plan.count == 3

    def test_alive_mask(self):
        plan = FailurePlan(failed=np.asarray([0, 4]))
        mask = plan.alive_mask(6)
        assert mask.tolist() == [False, True, True, True, False, True]

    def test_alive_mask_out_of_range(self):
        plan = FailurePlan(failed=np.asarray([10]))
        with pytest.raises(ValueError):
            plan.alive_mask(5)

    def test_applies_at(self):
        plan = FailurePlan(failed=np.asarray([1]), inject_at="before_gather")
        assert plan.applies_at("before_gather")
        assert not plan.applies_at("start")
        assert not NO_FAILURES.applies_at("before_gather")

    def test_unknown_injection_point_rejected_at_construction(self):
        from repro.engine.failures import KNOWN_INJECTION_POINTS

        with pytest.raises(ValueError, match="unknown injection point"):
            FailurePlan(failed=np.asarray([1]), inject_at="mid-broadcast")
        for point in KNOWN_INJECTION_POINTS:
            FailurePlan(failed=np.asarray([1]), inject_at=point)


class TestSampling:
    def test_count_and_range(self):
        plan = sample_uniform_failures(100, 10, rng=1)
        assert plan.count == 10
        assert plan.failed.min() >= 0 and plan.failed.max() < 100

    def test_zero_count(self):
        plan = sample_uniform_failures(10, 0, rng=1)
        assert plan.is_empty()

    def test_negative_count(self):
        with pytest.raises(ValueError, match=r"\[0, n_nodes"):
            sample_uniform_failures(10, -1, rng=1)

    def test_too_many(self):
        with pytest.raises(ValueError, match=r"\[0, n_nodes"):
            sample_uniform_failures(10, 11, rng=1)

    def test_negative_n_nodes(self):
        with pytest.raises(ValueError, match="n_nodes"):
            sample_uniform_failures(-1, 0, rng=1)

    def test_unknown_injection_point(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            sample_uniform_failures(10, 2, rng=1, inject_at="mid-broadcast")

    def test_protected_nodes_never_fail(self):
        for seed in range(5):
            plan = sample_uniform_failures(20, 15, rng=seed, protect=[0, 1])
            assert 0 not in plan.failed.tolist()
            assert 1 not in plan.failed.tolist()

    def test_protection_reduces_capacity(self):
        with pytest.raises(ValueError):
            sample_uniform_failures(10, 10, rng=1, protect=[0])

    def test_deterministic(self):
        a = sample_uniform_failures(50, 7, rng=3)
        b = sample_uniform_failures(50, 7, rng=3)
        assert np.array_equal(a.failed, b.failed)

    def test_inject_at_recorded(self):
        plan = sample_uniform_failures(10, 2, rng=1, inject_at="start")
        assert plan.inject_at == "start"

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=200),
        st.data(),
    )
    def test_property_distinct_and_alive_consistency(self, n, data):
        count = data.draw(st.integers(min_value=0, max_value=n))
        plan = sample_uniform_failures(n, count, rng=data.draw(st.integers(0, 1000)))
        # Failures are distinct.
        assert len(set(plan.failed.tolist())) == plan.count == count
        # Alive mask is the complement.
        mask = plan.alive_mask(n)
        assert int((~mask).sum()) == count
        assert set(np.flatnonzero(~mask).tolist()) == set(plan.failed.tolist())
