"""Tests for the single-message broadcasting baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.broadcast import (
    AgeBasedBroadcast,
    BroadcastResult,
    PullBroadcast,
    PushBroadcast,
    PushPullBroadcast,
)
from repro.engine import MessageAccounting
from repro.graphs import complete_graph, erdos_renyi, hypercube, paper_edge_probability


@pytest.fixture(scope="module")
def sparse_graph():
    n = 512
    return erdos_renyi(n, paper_edge_probability(n), rng=11, require_connected=True)


@pytest.fixture(scope="module")
def dense_graph():
    return complete_graph(256)


ALL_PROTOCOLS = [PushBroadcast, PullBroadcast, PushPullBroadcast, AgeBasedBroadcast]


class TestCompletion:
    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_completes_on_sparse_graph(self, protocol_cls, sparse_graph):
        result = protocol_cls().run(sparse_graph, source=0, rng=1)
        assert result.completed
        assert result.state.is_complete()

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_completes_on_complete_graph(self, protocol_cls, dense_graph):
        result = protocol_cls().run(dense_graph, source=5, rng=2)
        assert result.completed
        assert result.state.informed_at[5] == 0

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_deterministic(self, protocol_cls, sparse_graph):
        a = protocol_cls().run(sparse_graph, rng=3)
        b = protocol_cls().run(sparse_graph, rng=3)
        assert a.rounds == b.rounds
        assert a.total_messages() == b.total_messages()

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_requires_two_nodes(self, protocol_cls):
        with pytest.raises(ValueError):
            protocol_cls().run(complete_graph(1), rng=1)


class TestPush:
    def test_rounds_logarithmic(self, dense_graph):
        result = PushBroadcast().run(dense_graph, rng=4)
        n = dense_graph.n
        # Pittel: log2 n + ln n + O(1).
        assert result.rounds <= math.log2(n) + math.log(n) + 10
        assert result.rounds >= math.log2(n) - 1

    def test_transmissions_grow_with_informed_set(self, dense_graph):
        result = PushBroadcast().run(dense_graph, rng=5, record_trace=True)
        # Total pushes equal the sum of informed nodes over all rounds.
        informed_series = [r.fully_informed_nodes for r in result.trace.records]
        expected = 1 + sum(informed_series[:-1])
        assert result.ledger.total(MessageAccounting.PUSHES) == expected

    def test_abort_bound(self):
        result = PushBroadcast(max_rounds_factor=0.1).run(hypercube(8), rng=6)
        assert not result.completed


class TestPull:
    def test_uninformed_callers_only_mode(self, dense_graph):
        result = PullBroadcast().run(dense_graph, rng=7)
        # Opens are charged to uninformed nodes only, so the total number of
        # opens shrinks as the informed set grows.
        assert result.ledger.total(MessageAccounting.OPENS) > 0
        assert result.completed

    def test_all_callers_mode(self, dense_graph):
        result = PullBroadcast(callers="all").run(dense_graph, rng=8)
        assert result.completed
        assert result.ledger.total(MessageAccounting.OPENS) == dense_graph.n * result.rounds

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PullBroadcast(callers="bogus")

    def test_pull_packets_attributed_to_informed(self, dense_graph):
        result = PullBroadcast().run(dense_graph, rng=9)
        assert result.ledger.total(MessageAccounting.PULLS) >= dense_graph.n - 1


class TestPushPull:
    def test_faster_than_push_alone(self, dense_graph):
        push = PushBroadcast().run(dense_graph, rng=10)
        both = PushPullBroadcast().run(dense_graph, rng=10)
        assert both.rounds <= push.rounds

    def test_rumor_packet_counting_mode(self, dense_graph):
        only_rumor = PushPullBroadcast(count_only_rumor_packets=True).run(dense_graph, rng=11)
        every_packet = PushPullBroadcast(count_only_rumor_packets=False).run(
            dense_graph, rng=11
        )
        assert only_rumor.total_messages() < every_packet.total_messages()

    def test_summary(self, dense_graph):
        summary = PushPullBroadcast().run(dense_graph, rng=12).summary()
        assert summary["completed"]
        assert summary["informed"] == dense_graph.n


class TestAgeBased:
    def test_quench_age_formula(self):
        proto = AgeBasedBroadcast(quench_constant=4.0)
        n = 2**16
        assert proto.quench_age(n) == math.ceil(math.log(n, 3) + 4 * 4)

    def test_messages_per_node_small_on_complete_graph(self, dense_graph):
        """Karp et al.: O(log log n) per node on the complete graph."""
        result = AgeBasedBroadcast().run(dense_graph, rng=13)
        assert result.completed
        n = dense_graph.n
        assert result.messages_per_node() <= 3 * math.log2(math.log2(n)) + 3

    def test_extras_contain_quench_age(self, dense_graph):
        result = AgeBasedBroadcast().run(dense_graph, rng=14)
        assert result.extras["quench_age"] == AgeBasedBroadcast().quench_age(dense_graph.n)

    def test_trace(self, sparse_graph):
        result = AgeBasedBroadcast().run(sparse_graph, rng=15, record_trace=True)
        assert result.trace is not None
        curve = result.trace.coverage_curve()
        assert curve[-1] == pytest.approx(1.0)
        assert np.all(np.diff(curve) >= 0)
