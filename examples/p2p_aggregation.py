#!/usr/bin/env python
"""Peer-to-peer aggregation: leader election + gossiping to compute aggregates.

Peer-to-peer systems (the paper cites Gnutella/JXTA-style overlays) need
decentralised aggregate computation — e.g. the average load, the minimum free
capacity, or the total object count across peers.  Once gossiping completes,
every peer knows every peer's value and can evaluate any aggregate locally;
this is the "aggregate computation" application discussed in the paper's
introduction (cf. Chen & Pandurangan, Kempe et al.).

This example:

1. builds a random-regular overlay (every peer maintains the same number of
   connections, as structured P2P overlays do),
2. elects a coordinator with Algorithm 3 (no peer knows the topology),
3. runs the memory-model gossiping protocol with the elected leader,
4. lets every peer compute min / mean / max of all peer values locally and
   verifies all peers agree.

Run with::

    python examples/p2p_aggregation.py [n_peers]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import LeaderElection, MemoryGossiping, random_regular
from repro.core import LeaderElectionParameters
from repro.io import format_table


def main(n_peers: int = 512, seed: int = 23) -> None:
    """Elect a coordinator and aggregate peer values over the overlay."""
    degree = max(8, int(np.log2(n_peers) ** 2 // 2) * 2)
    overlay = random_regular(n_peers, min(degree, n_peers - 2), rng=seed, require_connected=True)
    rng = np.random.default_rng(seed)
    peer_load = rng.uniform(0.0, 100.0, size=n_peers)
    print(
        f"Overlay: {n_peers} peers, ~{overlay.mean_degree():.0f}-regular, "
        f"true mean load {peer_load.mean():.2f}\n"
    )

    # Step 1: decentralised leader election (Algorithm 3).
    election = LeaderElection(LeaderElectionParameters()).run(overlay, rng=seed + 1)
    print(
        f"Leader election: {election.candidates.size} candidates, "
        f"leader = peer {election.leader}, unique = {election.unique}, "
        f"{election.messages_per_node():.2f} packets/peer"
    )

    # Step 2: gossip every peer's value to every peer (Algorithm 2).
    gossip = MemoryGossiping(leader=election.leader).run(overlay, rng=seed + 2)
    print(
        f"Gossiping: completed = {gossip.completed}, {gossip.rounds} rounds, "
        f"{gossip.messages_per_node():.2f} packets/peer\n"
    )

    # Step 3: every peer evaluates the aggregates locally from the messages it
    # knows; with completed gossiping all peers agree on the exact values.
    knowledge = gossip.knowledge
    sample_peers = rng.choice(n_peers, size=min(5, n_peers), replace=False)
    rows = []
    for peer in sorted(int(p) for p in sample_peers):
        known = knowledge.known_messages(peer)
        values = peer_load[known]
        rows.append(
            [
                peer,
                known.size,
                round(float(values.min()), 2),
                round(float(values.mean()), 2),
                round(float(values.max()), 2),
            ]
        )
    print(
        format_table(
            ["peer", "known values", "min", "mean", "max"],
            rows,
            title="Locally computed aggregates (sampled peers)",
        )
    )
    print()
    exact = (round(float(peer_load.min()), 2), round(float(peer_load.mean()), 2),
             round(float(peer_load.max()), 2))
    print(f"Exact aggregates: min={exact[0]}, mean={exact[1]}, max={exact[2]}")
    agree = all(tuple(row[2:]) == exact for row in rows)
    print(f"All sampled peers agree with the exact aggregates: {agree}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    main(size)
