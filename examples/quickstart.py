#!/usr/bin/env python
"""Quickstart: compare the three gossiping protocols on one random graph.

Builds the paper's topology ``G(n, log^2 n / n)``, runs plain push–pull
(Algorithm 4), fast-gossiping (Algorithm 1) and the memory model
(Algorithm 2), and prints the round and per-node message costs side by side —
a one-graph slice of the paper's Figure 1.

Run with::

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import FastGossiping, MemoryGossiping, PushPullGossip, erdos_renyi
from repro.engine import MessageAccounting
from repro.graphs import paper_edge_probability, profile_graph
from repro.io import format_table


def main(n: int = 1024, seed: int = 7) -> None:
    """Run the comparison on a graph of ``n`` nodes."""
    p = paper_edge_probability(n)
    graph = erdos_renyi(n, p, rng=seed, require_connected=True)
    profile = profile_graph(graph, rng=seed, spectral=(n <= 4096))
    print(f"Topology: G(n={n}, p=log^2 n / n = {p:.4f})")
    print(
        f"  mean degree {profile.degrees.mean:.1f}, "
        f"diameter ~{profile.diameter_estimate}, "
        f"spectral gap {profile.spectral_gap if profile.spectral_gap is None else round(profile.spectral_gap, 3)}"
    )
    print()

    protocols = [
        ("push-pull (Alg. 4)", PushPullGossip()),
        ("fast-gossiping (Alg. 1)", FastGossiping()),
        ("memory model (Alg. 2)", MemoryGossiping(leader=0)),
    ]
    rows = []
    for label, protocol in protocols:
        result = protocol.run(graph, rng=seed + 1)
        rows.append(
            [
                label,
                result.completed,
                result.rounds,
                round(result.messages_per_node(MessageAccounting.PACKETS), 2),
                round(result.messages_per_node(MessageAccounting.OPENS), 2),
                round(
                    result.messages_per_node(MessageAccounting.OPENS_AND_PACKETS), 2
                ),
            ]
        )
    print(
        format_table(
            ["protocol", "completed", "rounds", "packets/node", "opens/node", "strict/node"],
            rows,
            title="Gossiping cost comparison (one run each)",
        )
    )
    print()
    print(
        "Expected shape (paper, Figure 1): push-pull highest and growing with n,\n"
        "fast-gossiping below it, memory model bounded by a small constant."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    main(size)
