#!/usr/bin/env python
"""Replicated-database scenario: keeping replicas consistent by gossiping.

The random phone call model was introduced by Demers et al. and analysed by
Karp et al. for exactly this application: a cluster of database replicas in
which every replica keeps receiving local updates, and all updates must reach
all replicas.  This example models one anti-entropy cycle:

1. every replica holds its own fresh batch of updates (its original message),
2. a gossiping protocol disseminates all batches to all replicas,
3. each replica applies the union and all replicas end up with identical state.

We compare plain push–pull anti-entropy against the paper's memory-model
protocol, including behaviour under crashed replicas.

Run with::

    python examples/replicated_database.py [n_replicas]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    MemoryGossiping,
    PushPullGossip,
    erdos_renyi,
    sample_uniform_failures,
)
from repro.core import tuned_memory_gossiping
from repro.graphs import paper_edge_probability
from repro.io import format_table


def replica_states_consistent(result) -> bool:
    """All replicas hold the same set of update batches."""
    counts = result.knowledge.counts()
    return bool(np.all(counts == result.knowledge.n_messages))


def main(n_replicas: int = 512, seed: int = 11) -> None:
    """Run one anti-entropy cycle over ``n_replicas`` replicas."""
    graph = erdos_renyi(
        n_replicas,
        paper_edge_probability(n_replicas),
        rng=seed,
        require_connected=True,
    )
    print(f"Cluster: {n_replicas} replicas, sparse overlay with mean degree "
          f"{graph.mean_degree():.1f}\n")

    rows = []

    # Plain anti-entropy: every replica gossips every round (push-pull).
    push_pull = PushPullGossip().run(graph, rng=seed + 1)
    rows.append(
        [
            "push-pull anti-entropy",
            push_pull.rounds,
            round(push_pull.messages_per_node(), 2),
            replica_states_consistent(push_pull),
        ]
    )

    # Memory-model protocol: a coordinator gathers and redistributes updates.
    memory = MemoryGossiping(leader=0).run(graph, rng=seed + 2)
    rows.append(
        [
            "memory model (coordinator)",
            memory.rounds,
            round(memory.messages_per_node(), 2),
            replica_states_consistent(memory),
        ]
    )

    # The same cycle with a few crashed replicas (before the gather phase).
    crashed = max(1, n_replicas // 50)
    failures = sample_uniform_failures(n_replicas, crashed, rng=seed + 3, protect=[0])
    robust = MemoryGossiping(
        tuned_memory_gossiping().with_overrides(num_trees=3), leader=0
    ).run(graph, rng=seed + 4, failures=failures)
    rows.append(
        [
            f"memory model, {crashed} crashed replicas",
            robust.rounds,
            round(robust.messages_per_node(), 2),
            robust.completed,
        ]
    )
    lost = robust.extras["lost_messages"]

    print(
        format_table(
            ["strategy", "rounds", "packets/replica", "replicas consistent"],
            rows,
            title="One anti-entropy cycle",
        )
    )
    print()
    print(
        f"With {crashed} crashed replicas the coordinator still gathered every "
        f"healthy replica's updates except {lost} "
        f"(additional losses beyond the crashed replicas themselves)."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    main(size)
