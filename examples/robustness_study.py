#!/usr/bin/env python
"""Robustness study: how many messages survive crashed nodes? (Figures 2/3/5.)

Reproduces a laptop-sized slice of the paper's robustness experiments: the
memory-model protocol builds three independent communication trees, a varying
number of nodes crash right before the gathering phase, and we measure how
many *healthy* nodes' original messages nevertheless fail to reach the leader.

Run with::

    python examples/robustness_study.py [n] [repetitions]
"""

from __future__ import annotations

import sys

from repro.experiments import RobustnessConfig, RobustnessDetailConfig, run_figure2, run_figure5
from repro.io import format_records


def main(n: int = 1024, repetitions: int = 3) -> None:
    """Run the Figure 2-style ratio sweep and the Figure 5-style exceedance sweep."""
    ratio_config = RobustnessConfig(
        size=n,
        failed_fractions=(0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
        repetitions=repetitions,
    )
    ratio = run_figure2(ratio_config)
    print(
        ratio.to_table(
            ("n", "failed", "failed_fraction", "additional_lost", "loss_ratio"),
            title="Additional lost messages per failed node (Figure 2 style)",
        )
    )
    print()

    detail_config = RobustnessDetailConfig(
        sizes=(n,),
        failed_fractions=(0.05, 0.2, 0.4),
        thresholds=(0, 10, 100),
        repetitions=repetitions,
    )
    detail = run_figure5(detail_config)
    print(
        format_records(
            detail.rows,
            ("n", "failed", "exceed_T0", "exceed_T10", "exceed_T100"),
            title="Fraction of runs losing more than T extra messages (Figure 5 style)",
        )
    )
    print()
    print(
        "Paper's qualitative finding: losses stay negligible until a large\n"
        "fraction of the network fails; the three independent trees provide\n"
        "enough redundancy for small failure counts."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    reps = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(size, reps)
