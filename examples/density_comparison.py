#!/usr/bin/env python
"""Density comparison: does graph density influence randomized gossiping?

The paper's title question.  For broadcasting it is known that sparse random
graphs are strictly worse than complete graphs w.r.t. message complexity; the
paper's thesis is that for gossiping they are not.  This example measures both
sides on the same pair of topologies:

* single-message age-quenched push–pull *broadcasting* (Karp et al. style) —
  cheap on the complete graph, noticeably more expensive on the sparse graph,
* memory-model *gossiping* — essentially the same small constant per node on
  both topologies.

Run with::

    python examples/density_comparison.py [n]
"""

from __future__ import annotations

import sys

from repro import MemoryGossiping, complete_graph, erdos_renyi
from repro.broadcast import AgeBasedBroadcast
from repro.graphs import paper_edge_probability
from repro.io import format_table


def main(n: int = 1024, seed: int = 31) -> None:
    """Compare broadcasting and gossiping costs on sparse vs complete graphs."""
    sparse = erdos_renyi(n, paper_edge_probability(n), rng=seed, require_connected=True)
    dense = complete_graph(n)
    print(
        f"Topologies: G(n={n}, log^2 n/n) with mean degree "
        f"{sparse.mean_degree():.1f} vs complete graph K_{n}\n"
    )

    rows = []
    for label, graph in (("sparse random", sparse), ("complete", dense)):
        broadcast = AgeBasedBroadcast().run(graph, source=0, rng=seed + 1)
        rows.append(
            [
                "broadcast (single message)",
                label,
                broadcast.rounds,
                round(broadcast.messages_per_node(), 2),
                broadcast.completed,
            ]
        )
    for label, graph in (("sparse random", sparse), ("complete", dense)):
        gossip = MemoryGossiping(leader=0).run(graph, rng=seed + 2)
        rows.append(
            [
                "gossiping (memory model)",
                label,
                gossip.rounds,
                round(gossip.messages_per_node(), 2),
                gossip.completed,
            ]
        )
    print(
        format_table(
            ["task", "topology", "rounds", "packets/node", "completed"],
            rows,
            title="Influence of density: broadcasting vs gossiping",
        )
    )
    print()
    print(
        "Expected: the broadcasting cost is visibly higher on the sparse graph\n"
        "than on the complete graph, while the gossiping cost barely moves —\n"
        "the separation the paper's title refers to."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    main(size)
