"""Command-line interface of the reproduction library.

Installed as ``python -m repro``; four subcommands cover the common workflows:

``run``
    Execute one gossiping protocol on a freshly sampled graph and print the
    cost summary (optionally as JSON).

``experiment``
    Run one of the named experiments (``figure1`` … ``figure5``, ``table1``,
    ``density``, ``broadcast``, ``parameters``, ``redundancy``, ``election``)
    at the quick laptop scale, print the reproduced rows and optionally an
    ASCII rendition of the figure, and persist the rows to a directory.

``table1``
    Print the paper's Table 1 constants resolved for the given sizes.

``graph-info``
    Sample a graph from a spec and print its structural profile (degrees,
    connectivity, spectral gap, conductance, distance estimates).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .analysis.ascii_plot import plot_experiment_rows
from .core import (
    FastGossiping,
    LeaderElection,
    MemoryGossiping,
    PushPullGossip,
    table1_rows,
)
from .engine import MessageAccounting
from .experiments import (
    BroadcastAblationConfig,
    DensitySweepConfig,
    LeaderElectionConfig,
    ParameterAblationConfig,
    RobustnessConfig,
    RobustnessDetailConfig,
    SizeSweepConfig,
    run_broadcast_ablation,
    run_density_sweep,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_leader_election_cost,
    run_parameter_ablation,
    run_redundancy_ablation,
    run_table1,
)
from .graphs import GraphSpec, make_graph, paper_edge_probability, profile_graph
from .io import format_table, save_json, to_jsonable

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized gossiping on random graphs (Elsässer & Kaaser, IPDPS'15).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one gossiping protocol")
    run_parser.add_argument(
        "--protocol",
        choices=("push-pull", "fast-gossiping", "memory"),
        default="fast-gossiping",
        help="gossiping protocol to execute",
    )
    run_parser.add_argument("--nodes", "-n", type=int, default=1024, help="graph size")
    run_parser.add_argument(
        "--graph",
        choices=("erdos_renyi", "random_regular", "complete", "hypercube", "power_law"),
        default="erdos_renyi",
        help="graph family",
    )
    run_parser.add_argument(
        "--expected-degree",
        type=float,
        default=None,
        help="expected degree (defaults to the paper's log^2 n)",
    )
    run_parser.add_argument("--seed", type=int, default=1, help="random seed")
    run_parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    run_parser.set_defaults(func=_cmd_run)

    experiment_parser = subparsers.add_parser("experiment", help="run a named experiment")
    experiment_parser.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS),
        help="experiment to run (paper figure/table or extension)",
    )
    experiment_parser.add_argument(
        "--output", default=None, help="directory to persist the result rows into"
    )
    experiment_parser.add_argument(
        "--plot", action="store_true", help="render an ASCII plot of the main series"
    )
    experiment_parser.add_argument("--seed", type=int, default=None, help="override base seed")
    experiment_parser.set_defaults(func=_cmd_experiment)

    table_parser = subparsers.add_parser("table1", help="print Table 1 constants")
    table_parser.add_argument(
        "sizes", nargs="*", type=int, default=[1024, 65536, 10**6], help="graph sizes"
    )
    table_parser.set_defaults(func=_cmd_table1)

    info_parser = subparsers.add_parser("graph-info", help="profile a sampled graph")
    info_parser.add_argument("--nodes", "-n", type=int, default=1024, help="graph size")
    info_parser.add_argument(
        "--graph",
        choices=("erdos_renyi", "random_regular", "complete", "hypercube", "power_law"),
        default="erdos_renyi",
        help="graph family",
    )
    info_parser.add_argument("--expected-degree", type=float, default=None)
    info_parser.add_argument("--seed", type=int, default=1)
    info_parser.set_defaults(func=_cmd_graph_info)

    return parser


def _graph_spec(kind: str, n: int, expected_degree: Optional[float]) -> GraphSpec:
    """Build a GraphSpec from CLI arguments."""
    if kind == "erdos_renyi":
        params = {
            "p": (
                paper_edge_probability(n)
                if expected_degree is None
                else min(1.0, expected_degree / max(n - 1, 1))
            ),
            "require_connected": True,
        }
        return GraphSpec("erdos_renyi", n, params)
    if kind == "random_regular":
        degree = int(expected_degree or max(4, round(paper_edge_probability(n) * (n - 1))))
        if (degree * n) % 2:
            degree += 1
        return GraphSpec("random_regular", n, {"d": degree, "require_connected": True})
    if kind == "power_law":
        return GraphSpec("power_law", n, {"exponent": 2.5})
    return GraphSpec(kind, n)


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    spec = _graph_spec(args.graph, args.nodes, args.expected_degree)
    graph = make_graph(spec, rng=args.seed)
    protocols = {
        "push-pull": PushPullGossip(),
        "fast-gossiping": FastGossiping(),
        "memory": MemoryGossiping(leader=0),
    }
    protocol = protocols[args.protocol]
    result = protocol.run(graph, rng=args.seed + 1)
    summary = result.summary()
    summary["graph"] = spec.describe()
    if args.json:
        print(json.dumps(to_jsonable(summary), indent=2, sort_keys=True))
    else:
        rows = [
            ["graph", spec.describe()],
            ["protocol", result.protocol],
            ["completed", result.completed],
            ["rounds", result.rounds],
            ["packets/node", round(result.messages_per_node(MessageAccounting.PACKETS), 3)],
            ["opens/node", round(result.messages_per_node(MessageAccounting.OPENS), 3)],
            ["strict cost/node", round(result.messages_per_node(MessageAccounting.OPENS_AND_PACKETS), 3)],
        ]
        print(format_table(["field", "value"], rows, title="Gossiping run"))
    return 0 if result.completed else 1


#: Experiment registry: name -> (runner, kwargs factory, plot settings).
_EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "figure1": {
        "run": lambda seed: run_figure1(
            SizeSweepConfig(sizes=(256, 512, 1024, 2048), repetitions=2, seed=seed or 20150525)
        ),
        "plot": {"x": "n", "y": "messages_per_node", "group_by": "protocol", "log_x": True},
    },
    "figure2": {
        "run": lambda seed: run_figure2(
            RobustnessConfig(size=1024, repetitions=2, seed=seed or 20150526)
        ),
        "plot": {"x": "failed", "y": "loss_ratio", "group_by": None, "log_x": False},
    },
    "figure3": {
        "run": lambda seed: run_figure3(
            RobustnessConfig(size=512, repetitions=2, seed=seed or 20150526), sizes=(512, 1024)
        ),
        "plot": {"x": "failed", "y": "loss_ratio", "group_by": "n", "log_x": False},
    },
    "figure4": {
        "run": lambda seed: run_figure4(),
        "plot": {"x": "n", "y": "messages_per_node", "group_by": None, "log_x": True},
    },
    "figure5": {
        "run": lambda seed: run_figure5(
            RobustnessDetailConfig(sizes=(512, 1024), repetitions=3, seed=seed or 20150527)
        ),
        "plot": {"x": "failed", "y": "exceed_T0", "group_by": "n", "log_x": False},
    },
    "table1": {"run": lambda seed: run_table1(), "plot": None},
    "density": {
        "run": lambda seed: run_density_sweep(
            DensitySweepConfig(size=512, repetitions=2, seed=seed or 20150528)
        ),
        "plot": {"x": "expected_degree", "y": "messages_per_node", "group_by": "protocol", "log_x": True},
    },
    "broadcast": {
        "run": lambda seed: run_broadcast_ablation(
            BroadcastAblationConfig(sizes=(256, 512, 1024), repetitions=2, seed=seed or 20150529)
        ),
        "plot": {"x": "n", "y": "messages_per_node", "group_by": "task", "log_x": True},
    },
    "parameters": {
        "run": lambda seed: run_parameter_ablation(
            ParameterAblationConfig(size=512, repetitions=2, seed=seed or 20150530)
        ),
        "plot": None,
    },
    "redundancy": {
        "run": lambda seed: run_redundancy_ablation(
            RobustnessConfig(size=1024, failed_fractions=(0.0, 0.1, 0.3), repetitions=2, seed=seed or 20150532)
        ),
        "plot": {"x": "failed", "y": "loss_ratio", "group_by": "gather_contacts", "log_x": False},
    },
    "election": {
        "run": lambda seed: run_leader_election_cost(
            LeaderElectionConfig(sizes=(256, 512, 1024), repetitions=2, seed=seed or 20150531)
        ),
        "plot": {"x": "n", "y": "messages_per_node", "group_by": "variant", "log_x": True},
    },
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    entry = _EXPERIMENTS[args.name]
    result = entry["run"](args.seed)  # type: ignore[operator]
    print(result.to_table())
    plot_spec = entry.get("plot")
    if args.plot and plot_spec:
        print()
        print(
            plot_experiment_rows(
                result.rows,
                x=plot_spec["x"],
                y=plot_spec["y"],
                group_by=plot_spec["group_by"],
                log_x=plot_spec["log_x"],
                title=result.description,
            )
        )
    if args.output:
        paths = result.save(args.output)
        print()
        for label, path in paths.items():
            print(f"saved {label}: {path}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    for n in args.sizes:
        resolved = table1_rows(int(n))
        print(f"\nTable 1 constants for n = {n}")
        for algorithm, values in resolved.items():
            rows = [[key, value] for key, value in values.items() if key != "n"]
            print(format_table(["parameter", "value"], rows, title=algorithm))
    return 0


def _cmd_graph_info(args: argparse.Namespace) -> int:
    spec = _graph_spec(args.graph, args.nodes, args.expected_degree)
    graph = make_graph(spec, rng=args.seed)
    profile = profile_graph(graph, rng=args.seed, spectral=(graph.n <= 4096))
    rows = [[key, value] for key, value in profile.as_dict().items()]
    print(format_table(["property", "value"], rows, title=spec.describe()))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
