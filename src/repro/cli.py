"""Command-line interface of the reproduction library.

Installed as ``python -m repro``; the subcommands cover the common workflows:

``run``
    Execute one gossiping protocol on a freshly sampled graph and print the
    cost summary (optionally as JSON).

``scenarios``
    The scenario registry front-end: ``scenarios list`` shows every
    registered experiment scenario; ``scenarios run`` executes one or more of
    them through the resumable, *supervised* sweep engine (``--jobs`` for
    process parallelism, ``--out`` for the on-disk result store + exports,
    ``--resume`` to skip already-persisted (configuration, repetition) pairs
    after an interruption, ``--smoke`` for the tiny CI scale).  Sweeps are
    fault tolerant: failing tasks are retried with seeded backoff
    (``--max-retries``), hung tasks are reaped (``--timeout``), dead worker
    pools are respawned, and permanently failing configurations are
    quarantined — the command prints a supervision report and exits with
    code 3 when any configuration was quarantined.  ``--chaos kill=1,error=1``
    injects deterministic faults for drills (see ``docs/robustness.md``);
    Ctrl-C flushes the store and prints the exact resume command.

``experiment``
    Legacy alias: run one named scenario at the quick laptop scale, print the
    reproduced rows and optionally an ASCII rendition of the figure, and
    persist the rows to a directory.

``results``
    Query a result store without re-scanning JSONL: ``results query`` lists
    completed records with equality filters, ``results stats`` prints
    per-metric statistics (count/mean/std/min/max/percentiles) or grouped
    aggregates, and ``results rebuild`` re-derives the SQLite query index
    from the JSONL source of truth (see ``docs/caching.md``).

``table1``
    Print the paper's Table 1 constants resolved for the given sizes.

``graph-info``
    Sample a graph from a spec and print its structural profile (degrees,
    connectivity, spectral gap, conductance, distance estimates).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .analysis import RetryPolicy
from .core import (
    CLOCKS,
    FastGossiping,
    LeaderElection,
    MemoryGossiping,
    PushPullGossip,
    PushSumGossip,
    table1_rows,
)
from .engine import MessageAccounting
from .engine.chaos import FAULT_KINDS, ChaosSpec, parse_chaos_counts
from .experiments import (
    all_scenarios,
    get_scenario,
    resolve_config,
    run_scenario,
    scenario_names,
    scenario_plot,
)
from .graphs import GraphSpec, make_graph, paper_edge_probability, profile_graph
from .io import ResultStore, format_records, format_table, save_json, to_jsonable

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Randomized gossiping on random graphs (Elsässer & Kaaser, IPDPS'15).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one gossiping protocol")
    run_parser.add_argument(
        "--protocol",
        choices=("push-pull", "fast-gossiping", "memory", "push-sum"),
        default="fast-gossiping",
        help="gossiping protocol to execute",
    )
    run_parser.add_argument(
        "--clock",
        choices=CLOCKS,
        default="sync",
        help="execution clock: synchronous rounds or continuous-time "
        "Poisson wakeups (push-pull and push-sum only)",
    )
    run_parser.add_argument("--nodes", "-n", type=int, default=1024, help="graph size")
    run_parser.add_argument(
        "--graph",
        choices=("erdos_renyi", "random_regular", "complete", "hypercube", "power_law"),
        default="erdos_renyi",
        help="graph family",
    )
    run_parser.add_argument(
        "--expected-degree",
        type=float,
        default=None,
        help="expected degree (defaults to the paper's log^2 n)",
    )
    run_parser.add_argument("--seed", type=int, default=1, help="random seed")
    run_parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    run_parser.set_defaults(func=_cmd_run)

    scenario_parser = subparsers.add_parser(
        "scenarios", help="list or run registered experiment scenarios"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)

    list_parser = scenario_sub.add_parser("list", help="list the scenario registry")
    list_parser.set_defaults(func=_cmd_scenarios_list)

    srun_parser = scenario_sub.add_parser(
        "run", help="run scenarios through the resumable sweep engine"
    )
    srun_parser.add_argument(
        "names",
        nargs="+",
        metavar="scenario",
        help=f"scenario name(s); one of: {', '.join(scenario_names())}",
    )
    srun_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sweep (default 1)"
    )
    srun_parser.add_argument(
        "--out",
        default=None,
        help="output directory; enables the JSONL result store (under OUT/store) "
        "and persists the aggregated rows",
    )
    srun_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip (configuration, repetition) pairs already in the store "
        "(requires --out)",
    )
    srun_parser.add_argument(
        "--cache-from",
        default=None,
        metavar="STORE_DIR",
        help="secondary read-only result store (e.g. a team-shared OUT/store "
        "directory); pairs found there with matching seeds are copied into "
        "the primary store instead of being executed (requires --out)",
    )
    srun_parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-scale configuration"
    )
    srun_parser.add_argument(
        "--plot", action="store_true", help="render an ASCII plot of the main series"
    )
    srun_parser.add_argument("--seed", type=int, default=None, help="override base seed")
    srun_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="supervised retry budget per (configuration, repetition) before "
        "the pair is quarantined (default 2)",
    )
    srun_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-task wall-clock timeout in seconds (kills and respawns the "
        "worker pool; default: no timeout)",
    )
    srun_parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministically inject faults, e.g. 'kill=1,error=1' "
        f"(kinds: {', '.join(FAULT_KINDS)})",
    )
    srun_parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the chaos fault sampler (default 0)",
    )
    srun_parser.add_argument(
        "--chaos-attempts",
        type=int,
        default=1,
        help="attempts each injected fault keeps firing for; above "
        "--max-retries this simulates a poison configuration (default 1)",
    )
    srun_parser.set_defaults(func=_cmd_scenarios_run)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run a named experiment (alias of `scenarios run`)"
    )
    experiment_parser.add_argument(
        "name",
        choices=scenario_names(),
        help="experiment to run (paper figure/table or extension)",
    )
    experiment_parser.add_argument(
        "--output", default=None, help="directory to persist the result rows into"
    )
    experiment_parser.add_argument(
        "--plot", action="store_true", help="render an ASCII plot of the main series"
    )
    experiment_parser.add_argument("--seed", type=int, default=None, help="override base seed")
    experiment_parser.set_defaults(func=_cmd_experiment)

    results_parser = subparsers.add_parser(
        "results", help="query a result store through its SQLite index"
    )
    results_sub = results_parser.add_subparsers(dest="results_command", required=True)

    rquery_parser = results_sub.add_parser(
        "query", help="list completed records of one scenario"
    )
    rquery_parser.add_argument("store", help="store directory (e.g. results/store)")
    rquery_parser.add_argument("scenario", help="scenario name (JSONL file stem)")
    rquery_parser.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="equality filter on a record field (repeatable; values are "
        "parsed as int, float, true/false, then string)",
    )
    rquery_parser.add_argument(
        "--columns",
        default=None,
        help="comma-separated columns to print (default: all of the first row)",
    )
    rquery_parser.add_argument("--limit", type=int, default=None, help="stop after N rows")
    rquery_parser.add_argument("--json", action="store_true", help="print rows as JSON")
    rquery_parser.set_defaults(func=_cmd_results_query)

    rstats_parser = results_sub.add_parser(
        "stats", help="per-metric statistics or grouped aggregates"
    )
    rstats_parser.add_argument("store", help="store directory (e.g. results/store)")
    rstats_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name; omitted: print a per-scenario overview",
    )
    rstats_parser.add_argument(
        "--metrics",
        default=None,
        help="comma-separated numeric fields (default: every numeric field)",
    )
    rstats_parser.add_argument(
        "--group-by",
        default=None,
        help="comma-separated group columns; switches to the grouped "
        "mean/std aggregate used by the experiment reports",
    )
    rstats_parser.add_argument(
        "--percentiles",
        default="50,90,99",
        help="comma-separated percentile ranks for the stats view "
        "(default 50,90,99)",
    )
    rstats_parser.add_argument("--json", action="store_true", help="print rows as JSON")
    rstats_parser.set_defaults(func=_cmd_results_stats)

    rrebuild_parser = results_sub.add_parser(
        "rebuild", help="re-derive the SQLite index from the JSONL files"
    )
    rrebuild_parser.add_argument("store", help="store directory (e.g. results/store)")
    rrebuild_parser.set_defaults(func=_cmd_results_rebuild)

    table_parser = subparsers.add_parser("table1", help="print Table 1 constants")
    table_parser.add_argument(
        "sizes", nargs="*", type=int, default=[1024, 65536, 10**6], help="graph sizes"
    )
    table_parser.set_defaults(func=_cmd_table1)

    info_parser = subparsers.add_parser("graph-info", help="profile a sampled graph")
    info_parser.add_argument("--nodes", "-n", type=int, default=1024, help="graph size")
    info_parser.add_argument(
        "--graph",
        choices=("erdos_renyi", "random_regular", "complete", "hypercube", "power_law"),
        default="erdos_renyi",
        help="graph family",
    )
    info_parser.add_argument("--expected-degree", type=float, default=None)
    info_parser.add_argument("--seed", type=int, default=1)
    info_parser.set_defaults(func=_cmd_graph_info)

    return parser


def _graph_spec(kind: str, n: int, expected_degree: Optional[float]) -> GraphSpec:
    """Build a GraphSpec from CLI arguments."""
    if kind == "erdos_renyi":
        params = {
            "p": (
                paper_edge_probability(n)
                if expected_degree is None
                else min(1.0, expected_degree / max(n - 1, 1))
            ),
            "require_connected": True,
        }
        return GraphSpec("erdos_renyi", n, params)
    if kind == "random_regular":
        degree = int(expected_degree or max(4, round(paper_edge_probability(n) * (n - 1))))
        if (degree * n) % 2:
            degree += 1
        return GraphSpec("random_regular", n, {"d": degree, "require_connected": True})
    if kind == "power_law":
        return GraphSpec("power_law", n, {"exponent": 2.5})
    return GraphSpec(kind, n)


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    spec = _graph_spec(args.graph, args.nodes, args.expected_degree)
    graph = make_graph(spec, rng=args.seed)
    protocols = {
        "push-pull": PushPullGossip(),
        "fast-gossiping": FastGossiping(),
        "memory": MemoryGossiping(leader=0),
        "push-sum": PushSumGossip(),
    }
    protocol = protocols[args.protocol]
    if args.clock not in protocol.supported_clocks:
        print(
            f"error: protocol {args.protocol!r} does not support the "
            f"{args.clock!r} clock (supported: {protocol.supported_clocks})",
            file=sys.stderr,
        )
        return 2
    # Sync-only protocols do not take a clock argument at all.
    run_kwargs = {"clock": args.clock} if len(protocol.supported_clocks) > 1 else {}
    result = protocol.run(graph, rng=args.seed + 1, **run_kwargs)
    summary = result.summary()
    summary["graph"] = spec.describe()
    if args.json:
        print(json.dumps(to_jsonable(summary), indent=2, sort_keys=True))
    else:
        rows = [
            ["graph", spec.describe()],
            ["protocol", result.protocol],
            ["completed", result.completed],
            ["rounds", result.rounds],
            ["packets/node", round(result.messages_per_node(MessageAccounting.PACKETS), 3)],
            ["opens/node", round(result.messages_per_node(MessageAccounting.OPENS), 3)],
            ["strict cost/node", round(result.messages_per_node(MessageAccounting.OPENS_AND_PACKETS), 3)],
        ]
        print(format_table(["field", "value"], rows, title="Gossiping run"))
    return 0 if result.completed else 1


def _print_plot(result) -> None:
    plot = scenario_plot(result)
    if plot:
        print()
        print(plot)


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.result_name, spec.legacy_entry or "-", spec.description]
        for spec in all_scenarios()
    ]
    print(
        format_table(
            ["scenario", "result", "legacy entry point", "description"],
            rows,
            title="Registered experiment scenarios",
        )
    )
    return 0


def _resume_command(args: argparse.Namespace) -> str:
    """Reconstruct the command line that resumes an interrupted sweep."""
    parts = ["python", "-m", "repro", "scenarios", "run", *args.names]
    if args.out:
        parts += ["--out", str(args.out), "--resume"]
    if getattr(args, "cache_from", None):
        parts += ["--cache-from", str(args.cache_from)]
    if args.smoke:
        parts.append("--smoke")
    if args.jobs != 1:
        parts += ["--jobs", str(args.jobs)]
    if args.seed is not None:
        parts += ["--seed", str(args.seed)]
    return " ".join(parts)


def _print_sweep_report(name: str, result) -> bool:
    """Print the supervision summary; returns True when degraded."""
    report = result.metadata.get("sweep_report")
    if not report:
        return False
    quarantined = report.get("quarantined", [])
    line = (
        f"{name} supervision: {report['ok']}/{report['total']} ok, "
        f"{report['retried']} retried ({report['retries']} retries), "
        f"{len(quarantined)} quarantined"
    )
    extras = [
        f"{report[field]} {label}"
        for field, label in (
            ("timeouts", "timeouts"),
            ("worker_crashes", "worker crashes"),
            ("pool_restarts", "pool restarts"),
        )
        if report.get(field)
    ]
    if extras:
        line += f" [{', '.join(extras)}]"
    print(line, file=sys.stderr)
    for failure in quarantined:
        print(
            f"  quarantined: key={failure['key']} repetition={failure['repetition']} "
            f"after {failure['attempts']} attempts ({failure['kind']}: "
            f"{failure['message']})",
            file=sys.stderr,
        )
    return bool(quarantined)


def _parse_where(items: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``FIELD=VALUE`` filters; values try int/float/bool."""
    where: Dict[str, object] = {}
    for item in items:
        name, sep, raw = item.partition("=")
        if not sep or not name:
            raise ValueError(f"--where expects FIELD=VALUE, got {item!r}")
        value: object = raw
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            for cast in (int, float):
                try:
                    value = cast(raw)
                    break
                except ValueError:
                    pass
        where[name] = value
    return where


def _open_query_index(directory: str):
    """Open a store directory's query index, or (None, exit_code) on error."""
    path = Path(directory)
    if not path.is_dir():
        print(f"error: {directory} is not a store directory", file=sys.stderr)
        return None, 2
    index = ResultStore(path).query_index
    if index is None:
        print(
            "error: the query index is disabled (REPRO_DISABLE_STORE_INDEX "
            "or sqlite3 unavailable); unset it to use `repro results`",
            file=sys.stderr,
        )
        return None, 2
    return index, 0


def _print_rows(rows, columns: Optional[str], as_json: bool, title: str) -> None:
    if as_json:
        print(json.dumps(to_jsonable(rows), indent=2, sort_keys=True))
        return
    if not rows:
        print(f"{title}: no rows")
        return
    names = (
        [c.strip() for c in columns.split(",") if c.strip()]
        if columns
        else list(rows[0].keys())
    )
    print(format_records(rows, names, title=title))


def _cmd_results_query(args: argparse.Namespace) -> int:
    index, code = _open_query_index(args.store)
    if index is None:
        return code
    try:
        where = _parse_where(args.where)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = index.query(args.scenario, where=where or None, limit=args.limit)
    _print_rows(rows, args.columns, args.json, f"{args.scenario}: completed records")
    return 0


def _cmd_results_stats(args: argparse.Namespace) -> int:
    index, code = _open_query_index(args.store)
    if index is None:
        return code
    if args.scenario is None:
        rows = [
            {"scenario": name, **index.counts(name)} for name in index.scenario_names()
        ]
        _print_rows(rows, None, args.json, "result store overview")
        return 0
    metrics = (
        [m.strip() for m in args.metrics.split(",") if m.strip()] if args.metrics else None
    )
    if args.group_by:
        group_by = [g.strip() for g in args.group_by.split(",") if g.strip()]
        rows = index.aggregate(args.scenario, group_by, metrics or [])
        _print_rows(rows, None, args.json, f"{args.scenario}: grouped aggregate")
        return 0
    try:
        percentiles = [float(q) for q in args.percentiles.split(",") if q.strip()]
    except ValueError:
        print(f"error: bad --percentiles {args.percentiles!r}", file=sys.stderr)
        return 2
    rows = index.stats(args.scenario, metrics, percentiles=percentiles)
    _print_rows(rows, None, args.json, f"{args.scenario}: metric statistics")
    return 0


def _cmd_results_rebuild(args: argparse.Namespace) -> int:
    index, code = _open_query_index(args.store)
    if index is None:
        return code
    for name in index.rebuild():
        counts = index.counts(name)
        print(
            f"rebuilt {name}: {counts['records']} records, "
            f"{counts['configurations']} configurations, "
            f"{counts['failures']} quarantined"
        )
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("error: --resume requires --out (the store to resume from)", file=sys.stderr)
        return 2
    if args.cache_from and not args.out:
        print(
            "error: --cache-from requires --out (the primary store hits are "
            "copied into)",
            file=sys.stderr,
        )
        return 2
    if args.cache_from and not Path(args.cache_from).is_dir():
        print(f"error: --cache-from {args.cache_from} is not a directory", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    unknown = [name for name in args.names if name not in scenario_names()]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; "
            f"known: {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    try:
        policy = RetryPolicy(max_retries=args.max_retries, timeout=args.timeout)
        chaos = (
            ChaosSpec(
                counts=parse_chaos_counts(args.chaos),
                seed=args.chaos_seed,
                attempts=args.chaos_attempts,
            )
            if args.chaos
            else None
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else None
    store = ResultStore(out / "store") if out else None
    read_store = ResultStore(args.cache_from) if args.cache_from else None
    degraded = False
    try:
        for name in args.names:
            spec = get_scenario(name)
            config = resolve_config(
                spec, seed=args.seed, smoke=args.smoke, profile="cli"
            )

            def progress(done: int, total: int, _name: str = name) -> None:
                print(f"\r{_name}: {done}/{total} tasks", end="", file=sys.stderr, flush=True)

            try:
                result = run_scenario(
                    spec,
                    config=config,
                    n_jobs=args.jobs,
                    store=store if spec.run_override is None else None,
                    read_store=read_store if spec.run_override is None else None,
                    resume=args.resume,
                    progress=progress,
                    supervise=spec.run_override is None,
                    policy=policy if spec.run_override is None else None,
                    chaos=chaos if spec.run_override is None else None,
                )
            except RuntimeError as error:
                print(f"\nerror: {error}", file=sys.stderr)
                return 1
            print(file=sys.stderr)
            cache = result.metadata.get("cache")
            if cache:
                shared = (
                    f" ({cache['secondary_hits']} from --cache-from)"
                    if cache["secondary_hits"]
                    else ""
                )
                print(
                    f"{name} cache: {cache['hits']}/{cache['total']} pairs served "
                    f"from the store{shared}, {cache['executed']} executed",
                    file=sys.stderr,
                )
            degraded = _print_sweep_report(name, result) or degraded
            print(result.to_table())
            if args.plot:
                _print_plot(result)
            if out:
                paths = result.save(out)
                if store is not None and spec.run_override is None:
                    print(f"store: {store.path_for(spec.name)}")
                for label, path in paths.items():
                    print(f"saved {label}: {path}")
            print()
    except KeyboardInterrupt:
        # Every completed record was already flushed+fsynced by the store;
        # close it (flush + fsync again) and tell the user how to resume.
        if store is not None:
            store.close()
        print(file=sys.stderr)
        print(
            "interrupted — completed (configuration, repetition) records are "
            "safely on disk",
            file=sys.stderr,
        )
        if args.out:
            print(f"resume with:\n  {_resume_command(args)}", file=sys.stderr)
        return 130
    finally:
        if store is not None:
            store.close()
        if read_store is not None:
            read_store.close()
    if degraded:
        print(
            "error: one or more configurations were quarantined (see the "
            "supervision report above)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = get_scenario(args.name)
    config = resolve_config(spec, seed=args.seed, profile="cli")
    result = run_scenario(spec, config=config)
    print(result.to_table())
    if args.plot:
        _print_plot(result)
    if args.output:
        paths = result.save(args.output)
        print()
        for label, path in paths.items():
            print(f"saved {label}: {path}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    for n in args.sizes:
        resolved = table1_rows(int(n))
        print(f"\nTable 1 constants for n = {n}")
        for algorithm, values in resolved.items():
            rows = [[key, value] for key, value in values.items() if key != "n"]
            print(format_table(["parameter", "value"], rows, title=algorithm))
    return 0


def _cmd_graph_info(args: argparse.Namespace) -> int:
    spec = _graph_spec(args.graph, args.nodes, args.expected_degree)
    graph = make_graph(spec, rng=args.seed)
    profile = profile_graph(graph, rng=args.seed, spectral=(graph.n <= 4096))
    rows = [[key, value] for key, value in profile.as_dict().items()]
    print(format_table(["property", "value"], rows, title=spec.describe()))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
