"""Non-malicious crash-failure model used in the robustness experiments.

The paper analyses robustness against ``f = n^{epsilon'}`` *random node
failures*: nodes chosen uniformly at random that may fail at any time during
the execution; a failed node does not communicate at all (it neither stores
incoming packets nor transmits).  The empirical robustness study (Figures 2, 3
and 5) marks ``F`` uniformly random nodes as failed right before Phase II of
the memory-model algorithm.

:class:`FailurePlan` captures *which* nodes fail and *when* (by named
injection point), decoupling failure sampling from protocol execution so that
the same plan can be replayed against several independently built
communication trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from .rng import RandomState, make_rng

__all__ = [
    "FailurePlan",
    "sample_uniform_failures",
    "NO_FAILURES",
    "KNOWN_INJECTION_POINTS",
]

#: Protocol points at which any in-tree protocol can inject failures.  A plan
#: naming an unknown point would silently never fire, so construction
#: validates against this list (``"start"`` is honoured by every protocol,
#: ``"before_gather"`` only by the memory model's Phase II).
KNOWN_INJECTION_POINTS = ("start", "before_gather")


@dataclass(frozen=True)
class FailurePlan:
    """A set of failed nodes together with the injection point.

    Attributes
    ----------
    failed:
        Sorted array of node identifiers that fail.
    inject_at:
        Symbolic name of the protocol point at which the failures take
        effect.  The memory-model robustness experiments use
        ``"before_gather"`` (i.e. before Phase II), matching the paper.
    """

    failed: np.ndarray
    inject_at: str = "before_gather"

    def __post_init__(self) -> None:
        if self.inject_at not in KNOWN_INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.inject_at!r}; known points: "
                f"{', '.join(KNOWN_INJECTION_POINTS)}"
            )
        arr = np.unique(np.asarray(self.failed, dtype=np.int64))
        object.__setattr__(self, "failed", arr)

    @property
    def count(self) -> int:
        """Number of failed nodes."""
        return int(self.failed.size)

    def alive_mask(self, n_nodes: int) -> np.ndarray:
        """Boolean mask of length ``n_nodes`` with failed nodes set to False."""
        mask = np.ones(n_nodes, dtype=bool)
        if self.failed.size:
            if self.failed.max() >= n_nodes or self.failed.min() < 0:
                raise ValueError("failed node identifier out of range")
            mask[self.failed] = False
        return mask

    def is_empty(self) -> bool:
        """True when no node fails."""
        return self.failed.size == 0

    def applies_at(self, point: str) -> bool:
        """Whether this plan injects failures at the named protocol point."""
        return not self.is_empty() and self.inject_at == point


#: A reusable plan representing fault-free execution.
NO_FAILURES = FailurePlan(failed=np.zeros(0, dtype=np.int64))


def sample_uniform_failures(
    n_nodes: int,
    count: int,
    rng: RandomState = None,
    *,
    inject_at: str = "before_gather",
    protect: Optional[Iterable[int]] = None,
) -> FailurePlan:
    """Sample ``count`` uniformly random failed nodes.

    Parameters
    ----------
    n_nodes:
        Network size.
    count:
        Number of nodes to fail.  Must satisfy ``0 <= count <= n_nodes``
        (minus the protected set).
    rng:
        Randomness source.
    inject_at:
        Injection point label recorded in the plan.
    protect:
        Nodes that must not be selected (e.g. the leader, so that the
        gathering root survives — the paper notes the leader fails only with
        probability ``n^{-Omega(1)}`` and treats it as healthy).
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    if not 0 <= count <= n_nodes:
        raise ValueError(
            f"count must lie in [0, n_nodes={n_nodes}], got {count}"
        )
    generator = make_rng(rng)
    protected = np.unique(np.asarray(list(protect or []), dtype=np.int64))
    eligible = np.setdiff1d(np.arange(n_nodes, dtype=np.int64), protected)
    if count > eligible.size:
        raise ValueError(
            f"cannot fail {count} nodes: only {eligible.size} eligible nodes"
        )
    failed = generator.choice(eligible, size=count, replace=False)
    return FailurePlan(failed=np.sort(failed), inject_at=inject_at)
