"""Pluggable knowledge-storage layouts and their selection registry.

The dense :class:`~repro.engine.knowledge.KnowledgeMatrix` keeps the whole
``n_nodes x words`` bitset matrix (plus a swap buffer) resident, which walls
off large problem sizes: at n = 1M nodes the matrix alone is ~125 GB.  This
module provides the two layouts that break that wall, plus the registry that
picks between them — one stable call surface over interchangeable storage
backends chosen by problem size, mirroring the kernel-backend registry in
:mod:`repro.engine.backends`:

``PagedKnowledge``
    Receiver rows split into fixed-size row-blocks (``block_rows`` rows per
    block, default 4096).  A round gathers *all* unique sender rows first,
    then streams each touched block through the block-addressed CSR kernels;
    blocks not named by the round's edge set are never read or written.  The
    resident footprint is ``8 * n * words`` bytes — half the dense layout,
    which also keeps a full swap buffer — and, more importantly, rounds only
    dirty the pages they touch.

``SparseKnowledge``
    Rows kept in lifetime-sparse ``(word index, word value)`` pair form for
    their whole life — they never ratchet to a resident dense matrix the way
    :class:`~repro.engine.knowledge.FrontierKnowledge` does.  Pair capacity
    grows per block on demand; a block escapes to a dense array only when
    its rows saturate past ``2/3`` of the row width (the endgame, where
    dense is optimal anyway).  Intended for large ``words`` and early-phase
    workloads; the gather side still materializes the unique *sender* rows
    of a batch transiently (``8 * unique_senders * words`` bytes).

Both layouts implement the gather-all-then-write-all schedule, so — OR being
commutative — trajectories are **bit-identical** to the dense layout at
every size where dense fits (``tests/engine/test_layouts.py``).

Memory model (bytes, resident; ``w`` = words = ceil(n_messages / 64)):

===========  ==========================================================
layout       resident bytes
===========  ==========================================================
dense        ``16 n w`` (matrix + swap buffer) + frontier bookkeeping
             (``~n w + 12 n + 4 n ceil(w / 8)``) when ``w >= 64``
paged        ``8 n w`` + one CSR scratch (``~16 block_rows``)
sparse       ``12 n cap`` growing with fill (floor ``cap = 4``), per-row
             pairs; saturated blocks escape to ``8 block_rows w`` each
===========  ==========================================================

Selection: :func:`make_knowledge` resolves ``auto`` to **dense** while the
dense estimate fits the budget (default 1 GiB, ``REPRO_KNOWLEDGE_DENSE_BUDGET``)
and **paged** beyond it.  The lifetime-sparse layout is opt-in (explicit
``sparse``) because its cost is fill-dependent.  Overrides, strongest first:
an explicit ``layout=`` argument, the :func:`use` scope, then
``REPRO_KNOWLEDGE_LAYOUT`` (``auto`` / ``dense`` / ``paged`` / ``sparse``).
``REPRO_KNOWLEDGE_BLOCK`` sets the paged/sparse block row count.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from . import backends
from .knowledge import (
    WORD_BITS,
    KnowledgeStorage,
    _layered_scatter,
    _n_words,
    _WORD_DTYPE,
    dense_knowledge,
)

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "DEFAULT_DENSE_BUDGET",
    "LAYOUTS",
    "PagedKnowledge",
    "SparseKnowledge",
    "default_block_rows",
    "dense_budget",
    "estimate_bytes",
    "make_knowledge",
    "resolve_layout",
    "use",
]

#: Recognized layout names (``auto`` resolves through the memory model).
LAYOUTS = ("auto", "dense", "paged", "sparse")

#: Rows per block for the paged and sparse layouts.  4096 rows x 196 words
#: (n = 12.5k messages) is ~6.4 MB per block — big enough to amortize the
#: per-block CSR build, small enough that skipped blocks save real traffic.
DEFAULT_BLOCK_ROWS = 4096

#: Dense-layout budget for ``auto`` selection: matrices estimated below this
#: stay dense (1 GiB keeps everything through n ~ 60k dense on the default
#: square problem; n = 100k dense is ~2.7 GB and pages).
DEFAULT_DENSE_BUDGET = 1 << 30

#: Per-scope override installed by :func:`use` (None = no override).
_OVERRIDE: Optional[str] = None


def default_block_rows() -> int:
    """Block row count (``REPRO_KNOWLEDGE_BLOCK`` or 4096)."""
    return int(os.environ.get("REPRO_KNOWLEDGE_BLOCK", DEFAULT_BLOCK_ROWS))


def dense_budget() -> int:
    """Dense-layout byte budget (``REPRO_KNOWLEDGE_DENSE_BUDGET`` or 1 GiB)."""
    return int(os.environ.get("REPRO_KNOWLEDGE_DENSE_BUDGET", DEFAULT_DENSE_BUDGET))


def estimate_bytes(
    layout: str,
    n_nodes: int,
    n_messages: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> int:
    """Resident bytes of ``layout`` for an ``n_nodes x n_messages`` problem.

    The documented memory model behind ``auto`` selection (see the module
    docstring for the formulas).  The sparse estimate is the allocation
    *floor* — its true cost grows with fill.
    """
    n = int(n_nodes)
    words = _n_words(n if n_messages is None else int(n_messages))
    if block_rows is None:
        block_rows = default_block_rows()
    if layout == "dense":
        total = 16 * n * words  # matrix + swap buffer
        if words >= 64:  # frontier bookkeeping (FrontierKnowledge)
            word_cap = min(words, max(4, round(words * 0.125)))
            total += n * words + 12 * n + 4 * n * word_cap
        return total
    if layout == "paged":
        return 8 * n * words + 16 * min(block_rows, n)
    if layout == "sparse":
        return 12 * n * _SparseBlock.INITIAL_CAP + 8 * n
    raise ValueError(f"unknown layout {layout!r} (expected one of {LAYOUTS})")


def resolve_layout(layout: Optional[str] = None) -> str:
    """The layout name in force: explicit > :func:`use` scope > environment.

    Returns one of :data:`LAYOUTS`; ``auto`` means "apply the memory model"
    and is resolved by :func:`make_knowledge`.
    """
    if layout is None:
        layout = _OVERRIDE
    if layout is None:
        layout = os.environ.get("REPRO_KNOWLEDGE_LAYOUT", "auto")
    layout = layout.lower()
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (expected one of {LAYOUTS})")
    return layout


@contextmanager
def use(layout: str):
    """Force ``layout`` for every :func:`make_knowledge` call in the scope.

    Mirrors :func:`repro.engine.backends.use`.  An explicit ``layout=``
    argument still wins; the environment variable is overridden.
    """
    global _OVERRIDE
    if layout is not None and layout.lower() not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (expected one of {LAYOUTS})")
    previous = _OVERRIDE
    _OVERRIDE = layout
    try:
        yield
    finally:
        _OVERRIDE = previous


def make_knowledge(
    n_nodes: int,
    n_messages: Optional[int] = None,
    layout: Optional[str] = None,
) -> KnowledgeStorage:
    """Construct the knowledge storage the resolved layout prescribes.

    ``auto`` picks dense while :func:`estimate_bytes` fits :func:`dense_budget`
    and paged beyond; ``sparse`` is explicit-only (fill-dependent cost).
    """
    choice = resolve_layout(layout)
    if choice == "auto":
        if estimate_bytes("dense", n_nodes, n_messages) <= dense_budget():
            choice = "dense"
        else:
            choice = "paged"
    if choice == "dense":
        return dense_knowledge(n_nodes, n_messages)
    if choice == "paged":
        return PagedKnowledge(n_nodes, n_messages)
    return SparseKnowledge(n_nodes, n_messages)


class PagedKnowledge(KnowledgeStorage):
    """Knowledge rows split into fixed-size row-blocks, updated block-wise.

    Each block is a contiguous ``(block_rows, words)`` dense array.  A round
    gathers every unique sender row *before* any write (the snapshot-round
    discipline), then streams the touched blocks through the block-addressed
    CSR kernel of the active backend — duplicate receivers within a block are
    merged exactly like the dense swap-form round.  Blocks no receiver of the
    round falls into are skipped entirely.

    Bit-identical to the dense layout: the gathered rows equal the dense
    snapshot rows, and OR-merging is order-independent.
    """

    __slots__ = ("block_rows", "n_blocks", "_blocks", "_csr_off", "_csr_adj")

    layout = "paged"

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
        block_rows: Optional[int] = None,
    ) -> None:
        super().__init__(n_nodes, n_messages)
        if block_rows is None:
            block_rows = default_block_rows()
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        self.block_rows = int(min(block_rows, self.n_nodes))
        self.n_blocks = -(-self.n_nodes // self.block_rows)
        self._blocks: List[np.ndarray] = []
        for b in range(self.n_blocks):
            rows = min(self.block_rows, self.n_nodes - b * self.block_rows)
            self._blocks.append(np.zeros((rows, self.words), dtype=_WORD_DTYPE))
        #: Reusable CSR scratch for the block kernels (sized to one block).
        self._csr_off: Optional[np.ndarray] = None
        self._csr_adj: Optional[np.ndarray] = None
        if initialize_own:
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto)
            for b, start, block in self._enumerate():
                sel = idx[(idx >= start) & (idx < start + block.shape[0])]
                if sel.size:
                    block[sel - start, sel // WORD_BITS] |= np.left_shift(
                        np.uint64(1), (sel % WORD_BITS).astype(_WORD_DTYPE)
                    )

    # ------------------------------------------------------------------ #
    # Block addressing
    # ------------------------------------------------------------------ #
    def _enumerate(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        for b, block in enumerate(self._blocks):
            yield b, b * self.block_rows, block

    def iter_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        for _b, start, block in self._enumerate():
            yield start, block

    def _csr_buffers(self, edges: int) -> "tuple[np.ndarray, np.ndarray]":
        if self._csr_off is None:
            self._csr_off = np.empty(self.block_rows + 1, dtype=np.int64)
        if self._csr_adj is None or self._csr_adj.size < edges:
            self._csr_adj = np.empty(edges, dtype=np.int64)
        return self._csr_off, self._csr_adj

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    def rows(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.empty((nodes.size, self.words), dtype=_WORD_DTYPE)
        blk = nodes // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            out[sel] = self._blocks[b][nodes[sel] - b * self.block_rows]
        return out

    def row(self, node: int) -> np.ndarray:
        """Live view of ``node``'s row (valid until the next bulk update)."""
        return self._blocks[node // self.block_rows][node % self.block_rows]

    def assign_rows(self, nodes: np.ndarray, row: np.ndarray) -> None:
        nodes = np.asarray(nodes, dtype=np.int64)
        blk = nodes // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            self._blocks[b][nodes[sel] - b * self.block_rows] = row

    def copy(self) -> "PagedKnowledge":
        clone = PagedKnowledge.empty(self.n_nodes, self.n_messages)
        clone.block_rows = self.block_rows
        clone.n_blocks = self.n_blocks
        clone._blocks = [block.copy() for block in self._blocks]
        return clone

    def storage_nbytes(self) -> int:
        total = sum(block.nbytes for block in self._blocks)
        for buf in (self._csr_off, self._csr_adj):
            if buf is not None:
                total += buf.nbytes
        return total

    # ------------------------------------------------------------------ #
    # Element mutators
    # ------------------------------------------------------------------ #
    def add(self, node: int, message: int) -> None:
        self._check_message(message)
        self.row(node)[message // WORD_BITS] |= self._bit(message)

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        self._check_message(message)
        nodes = np.asarray(nodes, dtype=np.int64)
        if not nodes.size:
            return
        word, bit = message // WORD_BITS, self._bit(message)
        blk = nodes // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            self._blocks[b][nodes[sel] - b * self.block_rows, word] |= bit

    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        self.row(dst)[:] |= src_row

    def union_from_node(
        self, dst: int, src: int, snapshot: Optional[np.ndarray] = None
    ) -> None:
        source = self.row(src).copy() if snapshot is None else snapshot[src]
        self.row(dst)[:] |= source

    # ------------------------------------------------------------------ #
    # Bulk updates
    # ------------------------------------------------------------------ #
    def _apply_batch(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        """Stream gathered source rows into the touched blocks.

        ``source`` must be storage disjoint from this object's blocks (a
        gather copy or an external snapshot), so per-block scatters are
        order-independent; blocks without receivers are skipped.
        """
        if receivers.size == 0:
            return
        backend = backends.active()
        compiled = backend.use_compiled()
        if compiled:
            source = np.ascontiguousarray(source)
        blk = receivers // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            local = receivers[sel] - b * self.block_rows
            block = self._blocks[b]
            if compiled:
                off, adj = self._csr_buffers(local.size)
                backend.block_round(
                    block,
                    source,
                    np.ascontiguousarray(src_idx[sel]),
                    np.ascontiguousarray(local),
                    off,
                    adj,
                )
            else:
                _layered_scatter(block, source, src_idx[sel], local)

    def scatter_rows(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        self._apply_batch(
            np.asarray(source),
            np.asarray(src_idx, dtype=np.int64),
            np.asarray(receivers, dtype=np.int64),
        )

    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        if snapshot is not None:
            self._apply_batch(snapshot, senders, receivers)
            return receivers
        # Gather ALL unique sender rows before any block is written — the
        # snapshot-round discipline that makes block streaming bit-identical.
        unique_senders, sender_pos = np.unique(senders, return_inverse=True)
        self._apply_batch(self.rows(unique_senders), sender_pos, receivers)
        return receivers

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
        deficit_mask: Optional[np.ndarray] = None,
        deficits_out: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        # The block-streamed layouts have no swap-form kernel to fuse the
        # recount into; deficit_mask/deficits_out are accepted for interface
        # parity and ignored (fused_deficits stays false, callers recount).
        callers = np.asarray(callers, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if callers.shape != targets.shape:
            raise ValueError("callers and targets must have identical shapes")
        empty = np.zeros(0, dtype=np.int64)
        self.fused_deficits = False
        if callers.size == 0:
            return empty, empty
        if complete is not None and not complete.any():
            complete = None
        push_s, push_r, pull_s, pull_r, promoted = self._filter_exchange(
            callers, targets, complete
        )
        touched = empty
        if push_r.size or pull_r.size:
            all_r = np.concatenate([push_r, pull_r])
            unique_senders, pos = np.unique(
                np.concatenate([push_s, pull_s]), return_inverse=True
            )
            self._apply_batch(self.rows(unique_senders), pos, all_r)
            touched = all_r
        if promoted.size:
            self.assign_rows(promoted, complete_row)
        return touched, promoted

    # ------------------------------------------------------------------ #
    # Queries with a block-addressed fast path
    # ------------------------------------------------------------------ #
    def count_missing(self, mask: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        backend = backends.active()
        if not backend.use_compiled():
            return super().count_missing(mask, rows)
        out = np.empty(rows.size, dtype=np.int64)
        blk = rows // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            out[sel] = backend.recount_deficits(
                self._blocks[b],
                mask,
                np.ascontiguousarray(rows[sel] - b * self.block_rows),
            )
        return out


class _SparseBlock:
    """Per-row ``(word index, word value)`` pairs for one row-block.

    ``idx[i, :nnz[i]]`` are the active (nonzero) word columns of local row
    ``i`` and ``val[i, :nnz[i]]`` their 64-bit values; all other words are
    zero.  Capacity is shared by the block and grows geometrically.
    """

    __slots__ = ("idx", "val", "nnz")

    #: Starting pair capacity per row (the allocation floor).
    INITIAL_CAP = 4

    def __init__(self, rows: int, cap: int = INITIAL_CAP) -> None:
        self.idx = np.zeros((rows, cap), dtype=np.int32)
        self.val = np.zeros((rows, cap), dtype=_WORD_DTYPE)
        self.nnz = np.zeros(rows, dtype=np.int64)

    @property
    def cap(self) -> int:
        return self.idx.shape[1]

    def grow(self, cap: int) -> None:
        if cap <= self.cap:
            return
        idx = np.zeros((self.idx.shape[0], cap), dtype=np.int32)
        val = np.zeros((self.val.shape[0], cap), dtype=_WORD_DTYPE)
        idx[:, : self.cap] = self.idx
        val[:, : self.cap] = self.val
        self.idx, self.val = idx, val

    def copy(self) -> "_SparseBlock":
        clone = _SparseBlock.__new__(_SparseBlock)
        clone.idx = self.idx.copy()
        clone.val = self.val.copy()
        clone.nnz = self.nnz.copy()
        return clone

    def nbytes(self) -> int:
        return self.idx.nbytes + self.val.nbytes + self.nnz.nbytes


class SparseKnowledge(KnowledgeStorage):
    """Lifetime-sparse rows: ``(word, value)`` pairs for a row's whole life.

    Unlike :class:`~repro.engine.knowledge.FrontierKnowledge` — which keeps
    a resident dense matrix and merely *indexes* into it — this layout's
    primary storage is the pair form itself, so memory scales with the bits
    actually known, not with ``n_nodes x words``.  Two escape valves keep
    the endgame from degenerating:

    * **heavy senders** (more than ``words / 8`` active words) are delivered
      as whole rows through the block-dense kernel rather than exploded into
      pairs, escaping the receiving blocks to dense;
    * a block whose rows would exceed ``2/3`` of the row width in pairs
      escapes to a dense array (pair form would cost more than dense there).

    Gathers still materialize the unique sender rows of a batch transiently;
    storage stays sparse.  Bit-identical to the dense layout — the same
    gather-all-then-write-all schedule, merged by OR.
    """

    __slots__ = (
        "block_rows",
        "n_blocks",
        "_store",
        "_heavy_words",
        "_cap_limit",
        "_csr_off",
        "_csr_adj",
    )

    layout = "sparse"

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
        block_rows: Optional[int] = None,
    ) -> None:
        super().__init__(n_nodes, n_messages)
        if block_rows is None:
            block_rows = default_block_rows()
        if block_rows <= 0:
            raise ValueError(f"block_rows must be positive, got {block_rows}")
        self.block_rows = int(min(block_rows, self.n_nodes))
        self.n_blocks = -(-self.n_nodes // self.block_rows)
        #: Sender rows wider than this go through the dense block path.
        self._heavy_words = max(2, self.words // 8)
        #: Pair capacity past which a block escapes to dense.
        self._cap_limit = max(4, (2 * self.words) // 3)
        #: Per block: a ``_SparseBlock`` or (escaped) a dense array.
        self._store: List[Union[_SparseBlock, np.ndarray]] = []
        for b in range(self.n_blocks):
            rows = min(self.block_rows, self.n_nodes - b * self.block_rows)
            self._store.append(_SparseBlock(rows))
        self._csr_off: Optional[np.ndarray] = None
        self._csr_adj: Optional[np.ndarray] = None
        if initialize_own:
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto)
            for b in np.unique(idx // self.block_rows):
                start = b * self.block_rows
                sel = idx[(idx >= start) & (idx < start + self.block_rows)]
                store = self._store[b]
                local = sel - start
                store.idx[local, 0] = (sel // WORD_BITS).astype(np.int32)
                store.val[local, 0] = np.left_shift(
                    np.uint64(1), (sel % WORD_BITS).astype(_WORD_DTYPE)
                )
                store.nnz[local] = 1

    # ------------------------------------------------------------------ #
    # Block addressing and escapes
    # ------------------------------------------------------------------ #
    def _block_dense(self, b: int) -> np.ndarray:
        """The block's dense image (the store itself if escaped, else a copy)."""
        store = self._store[b]
        if isinstance(store, np.ndarray):
            return store
        rows = store.nnz.size
        dense = np.zeros((rows, self.words), dtype=_WORD_DTYPE)
        total = int(store.nnz.sum())
        if total:
            tx = np.repeat(np.arange(rows, dtype=np.int64), store.nnz)
            ends = np.cumsum(store.nnz)
            rank = np.arange(total, dtype=np.int64) - np.repeat(
                ends - store.nnz, store.nnz
            )
            dense[tx, store.idx[tx, rank].astype(np.int64)] = store.val[tx, rank]
        return dense

    def _escape(self, b: int) -> np.ndarray:
        """Replace block ``b``'s pair store with its dense image."""
        store = self._store[b]
        if isinstance(store, np.ndarray):
            return store
        dense = self._block_dense(b)
        self._store[b] = dense
        return dense

    def _csr_buffers(self, edges: int) -> "tuple[np.ndarray, np.ndarray]":
        if self._csr_off is None:
            self._csr_off = np.empty(self.block_rows + 1, dtype=np.int64)
        if self._csr_adj is None or self._csr_adj.size < edges:
            self._csr_adj = np.empty(edges, dtype=np.int64)
        return self._csr_off, self._csr_adj

    def iter_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        for b in range(self.n_blocks):
            yield b * self.block_rows, self._block_dense(b)

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    def rows(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros((nodes.size, self.words), dtype=_WORD_DTYPE)
        blk = nodes // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            local = nodes[sel] - b * self.block_rows
            store = self._store[b]
            if isinstance(store, np.ndarray):
                out[sel] = store[local]
                continue
            pos = np.flatnonzero(sel)
            nnz = store.nnz[local]
            total = int(nnz.sum())
            if not total:
                continue
            tx = np.repeat(np.arange(local.size, dtype=np.int64), nnz)
            ends = np.cumsum(nnz)
            rank = np.arange(total, dtype=np.int64) - np.repeat(ends - nnz, nnz)
            r = local[tx]
            out[pos[tx], store.idx[r, rank].astype(np.int64)] = store.val[r, rank]
        return out

    def row(self, node: int) -> np.ndarray:
        """``node``'s row, materialized (a copy — mutations are not seen)."""
        return self.rows(np.asarray([node], dtype=np.int64))[0]

    def assign_rows(self, nodes: np.ndarray, row: np.ndarray) -> None:
        # Assignment targets are saturated rows (promotions); their blocks
        # are in the endgame, so the dense escape is the right home.
        nodes = np.asarray(nodes, dtype=np.int64)
        blk = nodes // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            self._escape(b)[nodes[sel] - b * self.block_rows] = row

    def copy(self) -> "SparseKnowledge":
        clone = SparseKnowledge.empty(self.n_nodes, self.n_messages)
        clone.block_rows = self.block_rows
        clone.n_blocks = self.n_blocks
        clone._heavy_words = self._heavy_words
        clone._cap_limit = self._cap_limit
        clone._store = [store.copy() for store in self._store]
        return clone

    def storage_nbytes(self) -> int:
        total = 0
        for store in self._store:
            total += store.nbytes if isinstance(store, np.ndarray) else store.nbytes()
        for buf in (self._csr_off, self._csr_adj):
            if buf is not None:
                total += buf.nbytes
        return total

    def sparse_fraction(self) -> float:
        """Fraction of blocks still in pair (non-escaped) form."""
        escaped = sum(isinstance(store, np.ndarray) for store in self._store)
        return 1.0 - escaped / float(self.n_blocks)

    # ------------------------------------------------------------------ #
    # The pair-merge core
    # ------------------------------------------------------------------ #
    def _write_pairs(
        self, rows: np.ndarray, wcols: np.ndarray, vals: np.ndarray
    ) -> None:
        """OR unique ``(row, word) -> value`` pairs into storage.

        ``(rows[i], wcols[i])`` must be unique pairs (pre-merged by the
        caller); rows are global node identifiers.
        """
        if rows.size == 0:
            return
        blk = rows // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            local = rows[sel] - b * self.block_rows
            store = self._store[b]
            if isinstance(store, np.ndarray):
                store[local, wcols[sel]] |= vals[sel]
            else:
                self._merge_sparse(b, local, wcols[sel], vals[sel])

    def _merge_sparse(
        self, b: int, local: np.ndarray, wcols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Merge incoming pairs with block ``b``'s stored pairs, rewriting rows."""
        store = self._store[b]
        u_rows, inv = np.unique(local, return_inverse=True)
        old_nnz = store.nnz[u_rows]
        old_total = int(old_nnz.sum())
        if old_total:
            tx_old = np.repeat(np.arange(u_rows.size, dtype=np.int64), old_nnz)
            ends = np.cumsum(old_nnz)
            rank = np.arange(old_total, dtype=np.int64) - np.repeat(
                ends - old_nnz, old_nnz
            )
            rows_old = u_rows[tx_old]
            all_tx = np.concatenate([tx_old, inv])
            all_w = np.concatenate(
                [store.idx[rows_old, rank].astype(np.int64), wcols.astype(np.int64)]
            )
            all_v = np.concatenate([store.val[rows_old, rank], vals])
        else:
            all_tx, all_w, all_v = inv, wcols.astype(np.int64), vals
        lin = all_tx * self.words + all_w
        order = np.argsort(lin, kind="stable")
        lin_sorted = lin[order]
        bounds = np.flatnonzero(np.r_[True, lin_sorted[1:] != lin_sorted[:-1]])
        merged = np.bitwise_or.reduceat(all_v[order], bounds)
        m_tx = lin_sorted[bounds] // self.words
        m_w = lin_sorted[bounds] % self.words
        counts = np.bincount(m_tx, minlength=u_rows.size)
        need = int(counts.max())
        if need > self._cap_limit:
            # Pair form would cost more than dense rows here: escape the
            # block, then OR the merged pairs in (idempotent over the old
            # values the escape already materialized).
            self._escape(b)[u_rows[m_tx], m_w] |= merged
            return
        if need > store.cap:
            store.grow(min(self._cap_limit, max(need, 2 * store.cap)))
        starts = np.r_[0, np.cumsum(counts)[:-1]]
        pos = np.arange(m_tx.size, dtype=np.int64) - starts[m_tx]
        target = u_rows[m_tx]
        store.idx[target, pos] = m_w.astype(np.int32)
        store.val[target, pos] = merged
        store.nnz[u_rows] = counts

    # ------------------------------------------------------------------ #
    # Element mutators
    # ------------------------------------------------------------------ #
    def add(self, node: int, message: int) -> None:
        self._check_message(message)
        self._write_pairs(
            np.asarray([node], dtype=np.int64),
            np.asarray([message // WORD_BITS], dtype=np.int64),
            np.asarray([self._bit(message)], dtype=_WORD_DTYPE),
        )

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        self._check_message(message)
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if not nodes.size:
            return
        self._write_pairs(
            nodes,
            np.full(nodes.size, message // WORD_BITS, dtype=np.int64),
            np.full(nodes.size, self._bit(message), dtype=_WORD_DTYPE),
        )

    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        active = np.flatnonzero(src_row).astype(np.int64)
        if not active.size:
            return
        self._write_pairs(
            np.full(active.size, dst, dtype=np.int64),
            active,
            np.asarray(src_row, dtype=_WORD_DTYPE)[active],
        )

    def union_from_node(
        self, dst: int, src: int, snapshot: Optional[np.ndarray] = None
    ) -> None:
        self.union_into(dst, self.row(src) if snapshot is None else snapshot[src])

    # ------------------------------------------------------------------ #
    # Bulk updates
    # ------------------------------------------------------------------ #
    def _apply_batch(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        """Deliver gathered source rows: heavy rows dense, light rows as pairs.

        ``source`` is disjoint external/gathered storage; all reads of this
        object's state happened at gather time, so heavy-before-light write
        order cannot leak within-batch writes into reads.
        """
        if receivers.size == 0:
            return
        src_nnz = np.count_nonzero(source, axis=1).astype(np.int64)
        tx_nnz = src_nnz[src_idx]
        heavy = tx_nnz > self._heavy_words
        if heavy.any():
            h_idx = src_idx[heavy]
            h_recv = receivers[heavy]
            backend = backends.active()
            compiled = backend.use_compiled()
            csource = np.ascontiguousarray(source) if compiled else source
            blk = h_recv // self.block_rows
            for b in np.unique(blk):
                sel = blk == b
                local = h_recv[sel] - b * self.block_rows
                dense = self._escape(b)
                if compiled:
                    off, adj = self._csr_buffers(local.size)
                    backend.block_round(
                        dense,
                        csource,
                        np.ascontiguousarray(h_idx[sel]),
                        np.ascontiguousarray(local),
                        off,
                        adj,
                    )
                else:
                    _layered_scatter(dense, source, h_idx[sel], local)
        light = ~heavy
        if not light.any():
            return
        keep = tx_nnz[light] > 0
        l_idx = src_idx[light][keep]
        l_recv = receivers[light][keep]
        if not l_idx.size:
            return
        nnz = src_nnz[l_idx]
        total = int(nnz.sum())
        # Nonzero structure of the source pool, grouped by source row.
        nz_rows, nz_cols = np.nonzero(source)
        row_starts = np.searchsorted(nz_rows, np.arange(source.shape[0]))
        tx = np.repeat(np.arange(l_idx.size, dtype=np.int64), nnz)
        ends = np.cumsum(nnz)
        rank = np.arange(total, dtype=np.int64) - np.repeat(ends - nnz, nnz)
        flat = row_starts[l_idx[tx]] + rank
        wcols = nz_cols[flat].astype(np.int64)
        vals = source[l_idx[tx], wcols]
        lin = l_recv[tx] * self.words + wcols
        order = np.argsort(lin, kind="stable")
        lin_sorted = lin[order]
        bounds = np.flatnonzero(np.r_[True, lin_sorted[1:] != lin_sorted[:-1]])
        merged = np.bitwise_or.reduceat(vals[order], bounds)
        self._write_pairs(
            lin_sorted[bounds] // self.words, lin_sorted[bounds] % self.words, merged
        )

    def scatter_rows(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        self._apply_batch(
            np.asarray(source),
            np.asarray(src_idx, dtype=np.int64),
            np.asarray(receivers, dtype=np.int64),
        )

    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        if snapshot is not None:
            self._apply_batch(snapshot, senders, receivers)
            return receivers
        unique_senders, sender_pos = np.unique(senders, return_inverse=True)
        self._apply_batch(self.rows(unique_senders), sender_pos, receivers)
        return receivers

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
        deficit_mask: Optional[np.ndarray] = None,
        deficits_out: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        # The block-streamed layouts have no swap-form kernel to fuse the
        # recount into; deficit_mask/deficits_out are accepted for interface
        # parity and ignored (fused_deficits stays false, callers recount).
        callers = np.asarray(callers, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if callers.shape != targets.shape:
            raise ValueError("callers and targets must have identical shapes")
        empty = np.zeros(0, dtype=np.int64)
        self.fused_deficits = False
        if callers.size == 0:
            return empty, empty
        if complete is not None and not complete.any():
            complete = None
        push_s, push_r, pull_s, pull_r, promoted = self._filter_exchange(
            callers, targets, complete
        )
        touched = empty
        if push_r.size or pull_r.size:
            all_r = np.concatenate([push_r, pull_r])
            unique_senders, pos = np.unique(
                np.concatenate([push_s, pull_s]), return_inverse=True
            )
            self._apply_batch(self.rows(unique_senders), pos, all_r)
            touched = all_r
        if promoted.size:
            self.assign_rows(promoted, complete_row)
        return touched, promoted

    # ------------------------------------------------------------------ #
    # Queries with a pair-aware fast path
    # ------------------------------------------------------------------ #
    def count_missing(self, mask: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        backend = backends.active()
        total = int(np.bitwise_count(mask).sum())
        out = np.empty(rows.size, dtype=np.int64)
        blk = rows // self.block_rows
        for b in np.unique(blk):
            sel = blk == b
            local = rows[sel] - b * self.block_rows
            store = self._store[b]
            if isinstance(store, np.ndarray):
                if backend.use_compiled():
                    out[sel] = backend.recount_deficits(
                        store, mask, np.ascontiguousarray(local)
                    )
                else:
                    out[sel] = (
                        np.bitwise_count(mask[None, :] & ~store[local])
                        .sum(axis=1)
                        .astype(np.int64)
                    )
                continue
            nnz = store.nnz[local]
            pairs = int(nnz.sum())
            known = np.zeros(local.size, dtype=np.int64)
            if pairs:
                tx = np.repeat(np.arange(local.size, dtype=np.int64), nnz)
                ends = np.cumsum(nnz)
                rank = np.arange(pairs, dtype=np.int64) - np.repeat(ends - nnz, nnz)
                r = local[tx]
                w = store.idx[r, rank].astype(np.int64)
                got = np.bitwise_count(store.val[r, rank] & mask[w]).astype(np.int64)
                np.add.at(known, tx, got)
            out[sel] = total - known
        return out
