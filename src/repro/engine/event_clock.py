"""Event-clock scheduling: asynchronous gossip as batched non-colliding groups.

The synchronous engine advances in lock-step rounds; the continuous-time
(asynchronous) model instead gives every node an independent rate-1 Poisson
clock and lets a node act alone whenever its clock rings.  The superposition
of ``n`` rate-1 clocks is one global rate-``n`` Poisson process whose ring
owners are i.i.d. uniform over the nodes, so the whole event stream can be
sampled from a single generator in fixed draw order — which is what keeps
event-clock runs bit-identical across storage layouts, kernel backends and
thread counts at equal seeds.

**Stream discipline** (the determinism contract, pinned by
``tests/engine/test_event_clock.py``): events are drawn in chunks of
:data:`DEFAULT_CHUNK_EVENTS` wakeups, and each chunk consumes the generator
in exactly this order:

1. ``rng.exponential(1 / n, chunk)`` — inter-arrival gaps of the global
   process,
2. ``rng.integers(0, n, chunk)`` — the ring owners,
3. ``graph.sample_neighbors(owners, rng)`` — each owner's callee.

Nothing downstream (liveness thinning, grouping, storage layout, kernel
backend) touches the generator, so the sampled stream depends only on the
seed, the graph and the chunk size.  The chunk size is part of the stream
definition — numpy's ziggurat/rejection samplers consume a data-dependent
number of raw draws, so re-chunking genuinely reorders the stream — which is
why every production driver uses the one fixed default; the ``chunk_events``
parameter exists so tests can pin the border-carry property below.

**Batching.**  Applying one event at a time would forfeit the vectorised
scatter-OR / swap-form kernels, so consecutive events are greedily batched
into *non-colliding groups*: a group is a maximal prefix of the remaining
stream in which all endpoints (callers and callees) are pairwise distinct.
Within such a group every event reads and writes rows no other event in the
group touches, so replaying the group through one synchronous
``apply_exchange`` batch is bit-identical to applying the events one by one
— the invariant the differential harness in ``tests/harness/`` checks
against a sequential pure-Python oracle.  Group boundaries depend only on
the event stream itself: the duplicate-tracking state carries across chunk
borders, so regrouping the flattened stream with :func:`group_events`
reproduces the scheduler's partition exactly and the per-run group count is
deterministic.

**Churn.**  :class:`ChurnPlan` holds seeded join/leave edits keyed by global
wakeup index.  The scheduler forces a group boundary at every churn index so
membership never changes inside a batch; wakeups of currently-dead nodes are
discarded (thinning — statistically this is exactly the dead nodes' clocks
standing still), and calls into dead callees open a channel but exchange
nothing, mirroring :func:`repro.engine.channels.open_channels`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.adjacency import Adjacency
from .rng import RandomState, make_rng

__all__ = [
    "DEFAULT_CHUNK_EVENTS",
    "EventGroup",
    "EventScheduler",
    "ChurnPlan",
    "sample_churn_plan",
    "group_events",
]

#: Wakeups sampled per generator chunk.  Part of the stream definition (see
#: the module docstring) — production drivers always use this default; tests
#: vary it only to pin that grouping state carries across chunk borders.
DEFAULT_CHUNK_EVENTS = 1024


@dataclass(frozen=True)
class EventGroup:
    """One non-colliding batch of exchange events, ready for ``apply_exchange``.

    Attributes
    ----------
    callers / targets:
        Aligned event endpoints, sorted by caller.  All ``2k`` endpoints are
        pairwise distinct, so ``callers`` is sorted-unique (the
        ``apply_exchange`` precondition) and batched application equals
        sequential application bit for bit.
    openers:
        Callers of every *alive* wakeup since the previous group was
        emitted — including wakeups whose callee was dead (channel opened,
        nothing exchanged) — for open-accounting parity with the synchronous
        ledger discipline.  May repeat.
    end_time:
        Simulated time of the last event included in the group.
    end_index:
        Global wakeups consumed when the group was emitted.
    forced:
        True when the boundary was forced (churn break or event budget)
        rather than caused by an endpoint collision.
    """

    callers: np.ndarray
    targets: np.ndarray
    openers: np.ndarray
    end_time: float
    end_index: int
    forced: bool = False

    @property
    def size(self) -> int:
        """Number of exchange events in the group."""
        return int(self.callers.size)


@dataclass(frozen=True)
class ChurnPlan:
    """Seeded join/leave edits applied at fixed global wakeup indices.

    Attributes
    ----------
    indices:
        Global wakeup counts at which each edit applies, ascending.
    nodes:
        The node each edit toggles.
    joins:
        ``True`` for a join (node revives, keeping its knowledge), ``False``
        for a leave.
    """

    indices: np.ndarray
    nodes: np.ndarray
    joins: np.ndarray

    def __post_init__(self) -> None:
        if not (self.indices.shape == self.nodes.shape == self.joins.shape):
            raise ValueError("churn arrays must have identical shapes")
        if self.indices.size and np.any(np.diff(self.indices) < 0):
            raise ValueError("churn indices must be ascending")

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def breaks(self) -> np.ndarray:
        """Sorted unique wakeup indices where a group boundary is forced."""
        return np.unique(self.indices)

    def final_alive(self, initial: np.ndarray) -> np.ndarray:
        """The alive mask after every edit has been applied."""
        alive = np.asarray(initial, dtype=bool).copy()
        # Ops are sorted by index, and a node's rejoin is sampled strictly
        # after its leave, so applying in order yields the final state.
        for node, join in zip(self.nodes.tolist(), self.joins.tolist()):
            alive[node] = bool(join)
        return alive


def sample_churn_plan(
    n_nodes: int,
    *,
    leavers: int,
    rng: RandomState,
    horizon: int,
    rejoin_fraction: float = 0.5,
) -> ChurnPlan:
    """Sample a deterministic churn plan from a seeded generator.

    ``leavers`` distinct nodes each leave at a wakeup index uniform in
    ``[1, horizon)``; a ``rejoin_fraction`` share of them rejoins between
    one wakeup and ``horizon // 2`` wakeups later.  Draw order is fixed
    (nodes, leave indices, rejoin coin-flips, rejoin offsets) so the plan
    depends only on the seed.
    """
    if not 0 <= leavers < n_nodes:
        raise ValueError(
            f"leavers must be in [0, n_nodes), got {leavers} of {n_nodes}"
        )
    generator = make_rng(rng)
    if leavers == 0:
        empty = np.zeros(0, dtype=np.int64)
        return ChurnPlan(empty, empty, np.zeros(0, dtype=bool))
    horizon = max(2, int(horizon))
    nodes = generator.choice(n_nodes, size=leavers, replace=False).astype(np.int64)
    leave_at = generator.integers(1, horizon, size=leavers)
    rejoins = generator.random(leavers) < float(rejoin_fraction)
    offsets = 1 + generator.integers(0, max(1, horizon // 2), size=leavers)
    idx: List[int] = list(leave_at)
    who: List[int] = list(nodes)
    join: List[bool] = [False] * leavers
    for i in np.flatnonzero(rejoins):
        idx.append(int(leave_at[i] + offsets[i]))
        who.append(int(nodes[i]))
        join.append(True)
    order = np.argsort(np.asarray(idx), kind="stable")
    return ChurnPlan(
        np.asarray(idx, dtype=np.int64)[order],
        np.asarray(who, dtype=np.int64)[order],
        np.asarray(join, dtype=bool)[order],
    )


def group_events(
    callers: Sequence[int], targets: Sequence[int], n_nodes: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split an explicit event list into greedy maximal non-colliding groups.

    Returns ``(callers, targets)`` pairs in stream order, each sorted by
    caller with pairwise-distinct endpoints.  This is the exact grouping
    rule :class:`EventScheduler` applies to its sampled stream, exposed
    standalone so the differential harness can validate the invariant
    (batched group application == sequential event application) on arbitrary
    generated event lists.
    """
    callers = np.asarray(callers, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if callers.shape != targets.shape:
        raise ValueError("callers and targets must have identical shapes")
    if np.any(callers == targets):
        raise ValueError("an event cannot connect a node to itself")
    groups: List[Tuple[np.ndarray, np.ndarray]] = []
    seen = bytearray(n_nodes)
    cur_c: List[int] = []
    cur_t: List[int] = []

    def flush() -> None:
        if cur_c:
            c = np.asarray(cur_c, dtype=np.int64)
            t = np.asarray(cur_t, dtype=np.int64)
            order = np.argsort(c)
            groups.append((c[order], t[order]))
            for node in cur_c:
                seen[node] = 0
            for node in cur_t:
                seen[node] = 0
            cur_c.clear()
            cur_t.clear()

    for c, t in zip(callers.tolist(), targets.tolist()):
        if seen[c] or seen[t]:
            flush()
        cur_c.append(c)
        cur_t.append(t)
        seen[c] = 1
        seen[t] = 1
    flush()
    return groups


class EventScheduler:
    """Samples the global event stream and emits non-colliding groups.

    Parameters
    ----------
    graph:
        The communication network (callees are uniform neighbours).
    rng:
        The generator consumed per the module-level stream discipline.
    max_events:
        Total wakeup budget (the event-clock analogue of ``max_rounds``).
    alive:
        Initial boolean liveness mask (default: all alive).  Mutable during
        iteration via :meth:`set_alive` — the hook churn drivers use at
        forced group boundaries.
    breaks:
        Global wakeup indices at which a group boundary is forced and a
        (possibly empty) group is emitted, handing control back to the
        driver before the stream continues.
    chunk_events:
        Generator chunk size.  Part of the stream definition (see the
        module docstring); leave at the default outside of tests.
    """

    def __init__(
        self,
        graph: Adjacency,
        rng: np.random.Generator,
        *,
        max_events: int,
        alive: Optional[np.ndarray] = None,
        breaks: Optional[Sequence[int]] = None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if chunk_events <= 0:
            raise ValueError(f"chunk_events must be positive, got {chunk_events}")
        self._graph = graph
        self._rng = rng
        self._max_events = int(max_events)
        self._chunk = int(chunk_events)
        if alive is None:
            self._alive: List[bool] = [True] * graph.n
        else:
            self._alive = [bool(a) for a in np.asarray(alive, dtype=bool)]
        break_list = [] if breaks is None else [int(b) for b in breaks]
        self._breaks = deque(sorted(break_list))
        #: Wakeups consumed so far (including thinned dead-node wakeups).
        self.events = 0
        #: Simulated time of the last consumed wakeup.
        self.time = 0.0

    def set_alive(self, node: int, value: bool) -> None:
        """Toggle a node's liveness; effective from the next wakeup on."""
        self._alive[int(node)] = bool(value)

    def alive_mask(self) -> np.ndarray:
        """The current liveness mask as a boolean array."""
        return np.asarray(self._alive, dtype=bool)

    def groups(self) -> Iterator[EventGroup]:
        """Yield non-colliding event groups until the wakeup budget is spent.

        The final (possibly partial) group is flushed when the budget runs
        out; empty forced groups are emitted at break indices so the driver
        regains control even when no exchange happened in between.
        """
        n = self._graph.n
        scale = 1.0 / n
        seen = bytearray(n)
        cur_c: List[int] = []
        cur_t: List[int] = []
        openers: List[int] = []
        last_time = self.time

        def flush(forced: bool) -> EventGroup:
            c = np.asarray(cur_c, dtype=np.int64)
            t = np.asarray(cur_t, dtype=np.int64)
            if c.size:
                order = np.argsort(c)
                c = c[order]
                t = t[order]
            group = EventGroup(
                callers=c,
                targets=t,
                openers=np.asarray(openers, dtype=np.int64),
                end_time=last_time,
                end_index=self.events,
                forced=forced,
            )
            for node in cur_c:
                seen[node] = 0
            for node in cur_t:
                seen[node] = 0
            cur_c.clear()
            cur_t.clear()
            openers.clear()
            return group

        alive = self._alive
        while self.events < self._max_events:
            k = min(self._chunk, self._max_events - self.events)
            gaps = self._rng.exponential(scale, k)
            owners = self._rng.integers(0, n, size=k)
            targets = self._graph.sample_neighbors(owners, self._rng)
            times = (self.time + np.cumsum(gaps)).tolist()
            owners_l = owners.tolist()
            targets_l = targets.tolist()
            for j in range(k):
                while self._breaks and self._breaks[0] == self.events:
                    self._breaks.popleft()
                    yield flush(forced=True)
                self.events += 1
                self.time = times[j]
                owner = owners_l[j]
                if not alive[owner]:
                    continue
                callee = targets_l[j]
                openers.append(owner)
                if callee < 0 or not alive[callee]:
                    continue
                if seen[owner] or seen[callee]:
                    yield flush(forced=False)
                cur_c.append(owner)
                cur_t.append(callee)
                seen[owner] = 1
                seen[callee] = 1
                last_time = self.time
        if cur_c or openers:
            yield flush(forced=True)
