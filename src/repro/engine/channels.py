"""Per-step channel bookkeeping for the random phone call model.

In each synchronous step every participating node opens at most one *outgoing*
channel to a neighbour chosen uniformly at random; the same channel is an
*incoming* channel for the callee and can be used bidirectionally (push by the
caller, pull by the callee) during that step.  A node can therefore have at
most one outgoing channel but arbitrarily many incoming ones.

:func:`open_channels` performs the random choices for a whole step at once and
returns a :class:`ChannelSet`, which exposes both directions of the resulting
communication structure in CSR-like form so that protocols can vectorise their
push and pull transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graphs.adjacency import Adjacency

__all__ = ["ChannelSet", "open_channels"]


@dataclass(frozen=True)
class ChannelSet:
    """The set of channels opened in one synchronous step.

    Attributes
    ----------
    n_nodes:
        Number of nodes in the network.
    callers:
        Nodes that opened a channel this step (sorted, unique).
    targets:
        ``targets[i]`` is the callee of ``callers[i]``.
    outgoing:
        Dense array of length ``n_nodes``: the callee of each node's outgoing
        channel, or ``-1`` if the node opened no channel this step.  Built
        lazily on first access — the per-round hot path only needs the
        aligned ``callers``/``targets`` pair.
    """

    n_nodes: int
    callers: np.ndarray
    targets: np.ndarray
    _outgoing: Optional[np.ndarray] = None

    @property
    def outgoing(self) -> np.ndarray:
        if self._outgoing is None:
            out = np.full(self.n_nodes, -1, dtype=np.int64)
            out[self.callers] = self.targets
            object.__setattr__(self, "_outgoing", out)
        return self._outgoing

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def num_channels(self) -> int:
        """Number of channels opened this step."""
        return int(self.callers.size)

    def incoming_counts(self) -> np.ndarray:
        """Number of incoming channels per node."""
        counts = np.zeros(self.n_nodes, dtype=np.int64)
        if self.targets.size:
            np.add.at(counts, self.targets, 1)
        return counts

    def incoming_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(callees, callers)`` aligned arrays of all channels.

        ``callees[i]`` received an incoming channel from ``callers[i]``.  The
        pairs are sorted by callee, which groups each node's incoming channels
        contiguously.
        """
        if self.targets.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        order = np.argsort(self.targets, kind="stable")
        return self.targets[order], self.callers[order]

    def channels_into(self, node: int) -> np.ndarray:
        """Callers that opened a channel to ``node`` this step."""
        return self.callers[self.targets == node]

    def has_outgoing(self, node: int) -> bool:
        """Whether ``node`` opened a channel this step."""
        return bool(self.outgoing[node] >= 0)


def open_channels(
    graph: Adjacency,
    rng: np.random.Generator,
    *,
    participants: Optional[np.ndarray] = None,
    alive: Optional[np.ndarray] = None,
) -> ChannelSet:
    """Open one random outgoing channel for every participating node.

    Parameters
    ----------
    graph:
        The communication network.
    rng:
        Randomness source for the neighbour choices.
    participants:
        Nodes that open a channel this step.  Defaults to all nodes.
    alive:
        Optional boolean mask of alive nodes.  Failed nodes neither open
        channels nor can be reached: a channel whose callee is failed is still
        *opened* (and counted by the caller's ledger) but carries no usable
        endpoint, so it is excluded from the returned channel set — this
        mirrors non-malicious crash failures where the failed node simply does
        not communicate.

    Returns
    -------
    ChannelSet
        The channels successfully established this step.
    """
    if participants is None:
        participants = np.arange(graph.n, dtype=np.int64)
    else:
        participants = np.asarray(participants, dtype=np.int64)
    if alive is not None:
        participants = participants[alive[participants]]
    targets = graph.sample_neighbors(participants, rng)
    ok = targets >= 0
    if alive is not None and targets.size:
        ok &= np.where(targets >= 0, alive[np.clip(targets, 0, None)], False)
    callers = participants[ok]
    callees = targets[ok]
    return ChannelSet(n_nodes=graph.n, callers=callers, targets=callees)
