"""Optional compiled kernels for the packed-bitset hot path.

NumPy's fancy-indexing machinery moves every gathered row through fresh
temporaries, which caps the gossip kernel's throughput well below what the
hardware allows.  This module compiles a small C library once per machine
with the system C compiler and loads it through :mod:`ctypes`.  It exposes
two families of primitives:

*Serial kernels* — the swap-form full-round kernels (:func:`exchange`,
:func:`push_round`: build the round's incoming-sender CSR, write each
row's next state exactly once into the spare buffer, caller swaps — about
half the traffic of snapshot + read-modify-write), the order-independent
:func:`scatter_or` over an explicit snapshot, the word-sparse
:func:`frontier_scatter` pass used by
:class:`~repro.engine.knowledge.FrontierKnowledge`, and the fused
mask-and-popcount deficit :func:`recount_deficits`.

*Sharded (multithreaded) kernels* — ``*_mt`` variants of the same five
primitives that partition the *receiver rows* of a batch into disjoint
contiguous shards across a persistent worker pool (:func:`ensure_shards`).
Because shards partition receivers and every gather still strictly precedes
every write, the threaded kernels are bit-identical to the serial ones for
any shard count; see ``docs/parallelism.md`` for the determinism argument.
Callers do not pick a code path here — backend selection and per-batch
thread counts live in :mod:`repro.engine.backends`.

All kernel families run their word loops through a small set of
runtime-dispatched row primitives (OR-2, OR-accumulate, masked popcount,
frontier pair gather) with scalar, SSE2, AVX2 and AVX-512 variants
selected per CPU at load time (``repro_simd_set``); ``REPRO_DISABLE_SIMD``
pins the honest scalar forms, and :func:`set_simd_level` /
:func:`simd_active` expose the dispatch to Python.  The swap-form kernels
additionally accept a completion mask to fuse deficit recounts into the
round and come in saturation-filtered variants
(:func:`exchange_filtered`) that memcpy already-complete receiver rows
instead of re-ORing them — see ``docs/architecture.md``.

The build is strictly best-effort: if no compiler is present, the build
fails, or ``REPRO_DISABLE_CKERNEL`` is set in the environment, callers fall
back to the pure-NumPy implementations (which are semantically identical —
see ``tests/engine/test_kernel_equivalence.py``).  The shared library is
cached in a private per-user directory keyed on source hash, build flags
and CPU signature, so repeated imports pay nothing and heterogeneous
machines sharing a filesystem never load each other's tuned binaries.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "SIMD_LEVELS",
    "available",
    "block_round",
    "block_round_mt",
    "ensure_shards",
    "exchange",
    "exchange_filtered",
    "exchange_filtered_mt",
    "exchange_mt",
    "push_round",
    "push_round_mt",
    "frontier_scatter",
    "frontier_scatter_mt",
    "recount_deficits",
    "recount_deficits_mt",
    "scatter_or",
    "scatter_or_mt",
    "set_simd_level",
    "simd_active",
    "simd_detected",
    "simd_name",
]

_SOURCE = r"""
#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ *
 * Runtime-dispatched SIMD row primitives.
 *
 * Every kernel family below reduces to four row-sized operations:
 *
 *     or2      dst[w] = a[w] | b[w]          (swap-form first sender)
 *     oracc    dst[w] |= src[w]              (every other OR)
 *     missing  sum(popcount(mask & ~row))    (completion deficits)
 *     fgather  row/linear-index pair gather  (frontier pass 1)
 *
 * Each has a portable scalar form plus x86 vector forms compiled with
 * per-function target attributes (the TU itself is built WITHOUT
 * -march=native, so an "avx2" function really is AVX2 and nothing
 * wider).  repro_simd_set installs one level into the function
 * pointers; levels are 0=scalar, 1=sse2, 2=avx2, 3=avx512.  Dispatch
 * happens once per row, not per word, so the indirection is noise
 * next to the word traffic.  The scalar forms carry a no-vectorize
 * attribute so a level-0 run (REPRO_DISABLE_SIMD=1) is an honest
 * scalar control, not whatever auto-vectorization -O3 felt like.
 * ------------------------------------------------------------------ */

#if defined(__x86_64__) || defined(__i386__)
#define REPRO_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__GNUC__) && !defined(__clang__)
#define REPRO_SCALAR \
    __attribute__((optimize("no-tree-vectorize,no-tree-slp-vectorize")))
#else
#define REPRO_SCALAR
#endif

typedef void (*repro_or2_fn)(uint64_t *, const uint64_t *, const uint64_t *,
                             int64_t);
typedef void (*repro_oracc_fn)(uint64_t *, const uint64_t *, int64_t);
typedef int64_t (*repro_missing_fn)(const uint64_t *, const uint64_t *,
                                    int64_t);
typedef void (*repro_fgather_fn)(const uint64_t *, const int32_t *, int64_t,
                                 int64_t, uint64_t *, int64_t *);

static REPRO_SCALAR void repro_or2_scalar(uint64_t *dst, const uint64_t *a,
                                          const uint64_t *b, int64_t words) {
    for (int64_t w = 0; w < words; w++)
        dst[w] = a[w] | b[w];
}

static REPRO_SCALAR void repro_oracc_scalar(uint64_t *dst, const uint64_t *src,
                                            int64_t words) {
    for (int64_t w = 0; w < words; w++)
        dst[w] |= src[w];
}

static REPRO_SCALAR int64_t repro_missing_plain(const uint64_t *row,
                                                const uint64_t *mask,
                                                int64_t words) {
    int64_t missing = 0;
    for (int64_t w = 0; w < words; w++)
        missing += __builtin_popcountll(mask[w] & ~row[w]);
    return missing;
}

static REPRO_SCALAR void repro_fgather_scalar(const uint64_t *row,
                                              const int32_t *aw, int64_t m,
                                              int64_t base, uint64_t *val,
                                              int64_t *lin) {
    for (int64_t j = 0; j < m; j++) {
        const int64_t w = aw[j];
        val[j] = row[w];
        lin[j] = base + w;
    }
}

#ifdef REPRO_SIMD_X86

__attribute__((target("sse2"))) static void
repro_or2_sse2(uint64_t *dst, const uint64_t *a, const uint64_t *b,
               int64_t words) {
    int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m128i x0 = _mm_or_si128(_mm_loadu_si128((const __m128i *)(a + w)),
                                  _mm_loadu_si128((const __m128i *)(b + w)));
        __m128i x1 =
            _mm_or_si128(_mm_loadu_si128((const __m128i *)(a + w + 2)),
                         _mm_loadu_si128((const __m128i *)(b + w + 2)));
        _mm_storeu_si128((__m128i *)(dst + w), x0);
        _mm_storeu_si128((__m128i *)(dst + w + 2), x1);
    }
    for (; w < words; w++)
        dst[w] = a[w] | b[w];
}

__attribute__((target("sse2"))) static void
repro_oracc_sse2(uint64_t *dst, const uint64_t *src, int64_t words) {
    int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m128i x0 =
            _mm_or_si128(_mm_loadu_si128((const __m128i *)(dst + w)),
                         _mm_loadu_si128((const __m128i *)(src + w)));
        __m128i x1 =
            _mm_or_si128(_mm_loadu_si128((const __m128i *)(dst + w + 2)),
                         _mm_loadu_si128((const __m128i *)(src + w + 2)));
        _mm_storeu_si128((__m128i *)(dst + w), x0);
        _mm_storeu_si128((__m128i *)(dst + w + 2), x1);
    }
    for (; w < words; w++)
        dst[w] |= src[w];
}

__attribute__((target("avx2"))) static void
repro_or2_avx2(uint64_t *dst, const uint64_t *a, const uint64_t *b,
               int64_t words) {
    int64_t w = 0;
    for (; w + 8 <= words; w += 8) {
        __m256i x0 =
            _mm256_or_si256(_mm256_loadu_si256((const __m256i *)(a + w)),
                            _mm256_loadu_si256((const __m256i *)(b + w)));
        __m256i x1 =
            _mm256_or_si256(_mm256_loadu_si256((const __m256i *)(a + w + 4)),
                            _mm256_loadu_si256((const __m256i *)(b + w + 4)));
        _mm256_storeu_si256((__m256i *)(dst + w), x0);
        _mm256_storeu_si256((__m256i *)(dst + w + 4), x1);
    }
    for (; w < words; w++)
        dst[w] = a[w] | b[w];
}

__attribute__((target("avx2"))) static void
repro_oracc_avx2(uint64_t *dst, const uint64_t *src, int64_t words) {
    int64_t w = 0;
    for (; w + 8 <= words; w += 8) {
        __m256i x0 =
            _mm256_or_si256(_mm256_loadu_si256((const __m256i *)(dst + w)),
                            _mm256_loadu_si256((const __m256i *)(src + w)));
        __m256i x1 = _mm256_or_si256(
            _mm256_loadu_si256((const __m256i *)(dst + w + 4)),
            _mm256_loadu_si256((const __m256i *)(src + w + 4)));
        _mm256_storeu_si256((__m256i *)(dst + w), x0);
        _mm256_storeu_si256((__m256i *)(dst + w + 4), x1);
    }
    for (; w < words; w++)
        dst[w] |= src[w];
}

__attribute__((target("avx512f"))) static void
repro_or2_avx512(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                 int64_t words) {
    int64_t w = 0;
    for (; w + 16 <= words; w += 16) {
        __m512i x0 =
            _mm512_or_si512(_mm512_loadu_si512((const void *)(a + w)),
                            _mm512_loadu_si512((const void *)(b + w)));
        __m512i x1 =
            _mm512_or_si512(_mm512_loadu_si512((const void *)(a + w + 8)),
                            _mm512_loadu_si512((const void *)(b + w + 8)));
        _mm512_storeu_si512((void *)(dst + w), x0);
        _mm512_storeu_si512((void *)(dst + w + 8), x1);
    }
    for (; w < words; w++)
        dst[w] = a[w] | b[w];
}

__attribute__((target("avx512f"))) static void
repro_oracc_avx512(uint64_t *dst, const uint64_t *src, int64_t words) {
    int64_t w = 0;
    for (; w + 16 <= words; w += 16) {
        __m512i x0 =
            _mm512_or_si512(_mm512_loadu_si512((const void *)(dst + w)),
                            _mm512_loadu_si512((const void *)(src + w)));
        __m512i x1 =
            _mm512_or_si512(_mm512_loadu_si512((const void *)(dst + w + 8)),
                            _mm512_loadu_si512((const void *)(src + w + 8)));
        _mm512_storeu_si512((void *)(dst + w), x0);
        _mm512_storeu_si512((void *)(dst + w + 8), x1);
    }
    for (; w < words; w++)
        dst[w] |= src[w];
}

/* POPCNT is a scalar instruction (no vector lanes), so this variant is
 * installed whenever the CPU has it — including level 0, where it keeps
 * the scalar control honest about vectorization rather than measuring a
 * software-popcount regression. */
__attribute__((target("popcnt"))) static int64_t
repro_missing_popcnt(const uint64_t *row, const uint64_t *mask,
                     int64_t words) {
    int64_t missing = 0;
    for (int64_t w = 0; w < words; w++)
        missing += __builtin_popcountll(mask[w] & ~row[w]);
    return missing;
}

/* _mm512_andnot_si512(a, b) computes ~a & b, so the operand order below
 * yields mask & ~row. */
__attribute__((target("avx512f,avx512vpopcntdq"))) static int64_t
repro_missing_avx512(const uint64_t *row, const uint64_t *mask,
                     int64_t words) {
    int64_t w = 0;
    __m512i acc = _mm512_setzero_si512();
    for (; w + 8 <= words; w += 8) {
        __m512i d = _mm512_loadu_si512((const void *)(row + w));
        __m512i m = _mm512_loadu_si512((const void *)(mask + w));
        acc = _mm512_add_epi64(acc,
                               _mm512_popcnt_epi64(_mm512_andnot_si512(d, m)));
    }
    int64_t missing = _mm512_reduce_add_epi64(acc);
    for (; w < words; w++)
        missing += __builtin_popcountll(mask[w] & ~row[w]);
    return missing;
}

__attribute__((target("avx2"))) static void
repro_fgather_avx2(const uint64_t *row, const int32_t *aw, int64_t m,
                   int64_t base, uint64_t *val, int64_t *lin) {
    int64_t j = 0;
    const __m256i vbase = _mm256_set1_epi64x(base);
    for (; j + 4 <= m; j += 4) {
        __m128i idx = _mm_loadu_si128((const __m128i *)(aw + j));
        __m256i v = _mm256_i32gather_epi64((const long long *)row, idx, 8);
        __m256i l = _mm256_add_epi64(vbase, _mm256_cvtepi32_epi64(idx));
        _mm256_storeu_si256((__m256i *)(val + j), v);
        _mm256_storeu_si256((__m256i *)(lin + j), l);
    }
    for (; j < m; j++) {
        const int64_t w = aw[j];
        val[j] = row[w];
        lin[j] = base + w;
    }
}

#endif /* REPRO_SIMD_X86 */

static repro_or2_fn repro_or2 = repro_or2_scalar;
static repro_oracc_fn repro_oracc = repro_oracc_scalar;
static repro_missing_fn repro_missing = repro_missing_plain;
static repro_fgather_fn repro_fgather = repro_fgather_scalar;
static int repro_simd_level = 0;

int repro_simd_detect(void) {
#ifdef REPRO_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vpopcntdq"))
        return 3;
    if (__builtin_cpu_supports("avx2"))
        return 2;
    if (__builtin_cpu_supports("sse2"))
        return 1;
#endif
    return 0;
}

/* Install one SIMD level (clamped to what the CPU supports) into the
 * dispatch pointers; returns the level actually installed.  Must not be
 * called while sharded jobs are in flight — in practice it runs once at
 * import and from tests that own the process. */
int repro_simd_set(int level) {
    const int cap = repro_simd_detect();
    if (level > cap)
        level = cap;
    if (level < 0)
        level = 0;
    repro_or2 = repro_or2_scalar;
    repro_oracc = repro_oracc_scalar;
    repro_missing = repro_missing_plain;
    repro_fgather = repro_fgather_scalar;
#ifdef REPRO_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("popcnt"))
        repro_missing = repro_missing_popcnt;
    if (level >= 1) {
        repro_or2 = repro_or2_sse2;
        repro_oracc = repro_oracc_sse2;
    }
    if (level >= 2) {
        repro_or2 = repro_or2_avx2;
        repro_oracc = repro_oracc_avx2;
        repro_fgather = repro_fgather_avx2;
    }
    if (level >= 3) {
        repro_or2 = repro_or2_avx512;
        repro_oracc = repro_oracc_avx512;
        repro_missing = repro_missing_avx512;
    }
#endif
    repro_simd_level = level;
    return level;
}

int repro_simd_active(void) { return repro_simd_level; }

__attribute__((constructor)) static void repro_simd_init(void) {
    repro_simd_set(repro_simd_detect());
}

/* ------------------------------------------------------------------ *
 * Full-round kernels in "swap" form.
 *
 * A naive full round snapshots the matrix (memcpy) and then RMWs every
 * receiver row — about 8·n·words words of memory traffic for a full
 * push-pull round.  The swap form instead builds the per-row incoming
 * sender lists (a CSR over the round's channels, O(k) integer work) and
 * writes the complete NEXT state into `next`:
 *
 *     next[r] = cur[r] | OR(cur[p] for every sender p of r)
 *
 * Each row is read and written exactly once (rows with no senders are a
 * straight memcpy), `cur` is never written, and the caller swaps the two
 * buffers afterwards — roughly half the traffic of snapshot + RMW, and
 * trivially shardable because every row's result depends only on the
 * read-only `cur`.  OR is commutative, so the result is independent of
 * both partner order and row processing order: bit-identical to the
 * sequential snapshot semantics.
 * ------------------------------------------------------------------ */

/* Incoming-sender CSR for one round.  Edge i informs dst[i] from src[i];
 * with `both` set each channel also informs src[i] from dst[i] (the pull
 * direction of an exchange).  `off` has n+1 slots and `adj` one slot per
 * edge.  After the fill pass off[r] is the END of row r's slice (the
 * classic cursor trick), so row r spans [r ? off[r-1] : 0, off[r]). */
static void repro_sender_csr(const int64_t *src, const int64_t *dst,
                             int64_t k, int64_t n, int both,
                             int64_t *off, int64_t *adj) {
    memset(off, 0, (size_t)(n + 1) * sizeof(int64_t));
    for (int64_t i = 0; i < k; i++) {
        off[dst[i]]++;
        if (both)
            off[src[i]]++;
    }
    int64_t run = 0;
    for (int64_t r = 0; r < n; r++) {
        const int64_t c = off[r];
        off[r] = run;
        run += c;
    }
    off[n] = run;
    for (int64_t i = 0; i < k; i++) {
        adj[off[dst[i]]++] = src[i];
        if (both)
            adj[off[src[i]]++] = dst[i];
    }
}

/* `mask`/`deficits` (both NULLable, must be set together) fuse the
 * completion recount into the round: rows that get OR-updated have their
 * deficit recomputed while the freshly written row is still in cache.
 * The semantics are IN-OUT — memcpy'd rows are NOT written, because an
 * unchanged row's previously recorded deficit is still correct — which
 * is what lets the caller drop its separate recount pass entirely. */
static void repro_swap_rows(const uint64_t *cur, uint64_t *next,
                            const int64_t *off, const int64_t *adj,
                            int64_t lo, int64_t hi, int64_t words,
                            const uint64_t *mask, int64_t *deficits) {
    for (int64_t r = lo; r < hi; r++) {
        const int64_t start = r ? off[r - 1] : 0;
        const int64_t end = off[r];
        const uint64_t *src = cur + r * words;
        uint64_t *dst = next + r * words;
        if (start == end) {
            memcpy(dst, src, (size_t)words * sizeof(uint64_t));
            continue;
        }
        repro_or2(dst, src, cur + adj[start] * words, words);
        for (int64_t j = start + 1; j < end; j++)
            repro_oracc(dst, cur + adj[j] * words, words);
        if (deficits != NULL)
            deficits[r] = repro_missing(dst, mask, words);
    }
}

/* Saturation-filtered CSR build.  Edges into an already-complete receiver
 * are dropped outright (its row cannot change).  Edges FROM a complete
 * sender mark the receiver "promoted": a complete row equals the full
 * mask row exactly (subset invariant), so ORing it in is equivalent to
 * assigning the full row — the swap pass handles promoted rows with one
 * memcpy instead of any ORs.  Count and fill passes use the identical
 * predicate, so the cursors line up; a promoted row may still own adj
 * entries from its incomplete senders, which the swap pass ignores
 * (their contribution is a subset of the full row). */
static void repro_sender_csr_f(const int64_t *src, const int64_t *dst,
                               int64_t k, int64_t n, int both,
                               const uint8_t *complete, uint8_t *promoted,
                               int64_t *off, int64_t *adj) {
    memset(off, 0, (size_t)(n + 1) * sizeof(int64_t));
    for (int64_t i = 0; i < k; i++) {
        const int64_t s = src[i], d = dst[i];
        if (!complete[d]) {
            if (complete[s])
                promoted[d] = 1;
            else
                off[d]++;
        }
        if (both && !complete[s]) {
            if (complete[d])
                promoted[s] = 1;
            else
                off[s]++;
        }
    }
    int64_t run = 0;
    for (int64_t r = 0; r < n; r++) {
        const int64_t c = off[r];
        off[r] = run;
        run += c;
    }
    off[n] = run;
    for (int64_t i = 0; i < k; i++) {
        const int64_t s = src[i], d = dst[i];
        if (!complete[d] && !complete[s])
            adj[off[d]++] = s;
        if (both && !complete[s] && !complete[d])
            adj[off[s]++] = d;
    }
}

/* Swap pass over a filtered CSR.  Promoted rows are assigned the full
 * mask row (deficit 0); complete rows have no edges by construction and
 * fall through to the memcpy path, which copies their (already full)
 * row unchanged.  Bit-identical to the unfiltered pass over the same
 * channels — see docs/architecture.md for the argument. */
static void repro_swap_rows_f(const uint64_t *cur, uint64_t *next,
                              const int64_t *off, const int64_t *adj,
                              int64_t lo, int64_t hi, int64_t words,
                              const uint8_t *promoted,
                              const uint64_t *full_row,
                              const uint64_t *mask, int64_t *deficits) {
    for (int64_t r = lo; r < hi; r++) {
        uint64_t *dst = next + r * words;
        if (promoted[r]) {
            memcpy(dst, full_row, (size_t)words * sizeof(uint64_t));
            if (deficits != NULL)
                deficits[r] = 0;
            continue;
        }
        const int64_t start = r ? off[r - 1] : 0;
        const int64_t end = off[r];
        const uint64_t *src = cur + r * words;
        if (start == end) {
            memcpy(dst, src, (size_t)words * sizeof(uint64_t));
            continue;
        }
        repro_or2(dst, src, cur + adj[start] * words, words);
        for (int64_t j = start + 1; j < end; j++)
            repro_oracc(dst, cur + adj[j] * words, words);
        if (deficits != NULL)
            deficits[r] = repro_missing(dst, mask, words);
    }
}

/* One synchronous push-pull round: for every channel (callers[i],
 * targets[i]) both endpoints learn each other's start-of-round row.
 * Writes the full next state into `next`; the caller swaps buffers. */
void repro_exchange(const uint64_t *cur, uint64_t *next,
                    const int64_t *callers, const int64_t *targets,
                    int64_t k, int64_t n, int64_t words,
                    int64_t *off, int64_t *adj,
                    const uint64_t *mask, int64_t *deficits) {
    repro_sender_csr(callers, targets, k, n, 1, off, adj);
    repro_swap_rows(cur, next, off, adj, 0, n, words, mask, deficits);
}

/* Saturation-filtered push-pull round: `complete` (n uint8 flags) marks
 * rows already holding every required bit, `promoted` (n uint8, caller
 * zeroes it) reports rows assigned the `full_row` mask row this round,
 * and the fused deficit write covers OR-updated and promoted rows. */
void repro_exchange_f(const uint64_t *cur, uint64_t *next,
                      const int64_t *callers, const int64_t *targets,
                      int64_t k, int64_t n, int64_t words,
                      int64_t *off, int64_t *adj,
                      const uint8_t *complete, uint8_t *promoted,
                      const uint64_t *full_row,
                      const uint64_t *mask, int64_t *deficits) {
    repro_sender_csr_f(callers, targets, k, n, 1, complete, promoted, off,
                       adj);
    repro_swap_rows_f(cur, next, off, adj, 0, n, words, promoted, full_row,
                      mask, deficits);
}

/* One-directional variant: dst[i] learns src[i]'s start-of-round row. */
void repro_push_round(const uint64_t *cur, uint64_t *next,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t n, int64_t words,
                      int64_t *off, int64_t *adj) {
    repro_sender_csr(src, dst, k, n, 0, off, adj);
    repro_swap_rows(cur, next, off, adj, 0, n, words, NULL, NULL);
}

/* OR the listed gathered rows into each local row of `block`: row r gains
 * OR(gathered[adj[j]]) over its CSR slice.  Unlike the swap kernels this
 * mutates `block` in place — rows without senders are never touched — which
 * is what the paged layout wants: `gathered` is already snapshot storage
 * (the round's unique sender rows, copied before any write), so in-place
 * ORs are order-independent and skipped rows cost nothing. */
static void repro_or_rows(uint64_t *block, const uint64_t *gathered,
                          const int64_t *off, const int64_t *adj,
                          int64_t lo, int64_t hi, int64_t words) {
    for (int64_t r = lo; r < hi; r++) {
        const int64_t start = r ? off[r - 1] : 0;
        const int64_t end = off[r];
        if (start == end)
            continue;
        uint64_t *dst = block + r * words;
        for (int64_t j = start; j < end; j++)
            repro_oracc(dst, gathered + adj[j] * words, words);
    }
}

/* One block of a paged round: edge i ORs gathered[src[i]] into block-local
 * row dst[i].  `rows` is the block's row count; `off` needs rows + 1 slots
 * and `adj` k slots.  Bit-identical to repro_scatter_or over the same edges
 * (OR commutes); the CSR touches each receiver row exactly once. */
void repro_block_round(uint64_t *block, const uint64_t *gathered,
                       const int64_t *src, const int64_t *dst,
                       int64_t k, int64_t rows, int64_t words,
                       int64_t *off, int64_t *adj) {
    repro_sender_csr(src, dst, k, rows, 0, off, adj);
    repro_or_rows(block, gathered, off, adj, 0, rows, words);
}

/* OR source[src[i]] into data[dst[i]] for all i.  `source` must be a
 * start-of-step snapshot (disjoint storage from `data`), which makes the
 * result independent of processing order even with duplicate receivers. */
void repro_scatter_or(uint64_t *data, const uint64_t *source,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t words) {
    for (int64_t i = 0; i < k; i++)
        repro_oracc(data + dst[i] * words, source + src[i] * words, words);
}

/* The frontier (sparsity-aware) transmission pass.  Every sender row lists
 * its nonzero words in `active` (row-major, `cap` slots per row, `nnz[s]`
 * valid); a transmission contributes only those (word, value) pairs.
 *
 * Pass 1 gathers all pair values and linear targets into the caller-sized
 * buffers BEFORE any write — the snapshot-read / live-write semantics of a
 * synchronous round — so duplicate targets merge order-independently.
 * Pass 2 scatters and maintains the frontier bookkeeping in place: a newly
 * activated word is appended to the receiver's list, and a receiver pushed
 * past `cap` ratchets onto the dense path (dense_rows).  The bookkeeping
 * only steers future path decisions; the data result is bit-identical to
 * the dense kernels. */
void repro_frontier_scatter(uint64_t *data, int32_t *active, int64_t *nnz,
                            uint8_t *word_active, uint8_t *dense_rows,
                            int64_t cap, int64_t words,
                            const int64_t *src, const int64_t *dst, int64_t k,
                            uint64_t *val_buf, int64_t *lin_buf) {
    int64_t p = 0;
    for (int64_t i = 0; i < k; i++) {
        const int64_t s = src[i];
        const int64_t m = nnz[s];
        repro_fgather(data + s * words, active + s * cap, m, dst[i] * words,
                      val_buf + p, lin_buf + p);
        p += m;
    }
    for (int64_t q = 0; q < p; q++) {
        const int64_t lin = lin_buf[q];
        data[lin] |= val_buf[q];
        if (!word_active[lin]) {
            /* Fresh activation: rare once a round is under way, so the
             * divide and the list append stay off the common path.  (The
             * mask is also set for dense-flagged rows — harmless, it is
             * never read for them again.) */
            word_active[lin] = 1;
            const int64_t r = lin / words;
            if (!dense_rows[r]) {
                if (nnz[r] < cap) {
                    active[r * cap + nnz[r]] = (int32_t)(lin - r * words);
                    nnz[r] += 1;
                } else {
                    dense_rows[r] = 1;
                }
            }
        }
    }
}

/* deficits[i] = popcount(mask & ~data[rows[i]]) — the number of required
 * message bits still missing from each listed row. */
void repro_recount(const uint64_t *data, const uint64_t *mask,
                   const int64_t *rows, int64_t k, int64_t words,
                   int64_t *deficits) {
    for (int64_t i = 0; i < k; i++)
        deficits[i] = repro_missing(data + rows[i] * words, mask, words);
}

/* ==================================================================== *
 * Persistent worker pool and receiver-sharded (multithreaded) kernels.
 *
 * Every *_mt kernel partitions the RECEIVER rows of its batch into
 * `nshards` disjoint contiguous ranges; shard t applies exactly the
 * writes whose target row lies in [n*t/T, n*(t+1)/T).  All gathers
 * (snapshot copies, frontier pair-value reads) run as a separate pool
 * job that completes before the scatter job starts, so threads only
 * read state no thread is writing, and each row is written by exactly
 * one thread in the same relative order the serial kernel would use.
 * The results — row data and frontier bookkeeping alike — are therefore
 * bit-identical to the serial kernels for every shard count.
 *
 * The pool is spawned lazily (repro_pool_ensure), never shrinks, and
 * its detached workers sleep on a condition variable between jobs.  The
 * calling thread always executes shard 0 itself, so a pool of W workers
 * serves up to W + 1 shards.
 * ==================================================================== */

typedef struct {
    void (*fn)(int64_t tid, int64_t nshards, void *arg);
    void *arg;
    int64_t nshards;
} repro_job;

static pthread_mutex_t repro_pool_mu = PTHREAD_MUTEX_INITIALIZER;
/* Serializes job submission: the pool has a single job slot, and the
 * *_mt kernels may be invoked from several Python threads at once
 * (ctypes releases the GIL), e.g. protocol runs inside a
 * ThreadPoolExecutor.  Each sharded job runs to completion under this
 * lock; the serial kernels stay lock-free and reentrant. */
static pthread_mutex_t repro_caller_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t repro_pool_wake = PTHREAD_COND_INITIALIZER;
static pthread_cond_t repro_pool_done = PTHREAD_COND_INITIALIZER;
static repro_job repro_pool_job;
static uint64_t repro_pool_gen = 0;
static int64_t repro_pool_workers = 0;
static int64_t repro_pool_pending = 0;

typedef struct {
    int64_t wid;   /* worker wid runs shard wid+1 */
    uint64_t gen;  /* pool generation at creation time */
} repro_worker_init;

static void *repro_worker(void *arg) {
    repro_worker_init *init = (repro_worker_init *)arg;
    const int64_t wid = init->wid;
    /* Start from the generation current when this worker was registered
     * (captured under the pool mutex): jobs posted before then did not
     * count this worker in repro_pool_pending, so acknowledging them
     * would double-decrement and let a later job "complete" while a
     * shard is still writing.  Jobs posted after registration do count
     * it and are correctly picked up as gen > seen. */
    uint64_t seen = init->gen;
    free(init);
    pthread_mutex_lock(&repro_pool_mu);
    for (;;) {
        while (repro_pool_gen == seen)
            pthread_cond_wait(&repro_pool_wake, &repro_pool_mu);
        seen = repro_pool_gen;
        repro_job job = repro_pool_job;
        pthread_mutex_unlock(&repro_pool_mu);
        if (wid + 1 < job.nshards)
            job.fn(wid + 1, job.nshards, job.arg);
        pthread_mutex_lock(&repro_pool_mu);
        if (--repro_pool_pending == 0)
            pthread_cond_signal(&repro_pool_done);
    }
    return NULL;
}

/* Pool threads do not survive fork(2).  Serialize forks against pool
 * state with the standard atfork protocol and reset the (now threadless)
 * child's pool so its first ensure call re-spawns workers from scratch. */
static void repro_pool_atfork_prepare(void) {
    pthread_mutex_lock(&repro_caller_mu); /* no job in flight past here */
    pthread_mutex_lock(&repro_pool_mu);
}

static void repro_pool_atfork_parent(void) {
    pthread_mutex_unlock(&repro_pool_mu);
    pthread_mutex_unlock(&repro_caller_mu);
}

static void repro_pool_atfork_child(void) {
    pthread_mutex_init(&repro_pool_mu, NULL);
    pthread_mutex_init(&repro_caller_mu, NULL);
    pthread_cond_init(&repro_pool_wake, NULL);
    pthread_cond_init(&repro_pool_done, NULL);
    repro_pool_workers = 0;
    repro_pool_pending = 0;
    repro_pool_gen = 0;
}

static int repro_pool_atfork_registered = 0;

/* Grow the pool to at least `workers` detached threads; returns the count
 * actually available (thread creation is best-effort). */
int64_t repro_pool_ensure(int64_t workers) {
    pthread_mutex_lock(&repro_pool_mu);
    if (!repro_pool_atfork_registered) {
        if (pthread_atfork(repro_pool_atfork_prepare, repro_pool_atfork_parent,
                           repro_pool_atfork_child) != 0) {
            /* No fork protection -> no worker threads. */
            pthread_mutex_unlock(&repro_pool_mu);
            return 0;
        }
        repro_pool_atfork_registered = 1;
    }
    while (repro_pool_workers < workers) {
        repro_worker_init *init =
            (repro_worker_init *)malloc(sizeof(repro_worker_init));
        if (init == NULL)
            break;
        init->wid = repro_pool_workers;
        init->gen = repro_pool_gen;
        pthread_t th;
        pthread_attr_t attr;
        if (pthread_attr_init(&attr) != 0) {
            free(init);
            break;
        }
        pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
        int rc = pthread_create(&th, &attr, repro_worker, init);
        pthread_attr_destroy(&attr);
        if (rc != 0) {
            free(init);
            break;
        }
        repro_pool_workers++;
    }
    int64_t have = repro_pool_workers;
    pthread_mutex_unlock(&repro_pool_mu);
    return have;
}

/* Run one job over `nshards` shards: the calling thread takes shard 0,
 * pool workers the rest.  Every worker (even idle ones) acknowledges the
 * job before the next one can be posted, so generations never skip.
 * Caller must guarantee nshards <= repro_pool_workers + 1. */
static void repro_run_sharded(void (*fn)(int64_t, int64_t, void *),
                              void *arg, int64_t nshards) {
    pthread_mutex_lock(&repro_caller_mu);
    pthread_mutex_lock(&repro_pool_mu);
    repro_pool_job.fn = fn;
    repro_pool_job.arg = arg;
    repro_pool_job.nshards = nshards;
    repro_pool_pending = repro_pool_workers;
    repro_pool_gen++;
    pthread_cond_broadcast(&repro_pool_wake);
    pthread_mutex_unlock(&repro_pool_mu);
    fn(0, nshards, arg);
    pthread_mutex_lock(&repro_pool_mu);
    while (repro_pool_pending != 0)
        pthread_cond_wait(&repro_pool_done, &repro_pool_mu);
    pthread_mutex_unlock(&repro_pool_mu);
    pthread_mutex_unlock(&repro_caller_mu);
}

static void repro_shard_range(int64_t total, int64_t tid, int64_t nshards,
                              int64_t *lo, int64_t *hi) {
    *lo = total * tid / nshards;
    *hi = total * (tid + 1) / nshards;
}

typedef struct {
    uint64_t *data;
    const uint64_t *source;
    const int64_t *src;
    const int64_t *dst;
    int64_t k, n, words;
} repro_scatter_args;

static void repro_scatter_shard(int64_t tid, int64_t T, void *p) {
    repro_scatter_args *a = (repro_scatter_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    const int64_t words = a->words;
    for (int64_t i = 0; i < a->k; i++) {
        const int64_t d = a->dst[i];
        if (d < lo || d >= hi)
            continue;
        uint64_t *dr = a->data + d * words;
        const uint64_t *sr = a->source + a->src[i] * words;
        for (int64_t w = 0; w < words; w++)
            dr[w] |= sr[w];
    }
}

void repro_scatter_or_mt(uint64_t *data, const uint64_t *source,
                         const int64_t *src, const int64_t *dst,
                         int64_t k, int64_t n, int64_t words,
                         int64_t nshards) {
    repro_scatter_args a = {data, source, src, dst, k, n, words};
    repro_run_sharded(repro_scatter_shard, &a, nshards);
}

typedef struct {
    const uint64_t *cur;
    uint64_t *next;
    const int64_t *off;
    const int64_t *adj;
    int64_t n, words;
    const uint8_t *promoted; /* non-NULL selects the filtered row pass */
    const uint64_t *full_row;
    const uint64_t *mask;
    int64_t *deficits;
} repro_swap_args;

static void repro_swap_shard(int64_t tid, int64_t T, void *p) {
    repro_swap_args *a = (repro_swap_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    if (a->promoted != NULL)
        repro_swap_rows_f(a->cur, a->next, a->off, a->adj, lo, hi, a->words,
                          a->promoted, a->full_row, a->mask, a->deficits);
    else
        repro_swap_rows(a->cur, a->next, a->off, a->adj, lo, hi, a->words,
                        a->mask, a->deficits);
}

/* The CSR build is O(k) integer work — serial on the calling thread —
 * and the row pass shards over disjoint row ranges reading only the
 * immutable `cur` (deficit writes land in the shard's own rows), so
 * every shard count produces identical bits. */
void repro_exchange_mt(const uint64_t *cur, uint64_t *next,
                       const int64_t *callers, const int64_t *targets,
                       int64_t k, int64_t n, int64_t words,
                       int64_t *off, int64_t *adj,
                       const uint64_t *mask, int64_t *deficits,
                       int64_t nshards) {
    repro_sender_csr(callers, targets, k, n, 1, off, adj);
    repro_swap_args a = {cur,  next, off,  adj,     n,
                         words, NULL, NULL, mask, deficits};
    repro_run_sharded(repro_swap_shard, &a, nshards);
}

void repro_exchange_f_mt(const uint64_t *cur, uint64_t *next,
                         const int64_t *callers, const int64_t *targets,
                         int64_t k, int64_t n, int64_t words,
                         int64_t *off, int64_t *adj,
                         const uint8_t *complete, uint8_t *promoted,
                         const uint64_t *full_row,
                         const uint64_t *mask, int64_t *deficits,
                         int64_t nshards) {
    repro_sender_csr_f(callers, targets, k, n, 1, complete, promoted, off,
                       adj);
    repro_swap_args a = {cur,   next,     off,      adj,  n,
                         words, promoted, full_row, mask, deficits};
    repro_run_sharded(repro_swap_shard, &a, nshards);
}

void repro_push_round_mt(const uint64_t *cur, uint64_t *next,
                         const int64_t *src, const int64_t *dst,
                         int64_t k, int64_t n, int64_t words,
                         int64_t *off, int64_t *adj, int64_t nshards) {
    repro_sender_csr(src, dst, k, n, 0, off, adj);
    repro_swap_args a = {cur,  next, off,  adj,  n,
                        words, NULL, NULL, NULL, NULL};
    repro_run_sharded(repro_swap_shard, &a, nshards);
}

typedef struct {
    uint64_t *block;
    const uint64_t *gathered;
    const int64_t *off;
    const int64_t *adj;
    int64_t rows, words;
} repro_block_round_args;

static void repro_block_round_shard(int64_t tid, int64_t T, void *p) {
    repro_block_round_args *a = (repro_block_round_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->rows, tid, T, &lo, &hi);
    repro_or_rows(a->block, a->gathered, a->off, a->adj, lo, hi, a->words);
}

/* Sharded block round: serial CSR build, then the in-place OR pass shards
 * over disjoint local-row ranges reading only the immutable gathered pool —
 * bit-identical to repro_block_round at every shard count. */
void repro_block_round_mt(uint64_t *block, const uint64_t *gathered,
                          const int64_t *src, const int64_t *dst,
                          int64_t k, int64_t rows, int64_t words,
                          int64_t *off, int64_t *adj, int64_t nshards) {
    repro_sender_csr(src, dst, k, rows, 0, off, adj);
    repro_block_round_args a = {block, gathered, off, adj, rows, words};
    repro_run_sharded(repro_block_round_shard, &a, nshards);
}

typedef struct {
    uint64_t *data;
    int32_t *active;
    int64_t *nnz;
    uint8_t *word_active;
    uint8_t *dense_rows;
    int64_t cap, words, n, k, p;
    const int64_t *src;
    const int64_t *dst;
    uint64_t *val_buf;
    int64_t *lin_buf;
    const int64_t *off;
} repro_frontier_args;

static void repro_frontier_gather_shard(int64_t tid, int64_t T, void *pa) {
    repro_frontier_args *a = (repro_frontier_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->k, tid, T, &lo, &hi);
    for (int64_t i = lo; i < hi; i++) {
        const int64_t s = a->src[i];
        repro_fgather(a->data + s * a->words, a->active + s * a->cap,
                      a->nnz[s], a->dst[i] * a->words,
                      a->val_buf + a->off[i], a->lin_buf + a->off[i]);
    }
}

static void repro_frontier_scatter_shard(int64_t tid, int64_t T, void *pa) {
    repro_frontier_args *a = (repro_frontier_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    /* Row r lies in [lo, hi) iff its linear word index lies in
     * [lo*words, hi*words) — no divide on the filter path. */
    const int64_t lo_lin = lo * a->words, hi_lin = hi * a->words;
    for (int64_t q = 0; q < a->p; q++) {
        const int64_t lin = a->lin_buf[q];
        if (lin < lo_lin || lin >= hi_lin)
            continue;
        a->data[lin] |= a->val_buf[q];
        if (!a->word_active[lin]) {
            a->word_active[lin] = 1;
            const int64_t r = lin / a->words;
            if (!a->dense_rows[r]) {
                if (a->nnz[r] < a->cap) {
                    a->active[r * a->cap + a->nnz[r]] =
                        (int32_t)(lin - r * a->words);
                    a->nnz[r] += 1;
                } else {
                    a->dense_rows[r] = 1;
                }
            }
        }
    }
}

/* Sharded frontier pass.  Pair offsets per transmission are a serial O(k)
 * prefix sum (cheap next to the word traffic); the pair gather then runs
 * sharded over transmissions (disjoint buffer slices), and the scatter +
 * bookkeeping run sharded over receiver rows.  A shard scans all pairs
 * and skips foreign rows, so every row's pairs are processed in the same
 * ascending order as the serial kernel — bookkeeping is bit-identical. */
void repro_frontier_scatter_mt(uint64_t *data, int32_t *active, int64_t *nnz,
                               uint8_t *word_active, uint8_t *dense_rows,
                               int64_t cap, int64_t words, int64_t n,
                               const int64_t *src, const int64_t *dst,
                               int64_t k, uint64_t *val_buf, int64_t *lin_buf,
                               int64_t nshards) {
    int64_t *off = (int64_t *)malloc((size_t)k * sizeof(int64_t));
    if (off == NULL) { /* out of memory: the serial kernel needs no offsets */
        repro_frontier_scatter(data, active, nnz, word_active, dense_rows,
                               cap, words, src, dst, k, val_buf, lin_buf);
        return;
    }
    int64_t p = 0;
    for (int64_t i = 0; i < k; i++) {
        off[i] = p;
        p += nnz[src[i]];
    }
    repro_frontier_args a = {data, active,  nnz, word_active, dense_rows,
                             cap,  words,   n,   k,           p,
                             src,  dst,     val_buf, lin_buf, off};
    repro_run_sharded(repro_frontier_gather_shard, &a, nshards);
    repro_run_sharded(repro_frontier_scatter_shard, &a, nshards);
    free(off);
}

typedef struct {
    const uint64_t *data;
    const uint64_t *mask;
    const int64_t *rows;
    int64_t k, words;
    int64_t *deficits;
} repro_recount_args;

static void repro_recount_shard(int64_t tid, int64_t T, void *pa) {
    repro_recount_args *a = (repro_recount_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->k, tid, T, &lo, &hi);
    for (int64_t i = lo; i < hi; i++)
        a->deficits[i] =
            repro_missing(a->data + a->rows[i] * a->words, a->mask, a->words);
}

void repro_recount_mt(const uint64_t *data, const uint64_t *mask,
                      const int64_t *rows, int64_t k, int64_t words,
                      int64_t *deficits, int64_t nshards) {
    repro_recount_args a = {data, mask, rows, k, words, deficits};
    repro_run_sharded(repro_recount_shard, &a, nshards);
}
"""


def _cpu_signature() -> str:
    """A machine identifier for the cache key.

    The SIMD code paths are selected at *runtime*, so the binary itself is
    portable across x86-64 machines — but it is tuned with ``-mtune=native``
    and the safest policy for a cache shared across heterogeneous CPUs
    (e.g. TMPDIR or HOME on a cluster filesystem) is still one binary per
    microarchitecture.  The CPU feature flags are the closest portable
    proxy.
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    parts.append(line)
                    break
    except OSError:
        parts.append(platform.processor())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:8]


def _cache_dir(digest: str) -> Optional[str]:
    """A private, user-owned directory to build and load the library from.

    ``ctypes.CDLL`` executes code from the returned path, so it must not be
    attacker-preparable: prefer ``~/.cache``, fall back to a per-user temp
    directory, create it ``0700``, and refuse paths not owned by us or
    writable by others.
    """
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - exotic environments
        user = f"uid{os.getuid()}" if hasattr(os, "getuid") else "unknown"
    home_cache = os.path.join(os.path.expanduser("~"), ".cache")
    base = home_cache if os.path.isdir(home_cache) else tempfile.gettempdir()
    cache_dir = os.path.join(base, f"repro-ckernel-{user}-{digest}")
    try:
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid"):
            st = os.stat(cache_dir)
            if st.st_uid != os.getuid() or (st.st_mode & 0o022):
                return None
    except OSError:
        return None
    return cache_dir


#: Build flags.  Deliberately NOT ``-march=native``: the command-line ISA
#: set is additive with per-function ``target`` attributes, so with
#: ``-march=native`` an "avx2" dispatch variant could legally be compiled
#: with AVX-512 instructions and the per-level timings (and the scalar
#: control) would lie.  ``-mtune=native`` keeps scheduling tuned for the
#: build host without widening any function's ISA.
_CFLAGS = ("-O3", "-mtune=native", "-pthread", "-shared", "-fPIC")


def _build() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(
        ("|".join(_CFLAGS) + "\n" + _SOURCE).encode()
    ).hexdigest()[:16]
    cache_dir = _cache_dir(f"{digest}-{_cpu_signature()}")
    if cache_dir is None:
        return None
    lib_path = os.path.join(cache_dir, "libreprokernel.so")
    try:
        if not os.path.exists(lib_path):
            src_path = os.path.join(cache_dir, "kernel.c")
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_path = lib_path + f".tmp{os.getpid()}"
            subprocess.run(
                [compiler, *_CFLAGS, src_path, "-o", tmp_path],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)
        lib = ctypes.CDLL(lib_path)
    except Exception:
        return None
    u64p = ctypes.POINTER(ctypes.c_uint64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i64 = ctypes.c_int64
    lib.repro_scatter_or.argtypes = [u64p, u64p, i64p, i64p, i64, i64]
    lib.repro_scatter_or.restype = None
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i32p = ctypes.POINTER(ctypes.c_int32)
    lib.repro_frontier_scatter.argtypes = [
        u64p, i32p, i64p, u8p, u8p, i64, i64, i64p, i64p, i64, u64p, i64p,
    ]
    lib.repro_frontier_scatter.restype = None
    lib.repro_recount.argtypes = [u64p, u64p, i64p, i64, i64, i64p]
    lib.repro_recount.restype = None
    lib.repro_exchange.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, u64p, i64p,
    ]
    lib.repro_exchange.restype = None
    lib.repro_exchange_f.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p,
        u8p, u8p, u64p, u64p, i64p,
    ]
    lib.repro_exchange_f.restype = None
    lib.repro_simd_detect.argtypes = []
    lib.repro_simd_detect.restype = ctypes.c_int
    lib.repro_simd_set.argtypes = [ctypes.c_int]
    lib.repro_simd_set.restype = ctypes.c_int
    lib.repro_simd_active.argtypes = []
    lib.repro_simd_active.restype = ctypes.c_int
    lib.repro_push_round.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p]
    lib.repro_push_round.restype = None
    lib.repro_block_round.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p,
    ]
    lib.repro_block_round.restype = None
    lib.repro_block_round_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, i64,
    ]
    lib.repro_block_round_mt.restype = None
    lib.repro_pool_ensure.argtypes = [i64]
    lib.repro_pool_ensure.restype = i64
    lib.repro_scatter_or_mt.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64, i64]
    lib.repro_scatter_or_mt.restype = None
    lib.repro_exchange_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, u64p, i64p, i64,
    ]
    lib.repro_exchange_mt.restype = None
    lib.repro_exchange_f_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p,
        u8p, u8p, u64p, u64p, i64p, i64,
    ]
    lib.repro_exchange_f_mt.restype = None
    lib.repro_push_round_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, i64,
    ]
    lib.repro_push_round_mt.restype = None
    lib.repro_frontier_scatter_mt.argtypes = [
        u64p, i32p, i64p, u8p, u8p, i64, i64, i64, i64p, i64p, i64,
        u64p, i64p, i64,
    ]
    lib.repro_frontier_scatter_mt.restype = None
    lib.repro_recount_mt.argtypes = [u64p, u64p, i64p, i64, i64, i64p, i64]
    lib.repro_recount_mt.restype = None
    return lib


_LIB = _build()

if _LIB is not None and os.environ.get("REPRO_DISABLE_SIMD"):
    _LIB.repro_simd_set(0)

_U64P = ctypes.POINTER(ctypes.c_uint64)
_I64P = ctypes.POINTER(ctypes.c_int64)


def available() -> bool:
    """Whether the compiled kernels are usable on this machine."""
    return _LIB is not None


#: Dispatch level names, indexed by the C-side level integer.
SIMD_LEVELS = ("scalar", "sse2", "avx2", "avx512")


def simd_detected() -> int:
    """The highest SIMD level this CPU supports (0 when no compiled lib)."""
    if _LIB is None:
        return 0
    return int(_LIB.repro_simd_detect())


def simd_active() -> int:
    """The SIMD level currently installed in the dispatch pointers."""
    if _LIB is None:
        return 0
    return int(_LIB.repro_simd_active())


def set_simd_level(level: int) -> int:
    """Install ``level`` (clamped to hardware support); return the result.

    Level 0 is the honest scalar control (the hardware-POPCNT deficit
    counter stays installed when the CPU has it — POPCNT is not a vector
    instruction).  Intended for tests and the SIMD micro-benchmarks; must
    not race in-flight sharded kernels.
    """
    if _LIB is None:
        return 0
    return int(_LIB.repro_simd_set(ctypes.c_int(int(level))))


def simd_name(level: Optional[int] = None) -> str:
    """Human-readable name of ``level`` (default: the active level)."""
    if level is None:
        level = simd_active()
    return SIMD_LEVELS[max(0, min(int(level), len(SIMD_LEVELS) - 1))]


def _u64(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def scatter_or(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """OR ``source[senders[i]]`` into ``data[receivers[i]]`` for all ``i``.

    ``source`` must not share storage with the written rows of ``data`` (it
    is the start-of-step snapshot), all arrays must be C-contiguous, and the
    index arrays must be ``int64``.
    """
    _LIB.repro_scatter_or(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[1]),
    )


def exchange(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    mask: Optional[np.ndarray] = None,
    deficits: Optional[np.ndarray] = None,
) -> None:
    """Apply one push-pull round in swap form.

    Reads ``data`` (unchanged) and writes the complete end-of-round state
    into ``scratch`` — every row exactly once — using the caller-provided
    CSR buffers (``off``: ``n + 1`` int64 slots, ``adj``: at least
    ``2 * callers.size``).  **The caller must swap the two buffers
    afterwards**; this halves the memory traffic of snapshot + RMW.

    When ``mask``/``deficits`` are given (a ``words`` uint64 row and an
    ``n`` int64 array), the kernel fuses the completion recount into the
    round: every OR-updated row gets ``deficits[r] = popcount(mask &
    ~row)`` written while the row is hot.  Untouched rows keep their
    prior deficit values (which remain correct — the rows did not
    change), so ``deficits`` must already hold valid counts on entry.
    """
    _LIB.repro_exchange(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        _u64(mask) if mask is not None else None,
        _i64(deficits) if deficits is not None else None,
    )


def exchange_filtered(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    complete: np.ndarray,
    promoted: np.ndarray,
    full_row: np.ndarray,
    mask: Optional[np.ndarray] = None,
    deficits: Optional[np.ndarray] = None,
) -> None:
    """Saturation-filtered :func:`exchange`.

    ``complete`` is an ``n`` uint8 array flagging rows that already hold
    every required bit; edges into them are dropped and edges from them
    promote their receiver to a single ``full_row`` memcpy.  ``promoted``
    is an ``n`` uint8 output array the caller must zero beforehand; it
    reports the rows assigned ``full_row`` this round.  Bit-identical to
    the unfiltered kernel under the subset invariant (every row ⊆
    ``full_row``, complete rows == ``full_row``).
    """
    _LIB.repro_exchange_f(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        complete.ctypes.data_as(_U8P),
        promoted.ctypes.data_as(_U8P),
        _u64(full_row),
        _u64(mask) if mask is not None else None,
        _i64(deficits) if deficits is not None else None,
    )


def push_round(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
) -> None:
    """Apply one push-only round in swap form (see :func:`exchange`).

    ``adj`` needs at least ``senders.size`` slots.
    """
    _LIB.repro_push_round(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
    )


def block_round(
    block: np.ndarray,
    gathered: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
) -> None:
    """OR ``gathered[senders[i]]`` into block-local row ``receivers[i]``.

    The paged layout's per-block round: ``gathered`` is the round's unique
    sender rows (snapshot copies, disjoint from ``block``), ``receivers``
    are block-local row indices, and ``off``/``adj`` are CSR scratch with
    ``block.shape[0] + 1`` and ``senders.size`` usable slots.  Mutates
    ``block`` in place; rows without incoming edges are untouched.
    """
    _LIB.repro_block_round(
        _u64(block),
        _u64(gathered),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(block.shape[0]),
        ctypes.c_int64(block.shape[1]),
        _i64(off),
        _i64(adj),
    )


_U8P = ctypes.POINTER(ctypes.c_uint8)
_I32P = ctypes.POINTER(ctypes.c_int32)


def frontier_scatter(
    data: np.ndarray,
    active: np.ndarray,
    nnz: np.ndarray,
    word_active: np.ndarray,
    dense_rows: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    val_buf: np.ndarray,
    lin_buf: np.ndarray,
) -> None:
    """Apply one word-sparse transmission batch with frontier bookkeeping.

    ``active``/``nnz``/``word_active``/``dense_rows`` are the
    :class:`~repro.engine.knowledge.FrontierKnowledge` bookkeeping arrays
    (mutated in place); ``val_buf``/``lin_buf`` are caller-managed pair
    buffers of at least ``nnz[senders].sum()`` elements (reused across
    rounds to avoid per-round page faults).  All arrays must be
    C-contiguous; index arrays int64.
    """
    _LIB.repro_frontier_scatter(
        _u64(data),
        active.ctypes.data_as(_I32P),
        _i64(nnz),
        word_active.ctypes.data_as(_U8P),
        dense_rows.ctypes.data_as(_U8P),
        ctypes.c_int64(active.shape[1]),
        ctypes.c_int64(data.shape[1]),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        _u64(val_buf),
        _i64(lin_buf),
    )


def recount_deficits(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Per-row count of bits in ``mask`` missing from ``data[rows]``."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
    )
    return deficits


# ---------------------------------------------------------------------- #
# Sharded (multithreaded) variants
# ---------------------------------------------------------------------- #

#: Worker threads known to exist in the C pool (grown lazily, never shrunk),
#: together with the process that owns them — pool threads do not survive
#: ``fork``, so a child process must not trust the inherited count.
_POOL_WORKERS = 0
_POOL_PID: Optional[int] = None

#: Hard cap on shards per job — far above any sensible core count, it only
#: bounds runaway configuration values.
MAX_SHARDS = 64


def ensure_shards(shards: int) -> int:
    """Grow the worker pool for ``shards``-way jobs; return the usable count.

    The calling thread always executes shard 0 itself, so ``shards`` shards
    need ``shards - 1`` pool workers.  Thread creation is best-effort: the
    return value (possibly just 1, meaning "run serial") is the shard count
    the ``*_mt`` kernels may actually be invoked with.  Safe after ``fork``
    (e.g. inside ``ProcessPoolExecutor`` workers): the cached count is
    per-process and the C pool re-spawns its threads in the child.
    """
    global _POOL_WORKERS, _POOL_PID
    if _LIB is None or shards <= 1:
        return 1
    pid = os.getpid()
    if pid != _POOL_PID:
        _POOL_WORKERS = 0
        _POOL_PID = pid
    shards = min(int(shards), MAX_SHARDS)
    if shards - 1 > _POOL_WORKERS:
        _POOL_WORKERS = int(_LIB.repro_pool_ensure(ctypes.c_int64(shards - 1)))
    return min(shards, _POOL_WORKERS + 1)


def scatter_or_mt(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`scatter_or`; ``shards`` must come from :func:`ensure_shards`."""
    _LIB.repro_scatter_or_mt(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        ctypes.c_int64(shards),
    )


def exchange_mt(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
    mask: Optional[np.ndarray] = None,
    deficits: Optional[np.ndarray] = None,
) -> None:
    """Sharded :func:`exchange` (serial CSR build + row-sharded swap pass)."""
    _LIB.repro_exchange_mt(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        _u64(mask) if mask is not None else None,
        _i64(deficits) if deficits is not None else None,
        ctypes.c_int64(shards),
    )


def exchange_filtered_mt(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    complete: np.ndarray,
    promoted: np.ndarray,
    full_row: np.ndarray,
    shards: int,
    mask: Optional[np.ndarray] = None,
    deficits: Optional[np.ndarray] = None,
) -> None:
    """Sharded :func:`exchange_filtered`; bit-identical at any shard count."""
    _LIB.repro_exchange_f_mt(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        complete.ctypes.data_as(_U8P),
        promoted.ctypes.data_as(_U8P),
        _u64(full_row),
        _u64(mask) if mask is not None else None,
        _i64(deficits) if deficits is not None else None,
        ctypes.c_int64(shards),
    )


def push_round_mt(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`push_round` (serial CSR build + row-sharded swap pass)."""
    _LIB.repro_push_round_mt(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        ctypes.c_int64(shards),
    )


def block_round_mt(
    block: np.ndarray,
    gathered: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`block_round` (serial CSR build + row-sharded OR pass)."""
    _LIB.repro_block_round_mt(
        _u64(block),
        _u64(gathered),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(block.shape[0]),
        ctypes.c_int64(block.shape[1]),
        _i64(off),
        _i64(adj),
        ctypes.c_int64(shards),
    )


def frontier_scatter_mt(
    data: np.ndarray,
    active: np.ndarray,
    nnz: np.ndarray,
    word_active: np.ndarray,
    dense_rows: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    val_buf: np.ndarray,
    lin_buf: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`frontier_scatter`; bookkeeping stays bit-identical."""
    _LIB.repro_frontier_scatter_mt(
        _u64(data),
        active.ctypes.data_as(_I32P),
        _i64(nnz),
        word_active.ctypes.data_as(_U8P),
        dense_rows.ctypes.data_as(_U8P),
        ctypes.c_int64(active.shape[1]),
        ctypes.c_int64(data.shape[1]),
        ctypes.c_int64(data.shape[0]),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        _u64(val_buf),
        _i64(lin_buf),
        ctypes.c_int64(shards),
    )


def recount_deficits_mt(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray, shards: int
) -> np.ndarray:
    """Sharded :func:`recount_deficits`."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount_mt(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
        ctypes.c_int64(shards),
    )
    return deficits
