"""Optional compiled kernels for the packed-bitset hot path.

NumPy's fancy-indexing machinery moves every gathered row through fresh
temporaries, which caps the gossip kernel's throughput well below what the
hardware allows.  The two primitives below — a sequential scatter-OR of
snapshot rows into live rows, and a fused mask-and-popcount deficit recount —
are tiny, allocation-free C loops, so this module compiles them once per
machine with the system C compiler and loads them through :mod:`ctypes`.

The build is strictly best-effort: if no compiler is present, the build
fails, or ``REPRO_DISABLE_CKERNEL`` is set in the environment, callers fall
back to the pure-NumPy implementations (which are semantically identical —
see ``tests/engine/test_kernel_equivalence.py``).  The shared library is
cached in a private per-user directory keyed on source hash and CPU
signature, so repeated imports pay nothing and heterogeneous machines
sharing a filesystem never load each other's ``-march=native`` binaries.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "available",
    "exchange",
    "push_round",
    "frontier_scatter",
    "recount_deficits",
    "scatter_or",
]

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Full synchronous push-pull exchange: snapshot the matrix into `scratch`,
 * then for every channel (callers[i], targets[i]) OR each endpoint's
 * snapshot row into the other endpoint's live row. */
void repro_exchange(uint64_t *data, uint64_t *scratch,
                    const int64_t *callers, const int64_t *targets,
                    int64_t k, int64_t n, int64_t words) {
    memcpy(scratch, data, (size_t)n * (size_t)words * sizeof(uint64_t));
    for (int64_t i = 0; i < k; i++) {
        uint64_t *dc = data + callers[i] * words;
        uint64_t *dt = data + targets[i] * words;
        const uint64_t *sc = scratch + callers[i] * words;
        const uint64_t *st = scratch + targets[i] * words;
        for (int64_t w = 0; w < words; w++) {
            dc[w] |= st[w];
            dt[w] |= sc[w];
        }
    }
}

/* One-directional variant: snapshot, then OR snapshot[src[i]] into
 * data[dst[i]] for every transmission. */
void repro_push_round(uint64_t *data, uint64_t *scratch,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t n, int64_t words) {
    memcpy(scratch, data, (size_t)n * (size_t)words * sizeof(uint64_t));
    for (int64_t i = 0; i < k; i++) {
        uint64_t *d = data + dst[i] * words;
        const uint64_t *s = scratch + src[i] * words;
        for (int64_t w = 0; w < words; w++) {
            d[w] |= s[w];
        }
    }
}

/* OR source[src[i]] into data[dst[i]] for all i.  `source` must be a
 * start-of-step snapshot (disjoint storage from `data`), which makes the
 * result independent of processing order even with duplicate receivers. */
void repro_scatter_or(uint64_t *data, const uint64_t *source,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t words) {
    for (int64_t i = 0; i < k; i++) {
        uint64_t *d = data + dst[i] * words;
        const uint64_t *s = source + src[i] * words;
        for (int64_t w = 0; w < words; w++) {
            d[w] |= s[w];
        }
    }
}

/* The frontier (sparsity-aware) transmission pass.  Every sender row lists
 * its nonzero words in `active` (row-major, `cap` slots per row, `nnz[s]`
 * valid); a transmission contributes only those (word, value) pairs.
 *
 * Pass 1 gathers all pair values and linear targets into the caller-sized
 * buffers BEFORE any write — the snapshot-read / live-write semantics of a
 * synchronous round — so duplicate targets merge order-independently.
 * Pass 2 scatters and maintains the frontier bookkeeping in place: a newly
 * activated word is appended to the receiver's list, and a receiver pushed
 * past `cap` ratchets onto the dense path (dense_rows).  The bookkeeping
 * only steers future path decisions; the data result is bit-identical to
 * the dense kernels. */
void repro_frontier_scatter(uint64_t *data, int32_t *active, int64_t *nnz,
                            uint8_t *word_active, uint8_t *dense_rows,
                            int64_t cap, int64_t words,
                            const int64_t *src, const int64_t *dst, int64_t k,
                            uint64_t *val_buf, int64_t *lin_buf) {
    int64_t p = 0;
    for (int64_t i = 0; i < k; i++) {
        const int64_t s = src[i];
        const uint64_t *row = data + s * words;
        const int32_t *aw = active + s * cap;
        const int64_t m = nnz[s];
        const int64_t base = dst[i] * words;
        for (int64_t j = 0; j < m; j++) {
            const int64_t w = aw[j];
            val_buf[p] = row[w];
            lin_buf[p] = base + w;
            p++;
        }
    }
    for (int64_t q = 0; q < p; q++) {
        const int64_t lin = lin_buf[q];
        data[lin] |= val_buf[q];
        if (!word_active[lin]) {
            /* Fresh activation: rare once a round is under way, so the
             * divide and the list append stay off the common path.  (The
             * mask is also set for dense-flagged rows — harmless, it is
             * never read for them again.) */
            word_active[lin] = 1;
            const int64_t r = lin / words;
            if (!dense_rows[r]) {
                if (nnz[r] < cap) {
                    active[r * cap + nnz[r]] = (int32_t)(lin - r * words);
                    nnz[r] += 1;
                } else {
                    dense_rows[r] = 1;
                }
            }
        }
    }
}

/* deficits[i] = popcount(mask & ~data[rows[i]]) — the number of required
 * message bits still missing from each listed row. */
void repro_recount(const uint64_t *data, const uint64_t *mask,
                   const int64_t *rows, int64_t k, int64_t words,
                   int64_t *deficits) {
    for (int64_t i = 0; i < k; i++) {
        const uint64_t *d = data + rows[i] * words;
        int64_t missing = 0;
        for (int64_t w = 0; w < words; w++) {
            missing += __builtin_popcountll(mask[w] & ~d[w]);
        }
        deficits[i] = missing;
    }
}
"""


def _cpu_signature() -> str:
    """A machine identifier for the cache key.

    The library is compiled with ``-march=native``, so a cache shared across
    heterogeneous CPUs (e.g. TMPDIR or HOME on a cluster filesystem) must
    not serve a binary built for a different microarchitecture.  The CPU
    feature flags are the closest portable proxy.
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    parts.append(line)
                    break
    except OSError:
        parts.append(platform.processor())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:8]


def _cache_dir(digest: str) -> Optional[str]:
    """A private, user-owned directory to build and load the library from.

    ``ctypes.CDLL`` executes code from the returned path, so it must not be
    attacker-preparable: prefer ``~/.cache``, fall back to a per-user temp
    directory, create it ``0700``, and refuse paths not owned by us or
    writable by others.
    """
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - exotic environments
        user = f"uid{os.getuid()}" if hasattr(os, "getuid") else "unknown"
    home_cache = os.path.join(os.path.expanduser("~"), ".cache")
    base = home_cache if os.path.isdir(home_cache) else tempfile.gettempdir()
    cache_dir = os.path.join(base, f"repro-ckernel-{user}-{digest}")
    try:
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid"):
            st = os.stat(cache_dir)
            if st.st_uid != os.getuid() or (st.st_mode & 0o022):
                return None
    except OSError:
        return None
    return cache_dir


def _build() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _cache_dir(f"{digest}-{_cpu_signature()}")
    if cache_dir is None:
        return None
    lib_path = os.path.join(cache_dir, "libreprokernel.so")
    try:
        if not os.path.exists(lib_path):
            src_path = os.path.join(cache_dir, "kernel.c")
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_path = lib_path + f".tmp{os.getpid()}"
            subprocess.run(
                [
                    compiler,
                    "-O3",
                    "-march=native",
                    "-shared",
                    "-fPIC",
                    src_path,
                    "-o",
                    tmp_path,
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)
        lib = ctypes.CDLL(lib_path)
    except Exception:
        return None
    u64p = ctypes.POINTER(ctypes.c_uint64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i64 = ctypes.c_int64
    lib.repro_scatter_or.argtypes = [u64p, u64p, i64p, i64p, i64, i64]
    lib.repro_scatter_or.restype = None
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i32p = ctypes.POINTER(ctypes.c_int32)
    lib.repro_frontier_scatter.argtypes = [
        u64p, i32p, i64p, u8p, u8p, i64, i64, i64p, i64p, i64, u64p, i64p,
    ]
    lib.repro_frontier_scatter.restype = None
    lib.repro_recount.argtypes = [u64p, u64p, i64p, i64, i64, i64p]
    lib.repro_recount.restype = None
    lib.repro_exchange.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64]
    lib.repro_exchange.restype = None
    lib.repro_push_round.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64]
    lib.repro_push_round.restype = None
    return lib


_LIB = _build()

_U64P = ctypes.POINTER(ctypes.c_uint64)
_I64P = ctypes.POINTER(ctypes.c_int64)


def available() -> bool:
    """Whether the compiled kernels are usable on this machine."""
    return _LIB is not None


def _u64(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def scatter_or(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """OR ``source[senders[i]]`` into ``data[receivers[i]]`` for all ``i``.

    ``source`` must not share storage with the written rows of ``data`` (it
    is the start-of-step snapshot), all arrays must be C-contiguous, and the
    index arrays must be ``int64``.
    """
    _LIB.repro_scatter_or(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[1]),
    )


def exchange(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
) -> None:
    """Snapshot ``data`` into ``scratch`` and apply one push-pull round."""
    _LIB.repro_exchange(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
    )


def push_round(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """Snapshot ``data`` into ``scratch`` and apply one push-only round."""
    _LIB.repro_push_round(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
    )


_U8P = ctypes.POINTER(ctypes.c_uint8)
_I32P = ctypes.POINTER(ctypes.c_int32)


def frontier_scatter(
    data: np.ndarray,
    active: np.ndarray,
    nnz: np.ndarray,
    word_active: np.ndarray,
    dense_rows: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    val_buf: np.ndarray,
    lin_buf: np.ndarray,
) -> None:
    """Apply one word-sparse transmission batch with frontier bookkeeping.

    ``active``/``nnz``/``word_active``/``dense_rows`` are the
    :class:`~repro.engine.knowledge.FrontierKnowledge` bookkeeping arrays
    (mutated in place); ``val_buf``/``lin_buf`` are caller-managed pair
    buffers of at least ``nnz[senders].sum()`` elements (reused across
    rounds to avoid per-round page faults).  All arrays must be
    C-contiguous; index arrays int64.
    """
    _LIB.repro_frontier_scatter(
        _u64(data),
        active.ctypes.data_as(_I32P),
        _i64(nnz),
        word_active.ctypes.data_as(_U8P),
        dense_rows.ctypes.data_as(_U8P),
        ctypes.c_int64(active.shape[1]),
        ctypes.c_int64(data.shape[1]),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        _u64(val_buf),
        _i64(lin_buf),
    )


def recount_deficits(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Per-row count of bits in ``mask`` missing from ``data[rows]``."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
    )
    return deficits
