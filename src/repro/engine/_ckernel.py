"""Optional compiled kernels for the packed-bitset hot path.

NumPy's fancy-indexing machinery moves every gathered row through fresh
temporaries, which caps the gossip kernel's throughput well below what the
hardware allows.  This module compiles a small C library once per machine
with the system C compiler and loads it through :mod:`ctypes`.  It exposes
two families of primitives:

*Serial kernels* — the swap-form full-round kernels (:func:`exchange`,
:func:`push_round`: build the round's incoming-sender CSR, write each
row's next state exactly once into the spare buffer, caller swaps — about
half the traffic of snapshot + read-modify-write), the order-independent
:func:`scatter_or` over an explicit snapshot, the word-sparse
:func:`frontier_scatter` pass used by
:class:`~repro.engine.knowledge.FrontierKnowledge`, and the fused
mask-and-popcount deficit :func:`recount_deficits`.

*Sharded (multithreaded) kernels* — ``*_mt`` variants of the same five
primitives that partition the *receiver rows* of a batch into disjoint
contiguous shards across a persistent worker pool (:func:`ensure_shards`).
Because shards partition receivers and every gather still strictly precedes
every write, the threaded kernels are bit-identical to the serial ones for
any shard count; see ``docs/parallelism.md`` for the determinism argument.
Callers do not pick a code path here — backend selection and per-batch
thread counts live in :mod:`repro.engine.backends`.

The build is strictly best-effort: if no compiler is present, the build
fails, or ``REPRO_DISABLE_CKERNEL`` is set in the environment, callers fall
back to the pure-NumPy implementations (which are semantically identical —
see ``tests/engine/test_kernel_equivalence.py``).  The shared library is
cached in a private per-user directory keyed on source hash and CPU
signature, so repeated imports pay nothing and heterogeneous machines
sharing a filesystem never load each other's ``-march=native`` binaries.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "available",
    "block_round",
    "block_round_mt",
    "ensure_shards",
    "exchange",
    "exchange_mt",
    "push_round",
    "push_round_mt",
    "frontier_scatter",
    "frontier_scatter_mt",
    "recount_deficits",
    "recount_deficits_mt",
    "scatter_or",
    "scatter_or_mt",
]

_SOURCE = r"""
#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ *
 * Full-round kernels in "swap" form.
 *
 * A naive full round snapshots the matrix (memcpy) and then RMWs every
 * receiver row — about 8·n·words words of memory traffic for a full
 * push-pull round.  The swap form instead builds the per-row incoming
 * sender lists (a CSR over the round's channels, O(k) integer work) and
 * writes the complete NEXT state into `next`:
 *
 *     next[r] = cur[r] | OR(cur[p] for every sender p of r)
 *
 * Each row is read and written exactly once (rows with no senders are a
 * straight memcpy), `cur` is never written, and the caller swaps the two
 * buffers afterwards — roughly half the traffic of snapshot + RMW, and
 * trivially shardable because every row's result depends only on the
 * read-only `cur`.  OR is commutative, so the result is independent of
 * both partner order and row processing order: bit-identical to the
 * sequential snapshot semantics.
 * ------------------------------------------------------------------ */

/* Incoming-sender CSR for one round.  Edge i informs dst[i] from src[i];
 * with `both` set each channel also informs src[i] from dst[i] (the pull
 * direction of an exchange).  `off` has n+1 slots and `adj` one slot per
 * edge.  After the fill pass off[r] is the END of row r's slice (the
 * classic cursor trick), so row r spans [r ? off[r-1] : 0, off[r]). */
static void repro_sender_csr(const int64_t *src, const int64_t *dst,
                             int64_t k, int64_t n, int both,
                             int64_t *off, int64_t *adj) {
    memset(off, 0, (size_t)(n + 1) * sizeof(int64_t));
    for (int64_t i = 0; i < k; i++) {
        off[dst[i]]++;
        if (both)
            off[src[i]]++;
    }
    int64_t run = 0;
    for (int64_t r = 0; r < n; r++) {
        const int64_t c = off[r];
        off[r] = run;
        run += c;
    }
    off[n] = run;
    for (int64_t i = 0; i < k; i++) {
        adj[off[dst[i]]++] = src[i];
        if (both)
            adj[off[src[i]]++] = dst[i];
    }
}

static void repro_swap_rows(const uint64_t *cur, uint64_t *next,
                            const int64_t *off, const int64_t *adj,
                            int64_t lo, int64_t hi, int64_t words) {
    for (int64_t r = lo; r < hi; r++) {
        const int64_t start = r ? off[r - 1] : 0;
        const int64_t end = off[r];
        const uint64_t *src = cur + r * words;
        uint64_t *dst = next + r * words;
        if (start == end) {
            memcpy(dst, src, (size_t)words * sizeof(uint64_t));
            continue;
        }
        const uint64_t *first = cur + adj[start] * words;
        for (int64_t w = 0; w < words; w++)
            dst[w] = src[w] | first[w];
        for (int64_t j = start + 1; j < end; j++) {
            const uint64_t *p = cur + adj[j] * words;
            for (int64_t w = 0; w < words; w++)
                dst[w] |= p[w];
        }
    }
}

/* One synchronous push-pull round: for every channel (callers[i],
 * targets[i]) both endpoints learn each other's start-of-round row.
 * Writes the full next state into `next`; the caller swaps buffers. */
void repro_exchange(const uint64_t *cur, uint64_t *next,
                    const int64_t *callers, const int64_t *targets,
                    int64_t k, int64_t n, int64_t words,
                    int64_t *off, int64_t *adj) {
    repro_sender_csr(callers, targets, k, n, 1, off, adj);
    repro_swap_rows(cur, next, off, adj, 0, n, words);
}

/* One-directional variant: dst[i] learns src[i]'s start-of-round row. */
void repro_push_round(const uint64_t *cur, uint64_t *next,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t n, int64_t words,
                      int64_t *off, int64_t *adj) {
    repro_sender_csr(src, dst, k, n, 0, off, adj);
    repro_swap_rows(cur, next, off, adj, 0, n, words);
}

/* OR the listed gathered rows into each local row of `block`: row r gains
 * OR(gathered[adj[j]]) over its CSR slice.  Unlike the swap kernels this
 * mutates `block` in place — rows without senders are never touched — which
 * is what the paged layout wants: `gathered` is already snapshot storage
 * (the round's unique sender rows, copied before any write), so in-place
 * ORs are order-independent and skipped rows cost nothing. */
static void repro_or_rows(uint64_t *block, const uint64_t *gathered,
                          const int64_t *off, const int64_t *adj,
                          int64_t lo, int64_t hi, int64_t words) {
    for (int64_t r = lo; r < hi; r++) {
        const int64_t start = r ? off[r - 1] : 0;
        const int64_t end = off[r];
        if (start == end)
            continue;
        uint64_t *dst = block + r * words;
        for (int64_t j = start; j < end; j++) {
            const uint64_t *p = gathered + adj[j] * words;
            for (int64_t w = 0; w < words; w++)
                dst[w] |= p[w];
        }
    }
}

/* One block of a paged round: edge i ORs gathered[src[i]] into block-local
 * row dst[i].  `rows` is the block's row count; `off` needs rows + 1 slots
 * and `adj` k slots.  Bit-identical to repro_scatter_or over the same edges
 * (OR commutes); the CSR touches each receiver row exactly once. */
void repro_block_round(uint64_t *block, const uint64_t *gathered,
                       const int64_t *src, const int64_t *dst,
                       int64_t k, int64_t rows, int64_t words,
                       int64_t *off, int64_t *adj) {
    repro_sender_csr(src, dst, k, rows, 0, off, adj);
    repro_or_rows(block, gathered, off, adj, 0, rows, words);
}

/* OR source[src[i]] into data[dst[i]] for all i.  `source` must be a
 * start-of-step snapshot (disjoint storage from `data`), which makes the
 * result independent of processing order even with duplicate receivers. */
void repro_scatter_or(uint64_t *data, const uint64_t *source,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t words) {
    for (int64_t i = 0; i < k; i++) {
        uint64_t *d = data + dst[i] * words;
        const uint64_t *s = source + src[i] * words;
        for (int64_t w = 0; w < words; w++) {
            d[w] |= s[w];
        }
    }
}

/* The frontier (sparsity-aware) transmission pass.  Every sender row lists
 * its nonzero words in `active` (row-major, `cap` slots per row, `nnz[s]`
 * valid); a transmission contributes only those (word, value) pairs.
 *
 * Pass 1 gathers all pair values and linear targets into the caller-sized
 * buffers BEFORE any write — the snapshot-read / live-write semantics of a
 * synchronous round — so duplicate targets merge order-independently.
 * Pass 2 scatters and maintains the frontier bookkeeping in place: a newly
 * activated word is appended to the receiver's list, and a receiver pushed
 * past `cap` ratchets onto the dense path (dense_rows).  The bookkeeping
 * only steers future path decisions; the data result is bit-identical to
 * the dense kernels. */
void repro_frontier_scatter(uint64_t *data, int32_t *active, int64_t *nnz,
                            uint8_t *word_active, uint8_t *dense_rows,
                            int64_t cap, int64_t words,
                            const int64_t *src, const int64_t *dst, int64_t k,
                            uint64_t *val_buf, int64_t *lin_buf) {
    int64_t p = 0;
    for (int64_t i = 0; i < k; i++) {
        const int64_t s = src[i];
        const uint64_t *row = data + s * words;
        const int32_t *aw = active + s * cap;
        const int64_t m = nnz[s];
        const int64_t base = dst[i] * words;
        for (int64_t j = 0; j < m; j++) {
            const int64_t w = aw[j];
            val_buf[p] = row[w];
            lin_buf[p] = base + w;
            p++;
        }
    }
    for (int64_t q = 0; q < p; q++) {
        const int64_t lin = lin_buf[q];
        data[lin] |= val_buf[q];
        if (!word_active[lin]) {
            /* Fresh activation: rare once a round is under way, so the
             * divide and the list append stay off the common path.  (The
             * mask is also set for dense-flagged rows — harmless, it is
             * never read for them again.) */
            word_active[lin] = 1;
            const int64_t r = lin / words;
            if (!dense_rows[r]) {
                if (nnz[r] < cap) {
                    active[r * cap + nnz[r]] = (int32_t)(lin - r * words);
                    nnz[r] += 1;
                } else {
                    dense_rows[r] = 1;
                }
            }
        }
    }
}

/* deficits[i] = popcount(mask & ~data[rows[i]]) — the number of required
 * message bits still missing from each listed row. */
void repro_recount(const uint64_t *data, const uint64_t *mask,
                   const int64_t *rows, int64_t k, int64_t words,
                   int64_t *deficits) {
    for (int64_t i = 0; i < k; i++) {
        const uint64_t *d = data + rows[i] * words;
        int64_t missing = 0;
        for (int64_t w = 0; w < words; w++) {
            missing += __builtin_popcountll(mask[w] & ~d[w]);
        }
        deficits[i] = missing;
    }
}

/* ==================================================================== *
 * Persistent worker pool and receiver-sharded (multithreaded) kernels.
 *
 * Every *_mt kernel partitions the RECEIVER rows of its batch into
 * `nshards` disjoint contiguous ranges; shard t applies exactly the
 * writes whose target row lies in [n*t/T, n*(t+1)/T).  All gathers
 * (snapshot copies, frontier pair-value reads) run as a separate pool
 * job that completes before the scatter job starts, so threads only
 * read state no thread is writing, and each row is written by exactly
 * one thread in the same relative order the serial kernel would use.
 * The results — row data and frontier bookkeeping alike — are therefore
 * bit-identical to the serial kernels for every shard count.
 *
 * The pool is spawned lazily (repro_pool_ensure), never shrinks, and
 * its detached workers sleep on a condition variable between jobs.  The
 * calling thread always executes shard 0 itself, so a pool of W workers
 * serves up to W + 1 shards.
 * ==================================================================== */

typedef struct {
    void (*fn)(int64_t tid, int64_t nshards, void *arg);
    void *arg;
    int64_t nshards;
} repro_job;

static pthread_mutex_t repro_pool_mu = PTHREAD_MUTEX_INITIALIZER;
/* Serializes job submission: the pool has a single job slot, and the
 * *_mt kernels may be invoked from several Python threads at once
 * (ctypes releases the GIL), e.g. protocol runs inside a
 * ThreadPoolExecutor.  Each sharded job runs to completion under this
 * lock; the serial kernels stay lock-free and reentrant. */
static pthread_mutex_t repro_caller_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t repro_pool_wake = PTHREAD_COND_INITIALIZER;
static pthread_cond_t repro_pool_done = PTHREAD_COND_INITIALIZER;
static repro_job repro_pool_job;
static uint64_t repro_pool_gen = 0;
static int64_t repro_pool_workers = 0;
static int64_t repro_pool_pending = 0;

typedef struct {
    int64_t wid;   /* worker wid runs shard wid+1 */
    uint64_t gen;  /* pool generation at creation time */
} repro_worker_init;

static void *repro_worker(void *arg) {
    repro_worker_init *init = (repro_worker_init *)arg;
    const int64_t wid = init->wid;
    /* Start from the generation current when this worker was registered
     * (captured under the pool mutex): jobs posted before then did not
     * count this worker in repro_pool_pending, so acknowledging them
     * would double-decrement and let a later job "complete" while a
     * shard is still writing.  Jobs posted after registration do count
     * it and are correctly picked up as gen > seen. */
    uint64_t seen = init->gen;
    free(init);
    pthread_mutex_lock(&repro_pool_mu);
    for (;;) {
        while (repro_pool_gen == seen)
            pthread_cond_wait(&repro_pool_wake, &repro_pool_mu);
        seen = repro_pool_gen;
        repro_job job = repro_pool_job;
        pthread_mutex_unlock(&repro_pool_mu);
        if (wid + 1 < job.nshards)
            job.fn(wid + 1, job.nshards, job.arg);
        pthread_mutex_lock(&repro_pool_mu);
        if (--repro_pool_pending == 0)
            pthread_cond_signal(&repro_pool_done);
    }
    return NULL;
}

/* Pool threads do not survive fork(2).  Serialize forks against pool
 * state with the standard atfork protocol and reset the (now threadless)
 * child's pool so its first ensure call re-spawns workers from scratch. */
static void repro_pool_atfork_prepare(void) {
    pthread_mutex_lock(&repro_caller_mu); /* no job in flight past here */
    pthread_mutex_lock(&repro_pool_mu);
}

static void repro_pool_atfork_parent(void) {
    pthread_mutex_unlock(&repro_pool_mu);
    pthread_mutex_unlock(&repro_caller_mu);
}

static void repro_pool_atfork_child(void) {
    pthread_mutex_init(&repro_pool_mu, NULL);
    pthread_mutex_init(&repro_caller_mu, NULL);
    pthread_cond_init(&repro_pool_wake, NULL);
    pthread_cond_init(&repro_pool_done, NULL);
    repro_pool_workers = 0;
    repro_pool_pending = 0;
    repro_pool_gen = 0;
}

static int repro_pool_atfork_registered = 0;

/* Grow the pool to at least `workers` detached threads; returns the count
 * actually available (thread creation is best-effort). */
int64_t repro_pool_ensure(int64_t workers) {
    pthread_mutex_lock(&repro_pool_mu);
    if (!repro_pool_atfork_registered) {
        if (pthread_atfork(repro_pool_atfork_prepare, repro_pool_atfork_parent,
                           repro_pool_atfork_child) != 0) {
            /* No fork protection -> no worker threads. */
            pthread_mutex_unlock(&repro_pool_mu);
            return 0;
        }
        repro_pool_atfork_registered = 1;
    }
    while (repro_pool_workers < workers) {
        repro_worker_init *init =
            (repro_worker_init *)malloc(sizeof(repro_worker_init));
        if (init == NULL)
            break;
        init->wid = repro_pool_workers;
        init->gen = repro_pool_gen;
        pthread_t th;
        pthread_attr_t attr;
        if (pthread_attr_init(&attr) != 0) {
            free(init);
            break;
        }
        pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
        int rc = pthread_create(&th, &attr, repro_worker, init);
        pthread_attr_destroy(&attr);
        if (rc != 0) {
            free(init);
            break;
        }
        repro_pool_workers++;
    }
    int64_t have = repro_pool_workers;
    pthread_mutex_unlock(&repro_pool_mu);
    return have;
}

/* Run one job over `nshards` shards: the calling thread takes shard 0,
 * pool workers the rest.  Every worker (even idle ones) acknowledges the
 * job before the next one can be posted, so generations never skip.
 * Caller must guarantee nshards <= repro_pool_workers + 1. */
static void repro_run_sharded(void (*fn)(int64_t, int64_t, void *),
                              void *arg, int64_t nshards) {
    pthread_mutex_lock(&repro_caller_mu);
    pthread_mutex_lock(&repro_pool_mu);
    repro_pool_job.fn = fn;
    repro_pool_job.arg = arg;
    repro_pool_job.nshards = nshards;
    repro_pool_pending = repro_pool_workers;
    repro_pool_gen++;
    pthread_cond_broadcast(&repro_pool_wake);
    pthread_mutex_unlock(&repro_pool_mu);
    fn(0, nshards, arg);
    pthread_mutex_lock(&repro_pool_mu);
    while (repro_pool_pending != 0)
        pthread_cond_wait(&repro_pool_done, &repro_pool_mu);
    pthread_mutex_unlock(&repro_pool_mu);
    pthread_mutex_unlock(&repro_caller_mu);
}

static void repro_shard_range(int64_t total, int64_t tid, int64_t nshards,
                              int64_t *lo, int64_t *hi) {
    *lo = total * tid / nshards;
    *hi = total * (tid + 1) / nshards;
}

typedef struct {
    uint64_t *data;
    const uint64_t *source;
    const int64_t *src;
    const int64_t *dst;
    int64_t k, n, words;
} repro_scatter_args;

static void repro_scatter_shard(int64_t tid, int64_t T, void *p) {
    repro_scatter_args *a = (repro_scatter_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    const int64_t words = a->words;
    for (int64_t i = 0; i < a->k; i++) {
        const int64_t d = a->dst[i];
        if (d < lo || d >= hi)
            continue;
        uint64_t *dr = a->data + d * words;
        const uint64_t *sr = a->source + a->src[i] * words;
        for (int64_t w = 0; w < words; w++)
            dr[w] |= sr[w];
    }
}

void repro_scatter_or_mt(uint64_t *data, const uint64_t *source,
                         const int64_t *src, const int64_t *dst,
                         int64_t k, int64_t n, int64_t words,
                         int64_t nshards) {
    repro_scatter_args a = {data, source, src, dst, k, n, words};
    repro_run_sharded(repro_scatter_shard, &a, nshards);
}

typedef struct {
    const uint64_t *cur;
    uint64_t *next;
    const int64_t *off;
    const int64_t *adj;
    int64_t n, words;
} repro_swap_args;

static void repro_swap_shard(int64_t tid, int64_t T, void *p) {
    repro_swap_args *a = (repro_swap_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    repro_swap_rows(a->cur, a->next, a->off, a->adj, lo, hi, a->words);
}

/* The CSR build is O(k) integer work — serial on the calling thread —
 * and the row pass shards over disjoint row ranges reading only the
 * immutable `cur`, so every shard count produces identical bits. */
void repro_exchange_mt(const uint64_t *cur, uint64_t *next,
                       const int64_t *callers, const int64_t *targets,
                       int64_t k, int64_t n, int64_t words,
                       int64_t *off, int64_t *adj, int64_t nshards) {
    repro_sender_csr(callers, targets, k, n, 1, off, adj);
    repro_swap_args a = {cur, next, off, adj, n, words};
    repro_run_sharded(repro_swap_shard, &a, nshards);
}

void repro_push_round_mt(const uint64_t *cur, uint64_t *next,
                         const int64_t *src, const int64_t *dst,
                         int64_t k, int64_t n, int64_t words,
                         int64_t *off, int64_t *adj, int64_t nshards) {
    repro_sender_csr(src, dst, k, n, 0, off, adj);
    repro_swap_args a = {cur, next, off, adj, n, words};
    repro_run_sharded(repro_swap_shard, &a, nshards);
}

typedef struct {
    uint64_t *block;
    const uint64_t *gathered;
    const int64_t *off;
    const int64_t *adj;
    int64_t rows, words;
} repro_block_round_args;

static void repro_block_round_shard(int64_t tid, int64_t T, void *p) {
    repro_block_round_args *a = (repro_block_round_args *)p;
    int64_t lo, hi;
    repro_shard_range(a->rows, tid, T, &lo, &hi);
    repro_or_rows(a->block, a->gathered, a->off, a->adj, lo, hi, a->words);
}

/* Sharded block round: serial CSR build, then the in-place OR pass shards
 * over disjoint local-row ranges reading only the immutable gathered pool —
 * bit-identical to repro_block_round at every shard count. */
void repro_block_round_mt(uint64_t *block, const uint64_t *gathered,
                          const int64_t *src, const int64_t *dst,
                          int64_t k, int64_t rows, int64_t words,
                          int64_t *off, int64_t *adj, int64_t nshards) {
    repro_sender_csr(src, dst, k, rows, 0, off, adj);
    repro_block_round_args a = {block, gathered, off, adj, rows, words};
    repro_run_sharded(repro_block_round_shard, &a, nshards);
}

typedef struct {
    uint64_t *data;
    int32_t *active;
    int64_t *nnz;
    uint8_t *word_active;
    uint8_t *dense_rows;
    int64_t cap, words, n, k, p;
    const int64_t *src;
    const int64_t *dst;
    uint64_t *val_buf;
    int64_t *lin_buf;
    const int64_t *off;
} repro_frontier_args;

static void repro_frontier_gather_shard(int64_t tid, int64_t T, void *pa) {
    repro_frontier_args *a = (repro_frontier_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->k, tid, T, &lo, &hi);
    for (int64_t i = lo; i < hi; i++) {
        const int64_t s = a->src[i];
        const uint64_t *row = a->data + s * a->words;
        const int32_t *aw = a->active + s * a->cap;
        const int64_t m = a->nnz[s];
        const int64_t base = a->dst[i] * a->words;
        int64_t p = a->off[i];
        for (int64_t j = 0; j < m; j++, p++) {
            const int64_t w = aw[j];
            a->val_buf[p] = row[w];
            a->lin_buf[p] = base + w;
        }
    }
}

static void repro_frontier_scatter_shard(int64_t tid, int64_t T, void *pa) {
    repro_frontier_args *a = (repro_frontier_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->n, tid, T, &lo, &hi);
    /* Row r lies in [lo, hi) iff its linear word index lies in
     * [lo*words, hi*words) — no divide on the filter path. */
    const int64_t lo_lin = lo * a->words, hi_lin = hi * a->words;
    for (int64_t q = 0; q < a->p; q++) {
        const int64_t lin = a->lin_buf[q];
        if (lin < lo_lin || lin >= hi_lin)
            continue;
        a->data[lin] |= a->val_buf[q];
        if (!a->word_active[lin]) {
            a->word_active[lin] = 1;
            const int64_t r = lin / a->words;
            if (!a->dense_rows[r]) {
                if (a->nnz[r] < a->cap) {
                    a->active[r * a->cap + a->nnz[r]] =
                        (int32_t)(lin - r * a->words);
                    a->nnz[r] += 1;
                } else {
                    a->dense_rows[r] = 1;
                }
            }
        }
    }
}

/* Sharded frontier pass.  Pair offsets per transmission are a serial O(k)
 * prefix sum (cheap next to the word traffic); the pair gather then runs
 * sharded over transmissions (disjoint buffer slices), and the scatter +
 * bookkeeping run sharded over receiver rows.  A shard scans all pairs
 * and skips foreign rows, so every row's pairs are processed in the same
 * ascending order as the serial kernel — bookkeeping is bit-identical. */
void repro_frontier_scatter_mt(uint64_t *data, int32_t *active, int64_t *nnz,
                               uint8_t *word_active, uint8_t *dense_rows,
                               int64_t cap, int64_t words, int64_t n,
                               const int64_t *src, const int64_t *dst,
                               int64_t k, uint64_t *val_buf, int64_t *lin_buf,
                               int64_t nshards) {
    int64_t *off = (int64_t *)malloc((size_t)k * sizeof(int64_t));
    if (off == NULL) { /* out of memory: the serial kernel needs no offsets */
        repro_frontier_scatter(data, active, nnz, word_active, dense_rows,
                               cap, words, src, dst, k, val_buf, lin_buf);
        return;
    }
    int64_t p = 0;
    for (int64_t i = 0; i < k; i++) {
        off[i] = p;
        p += nnz[src[i]];
    }
    repro_frontier_args a = {data, active,  nnz, word_active, dense_rows,
                             cap,  words,   n,   k,           p,
                             src,  dst,     val_buf, lin_buf, off};
    repro_run_sharded(repro_frontier_gather_shard, &a, nshards);
    repro_run_sharded(repro_frontier_scatter_shard, &a, nshards);
    free(off);
}

typedef struct {
    const uint64_t *data;
    const uint64_t *mask;
    const int64_t *rows;
    int64_t k, words;
    int64_t *deficits;
} repro_recount_args;

static void repro_recount_shard(int64_t tid, int64_t T, void *pa) {
    repro_recount_args *a = (repro_recount_args *)pa;
    int64_t lo, hi;
    repro_shard_range(a->k, tid, T, &lo, &hi);
    for (int64_t i = lo; i < hi; i++) {
        const uint64_t *d = a->data + a->rows[i] * a->words;
        int64_t missing = 0;
        for (int64_t w = 0; w < a->words; w++)
            missing += __builtin_popcountll(a->mask[w] & ~d[w]);
        a->deficits[i] = missing;
    }
}

void repro_recount_mt(const uint64_t *data, const uint64_t *mask,
                      const int64_t *rows, int64_t k, int64_t words,
                      int64_t *deficits, int64_t nshards) {
    repro_recount_args a = {data, mask, rows, k, words, deficits};
    repro_run_sharded(repro_recount_shard, &a, nshards);
}
"""


def _cpu_signature() -> str:
    """A machine identifier for the cache key.

    The library is compiled with ``-march=native``, so a cache shared across
    heterogeneous CPUs (e.g. TMPDIR or HOME on a cluster filesystem) must
    not serve a binary built for a different microarchitecture.  The CPU
    feature flags are the closest portable proxy.
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    parts.append(line)
                    break
    except OSError:
        parts.append(platform.processor())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:8]


def _cache_dir(digest: str) -> Optional[str]:
    """A private, user-owned directory to build and load the library from.

    ``ctypes.CDLL`` executes code from the returned path, so it must not be
    attacker-preparable: prefer ``~/.cache``, fall back to a per-user temp
    directory, create it ``0700``, and refuse paths not owned by us or
    writable by others.
    """
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - exotic environments
        user = f"uid{os.getuid()}" if hasattr(os, "getuid") else "unknown"
    home_cache = os.path.join(os.path.expanduser("~"), ".cache")
    base = home_cache if os.path.isdir(home_cache) else tempfile.gettempdir()
    cache_dir = os.path.join(base, f"repro-ckernel-{user}-{digest}")
    try:
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid"):
            st = os.stat(cache_dir)
            if st.st_uid != os.getuid() or (st.st_mode & 0o022):
                return None
    except OSError:
        return None
    return cache_dir


def _build() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _cache_dir(f"{digest}-{_cpu_signature()}")
    if cache_dir is None:
        return None
    lib_path = os.path.join(cache_dir, "libreprokernel.so")
    try:
        if not os.path.exists(lib_path):
            src_path = os.path.join(cache_dir, "kernel.c")
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_path = lib_path + f".tmp{os.getpid()}"
            subprocess.run(
                [
                    compiler,
                    "-O3",
                    "-march=native",
                    "-pthread",
                    "-shared",
                    "-fPIC",
                    src_path,
                    "-o",
                    tmp_path,
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)
        lib = ctypes.CDLL(lib_path)
    except Exception:
        return None
    u64p = ctypes.POINTER(ctypes.c_uint64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i64 = ctypes.c_int64
    lib.repro_scatter_or.argtypes = [u64p, u64p, i64p, i64p, i64, i64]
    lib.repro_scatter_or.restype = None
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i32p = ctypes.POINTER(ctypes.c_int32)
    lib.repro_frontier_scatter.argtypes = [
        u64p, i32p, i64p, u8p, u8p, i64, i64, i64p, i64p, i64, u64p, i64p,
    ]
    lib.repro_frontier_scatter.restype = None
    lib.repro_recount.argtypes = [u64p, u64p, i64p, i64, i64, i64p]
    lib.repro_recount.restype = None
    lib.repro_exchange.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p]
    lib.repro_exchange.restype = None
    lib.repro_push_round.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p]
    lib.repro_push_round.restype = None
    lib.repro_block_round.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p,
    ]
    lib.repro_block_round.restype = None
    lib.repro_block_round_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, i64,
    ]
    lib.repro_block_round_mt.restype = None
    lib.repro_pool_ensure.argtypes = [i64]
    lib.repro_pool_ensure.restype = i64
    lib.repro_scatter_or_mt.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64, i64]
    lib.repro_scatter_or_mt.restype = None
    lib.repro_exchange_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, i64,
    ]
    lib.repro_exchange_mt.restype = None
    lib.repro_push_round_mt.argtypes = [
        u64p, u64p, i64p, i64p, i64, i64, i64, i64p, i64p, i64,
    ]
    lib.repro_push_round_mt.restype = None
    lib.repro_frontier_scatter_mt.argtypes = [
        u64p, i32p, i64p, u8p, u8p, i64, i64, i64, i64p, i64p, i64,
        u64p, i64p, i64,
    ]
    lib.repro_frontier_scatter_mt.restype = None
    lib.repro_recount_mt.argtypes = [u64p, u64p, i64p, i64, i64, i64p, i64]
    lib.repro_recount_mt.restype = None
    return lib


_LIB = _build()

_U64P = ctypes.POINTER(ctypes.c_uint64)
_I64P = ctypes.POINTER(ctypes.c_int64)


def available() -> bool:
    """Whether the compiled kernels are usable on this machine."""
    return _LIB is not None


def _u64(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def scatter_or(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """OR ``source[senders[i]]`` into ``data[receivers[i]]`` for all ``i``.

    ``source`` must not share storage with the written rows of ``data`` (it
    is the start-of-step snapshot), all arrays must be C-contiguous, and the
    index arrays must be ``int64``.
    """
    _LIB.repro_scatter_or(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[1]),
    )


def exchange(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
) -> None:
    """Apply one push-pull round in swap form.

    Reads ``data`` (unchanged) and writes the complete end-of-round state
    into ``scratch`` — every row exactly once — using the caller-provided
    CSR buffers (``off``: ``n + 1`` int64 slots, ``adj``: at least
    ``2 * callers.size``).  **The caller must swap the two buffers
    afterwards**; this halves the memory traffic of snapshot + RMW.
    """
    _LIB.repro_exchange(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
    )


def push_round(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
) -> None:
    """Apply one push-only round in swap form (see :func:`exchange`).

    ``adj`` needs at least ``senders.size`` slots.
    """
    _LIB.repro_push_round(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
    )


def block_round(
    block: np.ndarray,
    gathered: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
) -> None:
    """OR ``gathered[senders[i]]`` into block-local row ``receivers[i]``.

    The paged layout's per-block round: ``gathered`` is the round's unique
    sender rows (snapshot copies, disjoint from ``block``), ``receivers``
    are block-local row indices, and ``off``/``adj`` are CSR scratch with
    ``block.shape[0] + 1`` and ``senders.size`` usable slots.  Mutates
    ``block`` in place; rows without incoming edges are untouched.
    """
    _LIB.repro_block_round(
        _u64(block),
        _u64(gathered),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(block.shape[0]),
        ctypes.c_int64(block.shape[1]),
        _i64(off),
        _i64(adj),
    )


_U8P = ctypes.POINTER(ctypes.c_uint8)
_I32P = ctypes.POINTER(ctypes.c_int32)


def frontier_scatter(
    data: np.ndarray,
    active: np.ndarray,
    nnz: np.ndarray,
    word_active: np.ndarray,
    dense_rows: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    val_buf: np.ndarray,
    lin_buf: np.ndarray,
) -> None:
    """Apply one word-sparse transmission batch with frontier bookkeeping.

    ``active``/``nnz``/``word_active``/``dense_rows`` are the
    :class:`~repro.engine.knowledge.FrontierKnowledge` bookkeeping arrays
    (mutated in place); ``val_buf``/``lin_buf`` are caller-managed pair
    buffers of at least ``nnz[senders].sum()`` elements (reused across
    rounds to avoid per-round page faults).  All arrays must be
    C-contiguous; index arrays int64.
    """
    _LIB.repro_frontier_scatter(
        _u64(data),
        active.ctypes.data_as(_I32P),
        _i64(nnz),
        word_active.ctypes.data_as(_U8P),
        dense_rows.ctypes.data_as(_U8P),
        ctypes.c_int64(active.shape[1]),
        ctypes.c_int64(data.shape[1]),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        _u64(val_buf),
        _i64(lin_buf),
    )


def recount_deficits(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Per-row count of bits in ``mask`` missing from ``data[rows]``."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
    )
    return deficits


# ---------------------------------------------------------------------- #
# Sharded (multithreaded) variants
# ---------------------------------------------------------------------- #

#: Worker threads known to exist in the C pool (grown lazily, never shrunk),
#: together with the process that owns them — pool threads do not survive
#: ``fork``, so a child process must not trust the inherited count.
_POOL_WORKERS = 0
_POOL_PID: Optional[int] = None

#: Hard cap on shards per job — far above any sensible core count, it only
#: bounds runaway configuration values.
MAX_SHARDS = 64


def ensure_shards(shards: int) -> int:
    """Grow the worker pool for ``shards``-way jobs; return the usable count.

    The calling thread always executes shard 0 itself, so ``shards`` shards
    need ``shards - 1`` pool workers.  Thread creation is best-effort: the
    return value (possibly just 1, meaning "run serial") is the shard count
    the ``*_mt`` kernels may actually be invoked with.  Safe after ``fork``
    (e.g. inside ``ProcessPoolExecutor`` workers): the cached count is
    per-process and the C pool re-spawns its threads in the child.
    """
    global _POOL_WORKERS, _POOL_PID
    if _LIB is None or shards <= 1:
        return 1
    pid = os.getpid()
    if pid != _POOL_PID:
        _POOL_WORKERS = 0
        _POOL_PID = pid
    shards = min(int(shards), MAX_SHARDS)
    if shards - 1 > _POOL_WORKERS:
        _POOL_WORKERS = int(_LIB.repro_pool_ensure(ctypes.c_int64(shards - 1)))
    return min(shards, _POOL_WORKERS + 1)


def scatter_or_mt(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`scatter_or`; ``shards`` must come from :func:`ensure_shards`."""
    _LIB.repro_scatter_or_mt(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        ctypes.c_int64(shards),
    )


def exchange_mt(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`exchange` (serial CSR build + row-sharded swap pass)."""
    _LIB.repro_exchange_mt(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        ctypes.c_int64(shards),
    )


def push_round_mt(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`push_round` (serial CSR build + row-sharded swap pass)."""
    _LIB.repro_push_round_mt(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
        _i64(off),
        _i64(adj),
        ctypes.c_int64(shards),
    )


def block_round_mt(
    block: np.ndarray,
    gathered: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    off: np.ndarray,
    adj: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`block_round` (serial CSR build + row-sharded OR pass)."""
    _LIB.repro_block_round_mt(
        _u64(block),
        _u64(gathered),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(block.shape[0]),
        ctypes.c_int64(block.shape[1]),
        _i64(off),
        _i64(adj),
        ctypes.c_int64(shards),
    )


def frontier_scatter_mt(
    data: np.ndarray,
    active: np.ndarray,
    nnz: np.ndarray,
    word_active: np.ndarray,
    dense_rows: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
    val_buf: np.ndarray,
    lin_buf: np.ndarray,
    shards: int,
) -> None:
    """Sharded :func:`frontier_scatter`; bookkeeping stays bit-identical."""
    _LIB.repro_frontier_scatter_mt(
        _u64(data),
        active.ctypes.data_as(_I32P),
        _i64(nnz),
        word_active.ctypes.data_as(_U8P),
        dense_rows.ctypes.data_as(_U8P),
        ctypes.c_int64(active.shape[1]),
        ctypes.c_int64(data.shape[1]),
        ctypes.c_int64(data.shape[0]),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        _u64(val_buf),
        _i64(lin_buf),
        ctypes.c_int64(shards),
    )


def recount_deficits_mt(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray, shards: int
) -> np.ndarray:
    """Sharded :func:`recount_deficits`."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount_mt(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
        ctypes.c_int64(shards),
    )
    return deficits
