"""Optional compiled kernels for the packed-bitset hot path.

NumPy's fancy-indexing machinery moves every gathered row through fresh
temporaries, which caps the gossip kernel's throughput well below what the
hardware allows.  The two primitives below — a sequential scatter-OR of
snapshot rows into live rows, and a fused mask-and-popcount deficit recount —
are tiny, allocation-free C loops, so this module compiles them once per
machine with the system C compiler and loads them through :mod:`ctypes`.

The build is strictly best-effort: if no compiler is present, the build
fails, or ``REPRO_DISABLE_CKERNEL`` is set in the environment, callers fall
back to the pure-NumPy implementations (which are semantically identical —
see ``tests/engine/test_kernel_equivalence.py``).  The shared library is
cached in a private per-user directory keyed on source hash and CPU
signature, so repeated imports pay nothing and heterogeneous machines
sharing a filesystem never load each other's ``-march=native`` binaries.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "available",
    "exchange",
    "push_round",
    "recount_deficits",
    "scatter_or",
]

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Full synchronous push-pull exchange: snapshot the matrix into `scratch`,
 * then for every channel (callers[i], targets[i]) OR each endpoint's
 * snapshot row into the other endpoint's live row. */
void repro_exchange(uint64_t *data, uint64_t *scratch,
                    const int64_t *callers, const int64_t *targets,
                    int64_t k, int64_t n, int64_t words) {
    memcpy(scratch, data, (size_t)n * (size_t)words * sizeof(uint64_t));
    for (int64_t i = 0; i < k; i++) {
        uint64_t *dc = data + callers[i] * words;
        uint64_t *dt = data + targets[i] * words;
        const uint64_t *sc = scratch + callers[i] * words;
        const uint64_t *st = scratch + targets[i] * words;
        for (int64_t w = 0; w < words; w++) {
            dc[w] |= st[w];
            dt[w] |= sc[w];
        }
    }
}

/* One-directional variant: snapshot, then OR snapshot[src[i]] into
 * data[dst[i]] for every transmission. */
void repro_push_round(uint64_t *data, uint64_t *scratch,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t n, int64_t words) {
    memcpy(scratch, data, (size_t)n * (size_t)words * sizeof(uint64_t));
    for (int64_t i = 0; i < k; i++) {
        uint64_t *d = data + dst[i] * words;
        const uint64_t *s = scratch + src[i] * words;
        for (int64_t w = 0; w < words; w++) {
            d[w] |= s[w];
        }
    }
}

/* OR source[src[i]] into data[dst[i]] for all i.  `source` must be a
 * start-of-step snapshot (disjoint storage from `data`), which makes the
 * result independent of processing order even with duplicate receivers. */
void repro_scatter_or(uint64_t *data, const uint64_t *source,
                      const int64_t *src, const int64_t *dst,
                      int64_t k, int64_t words) {
    for (int64_t i = 0; i < k; i++) {
        uint64_t *d = data + dst[i] * words;
        const uint64_t *s = source + src[i] * words;
        for (int64_t w = 0; w < words; w++) {
            d[w] |= s[w];
        }
    }
}

/* deficits[i] = popcount(mask & ~data[rows[i]]) — the number of required
 * message bits still missing from each listed row. */
void repro_recount(const uint64_t *data, const uint64_t *mask,
                   const int64_t *rows, int64_t k, int64_t words,
                   int64_t *deficits) {
    for (int64_t i = 0; i < k; i++) {
        const uint64_t *d = data + rows[i] * words;
        int64_t missing = 0;
        for (int64_t w = 0; w < words; w++) {
            missing += __builtin_popcountll(mask[w] & ~d[w]);
        }
        deficits[i] = missing;
    }
}
"""


def _cpu_signature() -> str:
    """A machine identifier for the cache key.

    The library is compiled with ``-march=native``, so a cache shared across
    heterogeneous CPUs (e.g. TMPDIR or HOME on a cluster filesystem) must
    not serve a binary built for a different microarchitecture.  The CPU
    feature flags are the closest portable proxy.
    """
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith(("flags", "Features")):
                    parts.append(line)
                    break
    except OSError:
        parts.append(platform.processor())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:8]


def _cache_dir(digest: str) -> Optional[str]:
    """A private, user-owned directory to build and load the library from.

    ``ctypes.CDLL`` executes code from the returned path, so it must not be
    attacker-preparable: prefer ``~/.cache``, fall back to a per-user temp
    directory, create it ``0700``, and refuse paths not owned by us or
    writable by others.
    """
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - exotic environments
        user = f"uid{os.getuid()}" if hasattr(os, "getuid") else "unknown"
    home_cache = os.path.join(os.path.expanduser("~"), ".cache")
    base = home_cache if os.path.isdir(home_cache) else tempfile.gettempdir()
    cache_dir = os.path.join(base, f"repro-ckernel-{user}-{digest}")
    try:
        os.makedirs(cache_dir, mode=0o700, exist_ok=True)
        if hasattr(os, "getuid"):
            st = os.stat(cache_dir)
            if st.st_uid != os.getuid() or (st.st_mode & 0o022):
                return None
    except OSError:
        return None
    return cache_dir


def _build() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_DISABLE_CKERNEL"):
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _cache_dir(f"{digest}-{_cpu_signature()}")
    if cache_dir is None:
        return None
    lib_path = os.path.join(cache_dir, "libreprokernel.so")
    try:
        if not os.path.exists(lib_path):
            src_path = os.path.join(cache_dir, "kernel.c")
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            tmp_path = lib_path + f".tmp{os.getpid()}"
            subprocess.run(
                [
                    compiler,
                    "-O3",
                    "-march=native",
                    "-shared",
                    "-fPIC",
                    src_path,
                    "-o",
                    tmp_path,
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)
        lib = ctypes.CDLL(lib_path)
    except Exception:
        return None
    u64p = ctypes.POINTER(ctypes.c_uint64)
    i64p = ctypes.POINTER(ctypes.c_int64)
    i64 = ctypes.c_int64
    lib.repro_scatter_or.argtypes = [u64p, u64p, i64p, i64p, i64, i64]
    lib.repro_scatter_or.restype = None
    lib.repro_recount.argtypes = [u64p, u64p, i64p, i64, i64, i64p]
    lib.repro_recount.restype = None
    lib.repro_exchange.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64]
    lib.repro_exchange.restype = None
    lib.repro_push_round.argtypes = [u64p, u64p, i64p, i64p, i64, i64, i64]
    lib.repro_push_round.restype = None
    return lib


_LIB = _build()

_U64P = ctypes.POINTER(ctypes.c_uint64)
_I64P = ctypes.POINTER(ctypes.c_int64)


def available() -> bool:
    """Whether the compiled kernels are usable on this machine."""
    return _LIB is not None


def _u64(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def scatter_or(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """OR ``source[senders[i]]`` into ``data[receivers[i]]`` for all ``i``.

    ``source`` must not share storage with the written rows of ``data`` (it
    is the start-of-step snapshot), all arrays must be C-contiguous, and the
    index arrays must be ``int64``.
    """
    _LIB.repro_scatter_or(
        _u64(data),
        _u64(source),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[1]),
    )


def exchange(
    data: np.ndarray,
    scratch: np.ndarray,
    callers: np.ndarray,
    targets: np.ndarray,
) -> None:
    """Snapshot ``data`` into ``scratch`` and apply one push-pull round."""
    _LIB.repro_exchange(
        _u64(data),
        _u64(scratch),
        _i64(callers),
        _i64(targets),
        ctypes.c_int64(callers.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
    )


def push_round(
    data: np.ndarray,
    scratch: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> None:
    """Snapshot ``data`` into ``scratch`` and apply one push-only round."""
    _LIB.repro_push_round(
        _u64(data),
        _u64(scratch),
        _i64(senders),
        _i64(receivers),
        ctypes.c_int64(senders.size),
        ctypes.c_int64(data.shape[0]),
        ctypes.c_int64(data.shape[1]),
    )


def recount_deficits(
    data: np.ndarray, mask: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Per-row count of bits in ``mask`` missing from ``data[rows]``."""
    deficits = np.empty(rows.size, dtype=np.int64)
    _LIB.repro_recount(
        _u64(data),
        _u64(mask),
        _i64(rows),
        ctypes.c_int64(rows.size),
        ctypes.c_int64(data.shape[1]),
        _i64(deficits),
    )
    return deficits
