"""Deterministic chaos harness for the supervised sweep executor.

The paper studies gossip that survives ``f = n^{epsilon'}`` random *node*
failures; this module turns the same adversarial mindset on our own execution
layer.  A :class:`FaultPlan` names concrete faults to inject at chosen
``(configuration, repetition)`` points of a sweep:

``kill``
    SIGKILL the pool worker mid-task (exercises ``BrokenProcessPool``
    recovery and crash/resume byte-identity of the result store).
``error``
    Raise a :class:`ChaosError` inside the task (exercises bounded retry with
    backoff).
``hang``
    Sleep for ``seconds`` before running the task (exercises per-task
    wall-clock timeouts and pool respawn).
``corrupt``
    Overwrite bytes of the record's just-written store line with garbage
    (exercises the store's per-line CRC32 skip-and-report path).

Plans are *deterministic*: :func:`sample_fault_plan` derives its choices from
:func:`repro.engine.rng.derive_seed`, so a chaos run is exactly reproducible
from ``(task order, seed, counts)`` — the same discipline used for simulation
seeds everywhere else.  Each fault fires on attempt indices ``< attempts``
(default 1), so a transient fault injected on the first attempt succeeds on
retry, while ``attempts`` larger than the retry budget simulates a poison
configuration that must be quarantined.

Faults select their target by *pair*: ``(config_hash, repetition)`` as used
by the result store's resume index, so the same plan stays valid across
resumed runs of the same grid.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .rng import derive_seed

__all__ = [
    "FAULT_KINDS",
    "ChaosError",
    "Fault",
    "FaultPlan",
    "ChaosSpec",
    "sample_fault_plan",
    "parse_chaos_counts",
    "inject_worker_faults",
    "corrupt_last_line",
    "NO_CHAOS",
]

#: Supported fault kinds, in the (stable) order used for seed derivation.
FAULT_KINDS = ("kill", "error", "hang", "corrupt")

#: Kinds injected inside the worker process (vs. on the store-writer side).
WORKER_FAULT_KINDS = ("kill", "error", "hang")

#: Resume identity of one unit of work, as used by the result store.
Pair = Tuple[str, int]


class ChaosError(RuntimeError):
    """Transient error raised by an injected ``error`` fault."""


def _check_kind(kind: str) -> str:
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
        )
    return kind


@dataclass(frozen=True)
class Fault:
    """One injected fault, targeted at a sweep (configuration, repetition).

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    config:
        Config hash (store pair identity) of the targeted configuration.
    repetition:
        Repetition index of the targeted task.
    attempts:
        The fault fires on attempt indices ``< attempts``; with the default 1
        it hits only the first attempt, so a retry succeeds.  Set it above the
        supervisor's retry budget to simulate a poison configuration.
    seconds:
        Sleep duration for ``hang`` faults.
    """

    kind: str
    config: str
    repetition: int
    attempts: int = 1
    seconds: float = 30.0

    def __post_init__(self) -> None:
        _check_kind(self.kind)
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")
        if self.seconds <= 0:
            raise ValueError(f"seconds must be positive, got {self.seconds}")

    @property
    def pair(self) -> Pair:
        return (self.config, int(self.repetition))

    def fires_on(self, attempt: int) -> bool:
        """Whether the fault fires on the given 0-based attempt index."""
        return attempt < self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults, indexable by sweep pair."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def is_empty(self) -> bool:
        return not self.faults

    def for_pair(self, pair: Pair) -> Tuple[Fault, ...]:
        """All faults targeting ``pair``."""
        return tuple(f for f in self.faults if f.pair == pair)

    def worker_faults(self, pair: Pair) -> Tuple[Fault, ...]:
        """Faults injected inside the worker process for ``pair``."""
        return tuple(
            f for f in self.faults if f.pair == pair and f.kind in WORKER_FAULT_KINDS
        )

    def store_faults(self, pair: Pair) -> Tuple[Fault, ...]:
        """Store-write faults (``corrupt``) for ``pair``."""
        return tuple(f for f in self.faults if f.pair == pair and f.kind == "corrupt")

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        parts = [
            f"{f.kind}@{f.config}.{f.repetition}"
            + (f"(x{f.attempts})" if f.attempts > 1 else "")
            for f in self.faults
        ]
        return ", ".join(parts)


#: A reusable plan representing fault-free execution.
NO_CHAOS = FaultPlan()


def parse_chaos_counts(text: str) -> Dict[str, int]:
    """Parse a CLI chaos spec like ``"kill=1,error=2"`` into kind counts.

    A bare kind (``"kill"``) means one fault of that kind.  Unknown kinds and
    negative counts raise :class:`ValueError` (a typo'd kind must not be
    silently ignored).
    """
    counts: Dict[str, int] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        kind, _, value = part.partition("=")
        kind = _check_kind(kind.strip())
        try:
            count = int(value) if value else 1
        except ValueError:
            raise ValueError(f"invalid fault count {value!r} for kind {kind!r}") from None
        if count < 0:
            raise ValueError(f"fault count must be non-negative, got {kind}={count}")
        counts[kind] = counts.get(kind, 0) + count
    return counts


def sample_fault_plan(
    pairs: Sequence[Pair],
    counts: Mapping[str, int],
    seed: Optional[int] = 0,
    *,
    attempts: int = 1,
    hang_seconds: float = 30.0,
) -> FaultPlan:
    """Deterministically choose fault targets among the sweep's pairs.

    For each kind, ``counts[kind]`` distinct pairs are drawn from a
    :func:`derive_seed`-keyed stream (one stream per kind), so the same
    ``(pairs, counts, seed)`` always yields the same plan.  Counts must lie in
    ``0 <= count <= len(pairs)``.
    """
    faults: List[Fault] = []
    for kind, count in sorted(counts.items()):
        _check_kind(kind)
        if not 0 <= int(count) <= len(pairs):
            raise ValueError(
                f"cannot inject {count} {kind!r} fault(s): sweep has {len(pairs)} "
                "(configuration, repetition) pairs"
            )
        rng = random.Random(derive_seed(seed, FAULT_KINDS.index(kind)))
        for index in sorted(rng.sample(range(len(pairs)), int(count))):
            config, repetition = pairs[index]
            faults.append(
                Fault(
                    kind=kind,
                    config=config,
                    repetition=repetition,
                    attempts=attempts,
                    seconds=hang_seconds,
                )
            )
    return FaultPlan(faults=tuple(faults))


@dataclass(frozen=True)
class ChaosSpec:
    """Chaos intent before the sweep grid is known.

    ``repro scenarios run --chaos kill=1,error=1`` carries a spec like this;
    :meth:`materialize` turns it into a concrete :class:`FaultPlan` once the
    (deterministically ordered) task pairs exist.
    """

    counts: Mapping[str, int] = field(default_factory=dict)
    seed: int = 0
    attempts: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for kind in self.counts:
            _check_kind(kind)
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")

    def materialize(self, pairs: Sequence[Pair]) -> FaultPlan:
        return sample_fault_plan(
            pairs,
            self.counts,
            self.seed,
            attempts=self.attempts,
            hang_seconds=self.hang_seconds,
        )


def inject_worker_faults(faults: Sequence[Fault], attempt: int) -> None:
    """Fire the worker-side faults scheduled for this attempt (if any).

    Called inside the pool worker right before the task function runs:
    ``kill`` SIGKILLs the worker process, ``error`` raises
    :class:`ChaosError`, ``hang`` sleeps for ``fault.seconds`` (and then lets
    the task run — a stall, not a failure, unless a timeout reaps it).
    """
    for fault in faults:
        if not fault.fires_on(attempt):
            continue
        if fault.kind == "kill":
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
        elif fault.kind == "error":
            raise ChaosError(
                f"injected fault at ({fault.config}, {fault.repetition}), "
                f"attempt {attempt}"
            )
        elif fault.kind == "hang":
            time.sleep(fault.seconds)


def corrupt_last_line(path: Union[str, Path], *, marker: bytes = b"\xff\xfe#chaos#") -> int:
    """Overwrite the middle of the file's last line with garbage, in place.

    The line keeps its length and trailing newline (so byte offsets of any
    concurrent appender stay valid) but becomes undecodable, which the
    hardened :class:`repro.io.store.ResultStore` must skip and report instead
    of failing.  Returns the number of corrupted bytes.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    end = len(data) - 1 if data.endswith(b"\n") else len(data)
    start = data.rfind(b"\n", 0, end) + 1
    line_length = end - start
    if line_length <= 0:
        raise ValueError(f"no line to corrupt in {path}")
    garbage = (marker * (line_length // len(marker) + 1))[:line_length]
    with path.open("r+b") as handle:
        handle.seek(start)
        handle.write(garbage)
        handle.flush()
        os.fsync(handle.fileno())
    return line_length
