"""Kernel backend registry: one dispatch surface over interchangeable kernels.

The knowledge/completion hot paths can run on three interchangeable
implementations, and protocols never see which one is active:

``numpy``
    Pure-NumPy kernels (the layered scatter-OR and ``reduceat`` merges
    implemented inside :mod:`repro.engine.knowledge`).  Always available;
    the fallback whenever the compiled library is missing.

``c``
    The serial compiled kernels from :mod:`repro.engine._ckernel` — fused
    snapshot + scatter-OR rounds, the word-sparse frontier pass, and the
    mask-and-popcount deficit recount.

``c-threads``
    The same compiled kernels, sharded across a persistent worker pool.
    Receiver rows are partitioned into disjoint contiguous shards and all
    gathers precede all writes, so trajectories are **bit-identical to the
    serial kernels for every thread count** (see ``docs/parallelism.md``).
    The per-batch thread count is chosen automatically from the batch's
    word traffic, with a measured small-batch cutoff so small runs never
    pay pool-dispatch overhead.

Selection is environment driven and resolved once per process:

``REPRO_KERNEL_BACKEND``
    ``auto`` (default), ``numpy``, ``c`` or ``c-threads``.  ``auto`` picks
    ``c-threads`` when the compiled library is available and more than one
    thread is allowed, ``c`` when compiled but single-threaded, and
    ``numpy`` otherwise.

``REPRO_KERNEL_THREADS``
    Maximum threads for ``c-threads`` (default: the machine's CPU count).
    ``1`` degenerates to serial dispatch.

``REPRO_DISABLE_CKERNEL``
    Back-compat kill switch: prevents the compiled build entirely, so every
    backend resolves to NumPy behaviour.

Tests and benchmarks can override the process-wide choice with
:func:`use` (a context manager) or :func:`set_active`.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Type

import numpy as np

from . import _ckernel

__all__ = [
    "BACKENDS",
    "CSerialBackend",
    "CThreadsBackend",
    "KernelBackend",
    "NumpyBackend",
    "active",
    "default_max_threads",
    "resolve",
    "set_active",
    "simd_info",
    "use",
]


def simd_info() -> Dict[str, object]:
    """The compiled library's SIMD dispatch state for report headers."""
    return {
        "active": _ckernel.simd_name(),
        "detected": _ckernel.simd_name(_ckernel.simd_detected()),
        "disabled": bool(os.environ.get("REPRO_DISABLE_SIMD")),
    }

#: Word-units (64-bit word OR-or-copy operations) of batch work per shard.
#: Measured on the committed baseline machine: pool dispatch costs ~5 us per
#: job and the serial kernels move ~1 word/ns, so a shard must carry roughly
#: 64Ki word-units (~60 us of serial work) before splitting it off pays.
#: Batches below twice this never thread — in particular a full n=1000
#: exchange round (~48k word-units) always stays serial.
WORDS_PER_SHARD = 1 << 16


def default_max_threads() -> int:
    """Thread budget for ``c-threads``: ``REPRO_KERNEL_THREADS`` or CPU count."""
    env = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_KERNEL_THREADS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


class KernelBackend:
    """Interface every kernel backend implements.

    The knowledge-matrix code is structured as *"if the backend is compiled,
    hand it the batch; otherwise run the in-line NumPy kernels"* — so the one
    method every backend must answer is :meth:`use_compiled`.  The batch
    methods mirror the :mod:`repro.engine._ckernel` primitives and are only
    invoked when :meth:`use_compiled` returned true.
    """

    name = "abstract"

    def use_compiled(self) -> bool:
        """Whether the compiled batch methods below may be called."""
        raise NotImplementedError

    def threads_for(self, work_units: int) -> int:
        """Threads a batch of ``work_units`` word-units would be run on."""
        return 1

    def describe(self) -> Dict[str, object]:
        """Backend identity for benchmark/report headers."""
        return {"name": self.name, "compiled": self.use_compiled(), "max_threads": 1}

    # -- compiled batch primitives (only called when use_compiled()) ---- #
    def scatter_or(self, data, source, senders, receivers) -> None:
        raise NotImplementedError

    def exchange(
        self, data, scratch, callers, targets, off, adj,
        mask=None, deficits=None,
    ) -> None:
        """Swap-form round: writes the next state into ``scratch``; the
        caller swaps the buffers afterwards (see ``_ckernel.exchange``).
        ``mask``/``deficits`` opt into the fused completion recount."""
        raise NotImplementedError

    def exchange_filtered(
        self, data, scratch, callers, targets, off, adj,
        complete, promoted, full_row, mask=None, deficits=None,
    ) -> None:
        """Saturation-filtered swap-form round (see
        ``_ckernel.exchange_filtered``): complete receivers keep their
        rows, receivers of complete senders get one ``full_row`` memcpy
        (reported in ``promoted``)."""
        raise NotImplementedError

    def push_round(self, data, scratch, senders, receivers, off, adj) -> None:
        raise NotImplementedError

    def block_round(self, block, gathered, senders, receivers, off, adj) -> None:
        """Paged-layout per-block round: OR gathered sender rows into the
        block's local receiver rows (see ``_ckernel.block_round``)."""
        raise NotImplementedError

    def frontier_scatter(
        self, data, active, nnz, word_active, dense_rows,
        senders, receivers, val_buf, lin_buf, total,
    ) -> None:
        raise NotImplementedError

    def recount_deficits(self, data, mask, rows) -> np.ndarray:
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """Pure-NumPy execution: every call site takes its in-line NumPy path."""

    name = "numpy"

    def use_compiled(self) -> bool:
        return False

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "compiled": False, "max_threads": 1}


class CSerialBackend(KernelBackend):
    """Serial compiled kernels (the PR 1-3 behaviour)."""

    name = "c"

    def use_compiled(self) -> bool:
        # Checked live (not cached) so tests may stub out the library.
        return _ckernel.available()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "compiled": self.use_compiled(),
            "max_threads": 1,
            "simd": simd_info(),
        }

    def scatter_or(self, data, source, senders, receivers) -> None:
        _ckernel.scatter_or(data, source, senders, receivers)

    def exchange(
        self, data, scratch, callers, targets, off, adj,
        mask=None, deficits=None,
    ) -> None:
        _ckernel.exchange(
            data, scratch, callers, targets, off, adj, mask, deficits
        )

    def exchange_filtered(
        self, data, scratch, callers, targets, off, adj,
        complete, promoted, full_row, mask=None, deficits=None,
    ) -> None:
        _ckernel.exchange_filtered(
            data, scratch, callers, targets, off, adj,
            complete, promoted, full_row, mask, deficits,
        )

    def push_round(self, data, scratch, senders, receivers, off, adj) -> None:
        _ckernel.push_round(data, scratch, senders, receivers, off, adj)

    def block_round(self, block, gathered, senders, receivers, off, adj) -> None:
        _ckernel.block_round(block, gathered, senders, receivers, off, adj)

    def frontier_scatter(
        self, data, active, nnz, word_active, dense_rows,
        senders, receivers, val_buf, lin_buf, total,
    ) -> None:
        _ckernel.frontier_scatter(
            data, active, nnz, word_active, dense_rows,
            senders, receivers, val_buf, lin_buf,
        )

    def recount_deficits(self, data, mask, rows) -> np.ndarray:
        return _ckernel.recount_deficits(data, mask, rows)


class CThreadsBackend(CSerialBackend):
    """Compiled kernels sharded across the persistent worker pool.

    Parameters
    ----------
    max_threads:
        Upper bound on shards per batch (default
        :func:`default_max_threads`).
    shard_work:
        Word-units of batch work per shard (default
        :data:`WORDS_PER_SHARD`).  Tests force tiny values to exercise the
        threaded kernels on small batches; benchmarks may raise it to study
        the dispatch cutoff.
    """

    name = "c-threads"

    def __init__(
        self,
        max_threads: Optional[int] = None,
        shard_work: Optional[int] = None,
    ) -> None:
        self.max_threads = (
            default_max_threads() if max_threads is None else max(1, int(max_threads))
        )
        self.shard_work = (
            WORDS_PER_SHARD if shard_work is None else max(1, int(shard_work))
        )

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "compiled": self.use_compiled(),
            "max_threads": self.max_threads,
            "shard_work": self.shard_work,
            "simd": simd_info(),
        }

    def threads_for(self, work_units: int) -> int:
        """Shard count for a batch moving ``work_units`` 64-bit words.

        One shard per :attr:`shard_work` word-units, clamped to
        :attr:`max_threads`; batches under two shards' worth of work run
        serial (the measured small-batch cutoff — dispatching the pool for
        less work than it amortizes would *slow down* small n).
        """
        threads = min(self.max_threads, work_units // self.shard_work)
        return int(threads) if threads >= 2 else 1

    def _shards(self, work_units: int) -> int:
        threads = self.threads_for(work_units)
        if threads <= 1:
            return 1
        return _ckernel.ensure_shards(threads)

    def scatter_or(self, data, source, senders, receivers) -> None:
        shards = self._shards(senders.size * data.shape[1])
        if shards > 1:
            _ckernel.scatter_or_mt(data, source, senders, receivers, shards)
        else:
            _ckernel.scatter_or(data, source, senders, receivers)

    def exchange(
        self, data, scratch, callers, targets, off, adj,
        mask=None, deficits=None,
    ) -> None:
        # Every row is read and written once, plus a partner row per
        # channel direction.
        n, words = data.shape
        shards = self._shards((2 * n + 2 * callers.size) * words)
        if shards > 1:
            _ckernel.exchange_mt(
                data, scratch, callers, targets, off, adj, shards,
                mask, deficits,
            )
        else:
            _ckernel.exchange(
                data, scratch, callers, targets, off, adj, mask, deficits
            )

    def exchange_filtered(
        self, data, scratch, callers, targets, off, adj,
        complete, promoted, full_row, mask=None, deficits=None,
    ) -> None:
        n, words = data.shape
        shards = self._shards((2 * n + 2 * callers.size) * words)
        if shards > 1:
            _ckernel.exchange_filtered_mt(
                data, scratch, callers, targets, off, adj,
                complete, promoted, full_row, shards, mask, deficits,
            )
        else:
            _ckernel.exchange_filtered(
                data, scratch, callers, targets, off, adj,
                complete, promoted, full_row, mask, deficits,
            )

    def push_round(self, data, scratch, senders, receivers, off, adj) -> None:
        n, words = data.shape
        shards = self._shards((2 * n + senders.size) * words)
        if shards > 1:
            _ckernel.push_round_mt(
                data, scratch, senders, receivers, off, adj, shards
            )
        else:
            _ckernel.push_round(data, scratch, senders, receivers, off, adj)

    def block_round(self, block, gathered, senders, receivers, off, adj) -> None:
        shards = self._shards(senders.size * block.shape[1])
        if shards > 1:
            _ckernel.block_round_mt(
                block, gathered, senders, receivers, off, adj, shards
            )
        else:
            _ckernel.block_round(block, gathered, senders, receivers, off, adj)

    def frontier_scatter(
        self, data, active, nnz, word_active, dense_rows,
        senders, receivers, val_buf, lin_buf, total,
    ) -> None:
        # ``total`` word pairs are gathered and scattered once each.
        shards = self._shards(2 * total)
        if shards > 1:
            _ckernel.frontier_scatter_mt(
                data, active, nnz, word_active, dense_rows,
                senders, receivers, val_buf, lin_buf, shards,
            )
        else:
            _ckernel.frontier_scatter(
                data, active, nnz, word_active, dense_rows,
                senders, receivers, val_buf, lin_buf,
            )

    def recount_deficits(self, data, mask, rows) -> np.ndarray:
        shards = self._shards(rows.size * data.shape[1])
        if shards > 1:
            return _ckernel.recount_deficits_mt(data, mask, rows, shards)
        return _ckernel.recount_deficits(data, mask, rows)


#: Backend registry: name -> class.  ``auto`` is a resolution rule, not a
#: registry entry — see :func:`resolve`.
BACKENDS: Dict[str, Type[KernelBackend]] = {
    NumpyBackend.name: NumpyBackend,
    CSerialBackend.name: CSerialBackend,
    CThreadsBackend.name: CThreadsBackend,
}


def resolve(
    name: Optional[str] = None, *, max_threads: Optional[int] = None
) -> KernelBackend:
    """Construct the backend ``name`` (or the environment's choice).

    ``name=None`` reads ``REPRO_KERNEL_BACKEND`` (default ``auto``).
    ``auto`` picks the fastest correct option for this process: the
    threaded compiled kernels when available and more than one thread is
    allowed, the serial compiled kernels when single-threaded, NumPy when
    there is no compiled library at all.
    """
    if name is None:
        name = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower() or "auto"
    if name == "auto":
        if not _ckernel.available():
            return NumpyBackend()
        threads = default_max_threads() if max_threads is None else max_threads
        if threads > 1:
            return CThreadsBackend(max_threads=threads)
        return CSerialBackend()
    try:
        cls = BACKENDS[name]
    except KeyError:
        options = ", ".join(sorted(BACKENDS) + ["auto"])
        raise ValueError(
            f"unknown kernel backend {name!r} (choose from: {options})"
        ) from None
    if cls is not NumpyBackend and not _ckernel.available():
        # An *explicit* request for a compiled backend that cannot run
        # compiled code must not degrade silently: every dispatch site
        # would quietly take the NumPy path, so e.g. a CI job meant to
        # exercise the threaded kernels would pass green without covering
        # them.  Warn loudly (the run is still correct, just not what was
        # asked for).
        warnings.warn(
            f"kernel backend {name!r} was requested but the compiled "
            "library is unavailable (no C compiler, failed build, or "
            "REPRO_DISABLE_CKERNEL set); kernels will run on NumPy",
            RuntimeWarning,
            stacklevel=2,
        )
    if cls is CThreadsBackend:
        return CThreadsBackend(max_threads=max_threads)
    return cls()


_ACTIVE: Optional[KernelBackend] = None


def active() -> KernelBackend:
    """The process-wide backend (resolved from the environment on first use)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve()
    return _ACTIVE


def set_active(backend: Optional[KernelBackend]) -> None:
    """Install ``backend`` process-wide; ``None`` re-resolves from the env."""
    global _ACTIVE
    _ACTIVE = backend


@contextmanager
def use(
    backend: "str | KernelBackend", **kwargs: object
) -> Iterator[KernelBackend]:
    """Temporarily switch the active backend (tests, benchmark A/B runs)."""
    if not isinstance(backend, KernelBackend):
        backend = resolve(backend, **kwargs)
    previous = _ACTIVE
    set_active(backend)
    try:
        yield backend
    finally:
        set_active(previous)
