"""Deterministic random-number management for simulations.

Every simulation component in this library draws randomness from a
:class:`numpy.random.Generator`.  To keep experiments reproducible while still
allowing independent repetitions and independent sub-processes (parameter
sweeps), generators are derived from explicit integer seeds through
:class:`numpy.random.SeedSequence` spawning.

The helpers in this module are intentionally tiny; their purpose is to give
every call site a single, consistent way of obtaining randomness so that a
recorded ``seed`` in an experiment result is sufficient to replay the run.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "RandomState",
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "ensure_rng",
]

#: Type accepted wherever a source of randomness is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: RandomState = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer seed, an existing generator (which
        is returned unchanged) or a :class:`numpy.random.SeedSequence`.

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def ensure_rng(rng: RandomState) -> np.random.Generator:
    """Alias of :func:`make_rng` used at API boundaries for readability."""
    return make_rng(rng)


def spawn_rngs(rng: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are derived via ``SeedSequence.spawn`` when possible so that
    repeated calls with the same parent seed give the same family of streams.

    Parameters
    ----------
    rng:
        Parent randomness (seed, generator, or seed sequence).
    count:
        Number of child generators to create.  Must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(rng, np.random.SeedSequence):
        children = rng.spawn(count)
        return [np.random.default_rng(c) for c in children]
    if isinstance(rng, np.random.Generator):
        seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]
    # ``rng`` is an int or None: build a seed sequence first.
    seq = np.random.SeedSequence(rng)
    return [np.random.default_rng(c) for c in seq.spawn(count)]


def derive_seed(base_seed: Optional[int], *components: int) -> int:
    """Deterministically derive a sub-seed from a base seed and components.

    Used by experiment harnesses to give every (configuration, repetition)
    pair its own stable seed: ``derive_seed(seed, size_index, repetition)``.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.  ``None`` is mapped to ``0``.
    components:
        Integer coordinates identifying the sub-run.
    """
    entropy: Sequence[int] = [0 if base_seed is None else int(base_seed)]
    seq = np.random.SeedSequence(entropy=list(entropy) + [int(c) for c in components])
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))
