"""Random phone call model execution substrate.

This package provides the building blocks shared by every protocol in the
library: deterministic randomness management (:mod:`repro.engine.rng`), packed
bitset knowledge tracking (:mod:`repro.engine.knowledge`), the pluggable
knowledge-storage layouts and their selection registry
(:mod:`repro.engine.layouts`), the kernel backend
registry that selects between NumPy, serial-C and threaded-C execution
(:mod:`repro.engine.backends`), per-step channel bookkeeping
(:mod:`repro.engine.channels`), communication-cost accounting
(:mod:`repro.engine.metrics`), crash-failure plans
(:mod:`repro.engine.failures`) and per-round progress traces
(:mod:`repro.engine.trace`).
"""

from . import backends
from .channels import ChannelSet, open_channels
from .event_clock import (
    ChurnPlan,
    EventGroup,
    EventScheduler,
    group_events,
    sample_churn_plan,
)
from .chaos import (
    ChaosError,
    ChaosSpec,
    Fault,
    FaultPlan,
    NO_CHAOS,
    parse_chaos_counts,
    sample_fault_plan,
)
from .failures import (
    KNOWN_INJECTION_POINTS,
    NO_FAILURES,
    FailurePlan,
    sample_uniform_failures,
)
from .knowledge import (
    FrontierKnowledge,
    KnowledgeMatrix,
    KnowledgeStorage,
    SingleMessageState,
    WORD_BITS,
    adaptive_knowledge,
    dense_knowledge,
)
from . import layouts
from .layouts import PagedKnowledge, SparseKnowledge
from .metrics import MessageAccounting, PhaseTotals, TransmissionLedger
from .rng import RandomState, derive_seed, ensure_rng, make_rng, spawn_rngs
from .trace import RoundRecord, SpreadingTrace

__all__ = [
    "backends",
    "ChannelSet",
    "open_channels",
    "ChurnPlan",
    "EventGroup",
    "EventScheduler",
    "group_events",
    "sample_churn_plan",
    "ChaosError",
    "ChaosSpec",
    "Fault",
    "FaultPlan",
    "NO_CHAOS",
    "parse_chaos_counts",
    "sample_fault_plan",
    "KNOWN_INJECTION_POINTS",
    "NO_FAILURES",
    "FailurePlan",
    "sample_uniform_failures",
    "FrontierKnowledge",
    "KnowledgeMatrix",
    "KnowledgeStorage",
    "PagedKnowledge",
    "SparseKnowledge",
    "SingleMessageState",
    "WORD_BITS",
    "adaptive_knowledge",
    "dense_knowledge",
    "layouts",
    "MessageAccounting",
    "PhaseTotals",
    "TransmissionLedger",
    "RandomState",
    "derive_seed",
    "ensure_rng",
    "make_rng",
    "spawn_rngs",
    "RoundRecord",
    "SpreadingTrace",
]
