"""Packed-bitset bookkeeping of which node knows which original message.

Gossiping is an all-to-all dissemination problem: each of the ``n`` nodes
starts with one original message and every node must eventually know all ``n``
messages.  The simulator therefore has to track, for every node, the *set* of
original messages it currently knows.  A dense boolean ``n x n`` matrix would
need ``n**2`` bytes; instead we pack message sets into rows of 64-bit words,
which reduces memory by a factor of eight and turns message-set unions (the
only mutation the random phone call model needs) into batched scatter-OR
kernels.

All bulk updates are fully batched — there is no per-transmission Python
loop.  A round is applied as one *snapshot-gather + scatter-OR*: the sender
rows involved are read (or the whole matrix double-buffered) before any row
is written, which implements the synchronous-model discipline that every
transmission of a step reads start-of-step state.  Duplicate receivers are
resolved either by an order-independent compiled pass — serial or sharded
across a worker pool, dispatched through the active
:mod:`repro.engine.backends` backend (``REPRO_KERNEL_BACKEND`` /
``REPRO_KERNEL_THREADS``; ``REPRO_DISABLE_CKERNEL=1`` forces NumPy) — or by
a layered NumPy scatter; all paths are pinned bit-identical by
``tests/engine/test_kernel_equivalence.py``.

Storage is *pluggable*.  :class:`KnowledgeStorage` defines the interface
every layout implements — snapshot-read row gathers, order-independent
scatter-ORs, the two batched round entry points and the aggregate queries —
and protocols only ever talk to that interface.  This module provides the
dense family:

``KnowledgeMatrix``
    The full gossiping state as one contiguous ``n_nodes x words`` matrix,
    updated through the dense batched kernels.  The default layout whenever
    it fits in memory.

``FrontierKnowledge``
    A :class:`KnowledgeMatrix` that additionally tracks, per row, the set of
    nonzero (active) 64-bit words as an index frontier.  While a batch of
    transmissions is sparse — the senders' active words are few compared to
    the full row width — updates scatter only the active words instead of
    gathering whole rows, so early gossip rounds cost ``O(frontier)`` rather
    than ``O(n x words)``.  Rows ratchet one-way onto the dense path as they
    saturate past the crossover threshold; results are bit-identical to the
    dense kernels (``tests/engine/test_frontier_knowledge.py``).

``SingleMessageState``
    A light-weight informed/uninformed boolean vector used by the
    single-message *broadcasting* baselines in :mod:`repro.broadcast`.

The block-paged and lifetime-sparse layouts that break the dense memory wall
live in :mod:`repro.engine.layouts` together with the layout registry
(``REPRO_KNOWLEDGE_LAYOUT`` / :func:`repro.engine.layouts.use`).  Protocols
construct their state through :func:`adaptive_knowledge`, which delegates to
the registry's memory model; :func:`dense_knowledge` keeps the historical
frontier-or-plain choice for callers that explicitly want the dense family.

No caller outside this package may hold a raw ``data`` reference: the
swap-form kernels exchange the underlying buffer, and the paged/sparse
layouts do not have a resident dense matrix at all.  Use ``rows`` /
``scatter_rows`` / ``count_missing`` and friends instead; the read-only
``data`` property on non-dense layouts materializes a dense copy for tests
and debugging only.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from . import backends

__all__ = [
    "FrontierKnowledge",
    "KnowledgeMatrix",
    "KnowledgeStorage",
    "SingleMessageState",
    "WORD_BITS",
    "adaptive_knowledge",
    "dense_knowledge",
]

#: Number of bits per storage word.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def _n_words(n_bits: int) -> int:
    """Number of 64-bit words needed to store ``n_bits`` bits."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


#: Matrix size (``n_nodes * words``) below which one-directional rounds keep
#: the snapshot + scatter path instead of the swap-form kernel: small
#: matrices live in cache, so the swap form's O(batch) CSR build costs more
#: than the row traffic it saves (measured endpoints: -18% at 16k word
#: matrices, +25% from ~400k up; exchange rounds carry two edges per channel
#: and amortize the build even at small sizes, so they are not gated).
#: ``REPRO_SWAP_MIN_WORK`` overrides the floor so the differential harness
#: and CI can force the swap/filtered-swap kernels onto tiny matrices.
_SWAP_MIN_WORK = int(os.environ.get("REPRO_SWAP_MIN_WORK", 1 << 17))


def _layered_scatter(
    data: np.ndarray,
    source: np.ndarray,
    senders: np.ndarray,
    receivers: np.ndarray,
) -> np.ndarray:
    """OR ``source[senders[i]]`` into ``data[receivers[i]]`` for all ``i``.

    The pure-NumPy duplicate-receiver resolution shared by every layout:
    the batch is sorted by receiver and resolved in *layers* — layer ``k``
    holds each receiver's ``k``-th incoming transmission, so receivers are
    unique within a layer and each layer is one vectorised gather-OR-scatter.
    The number of layers is the maximum in-degree (``O(log n / log log n)``
    w.h.p.), not the number of transmissions.  This outperforms
    ``bitwise_or.reduceat``, whose generic inner loop is an order of
    magnitude slower than the fancy-indexing fast path.

    ``source`` must be snapshot storage disjoint from ``data``.  Returns the
    sorted unique receivers written.
    """
    order = np.argsort(receivers, kind="stable")
    r_sorted = receivers[order]
    s_sorted = senders[order]
    first = np.r_[True, r_sorted[1:] != r_sorted[:-1]]
    positions = np.arange(r_sorted.size)
    starts = positions[first]
    rank = positions - np.repeat(starts, np.diff(np.r_[starts, r_sorted.size]))
    for k in range(int(rank.max()) + 1):
        layer = rank == k
        data[r_sorted[layer]] |= source[s_sorted[layer]]
    return r_sorted[starts]


class KnowledgeStorage:
    """Interface and shared logic for pluggable knowledge-storage layouts.

    Concrete layouts — the dense :class:`KnowledgeMatrix` family here, the
    block-paged and lifetime-sparse layouts in :mod:`repro.engine.layouts` —
    implement the storage primitives (:meth:`rows`, :meth:`iter_blocks`,
    :meth:`scatter_rows`, :meth:`assign_rows`, the two round entry points
    and the point mutators); everything else — aggregate queries, equality,
    fingerprints, the saturation filter — is derived here, so all layouts
    share one behaviour by construction.

    The contract every layout must honour:

    * **Snapshot rounds.**  ``apply_transmissions`` / ``apply_exchange``
      evaluate every transmission of a batch against the same start-of-step
      state: all gathers strictly precede all writes.
    * **Order-independent merges.**  Duplicate receivers within a batch are
      resolved by OR, which commutes — so any gather-all-then-write-all
      schedule yields the same bits.
    * **Bit-identity.**  Given equal seeds, trajectories are bit-identical
      across every layout (and every kernel backend) at every size where
      the dense layout fits.  ``tests/engine/test_layouts.py`` pins this.

    Protocols and analysis code must go through this interface; holding a
    raw ``data`` reference is not allowed (the swap-form kernels exchange
    the underlying buffer, and non-dense layouts have no resident matrix).
    """

    __slots__ = ("n_nodes", "n_messages", "words", "fused_deficits", "filter_stats")

    #: Registry tag of the layout family (``dense`` / ``paged`` / ``sparse``).
    layout = "dense"

    def __init__(self, n_nodes: int, n_messages: Optional[int] = None) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_messages is None:
            n_messages = n_nodes
        if n_messages <= 0:
            raise ValueError(f"n_messages must be positive, got {n_messages}")
        self.n_nodes = int(n_nodes)
        self.n_messages = int(n_messages)
        self.words = _n_words(self.n_messages)
        #: Whether the most recent :meth:`apply_exchange` call wrote the
        #: caller's ``deficits_out`` array in-kernel (see that method).
        #: Callers branch on this to skip their separate recount pass.
        self.fused_deficits = False
        #: Saturation-filter counters, accumulated over the state's life:
        #: filtered rounds seen, directed edges offered to the filter,
        #: edges dropped (either endpoint already complete), and receiver
        #: rows promoted by a single full-row assignment.
        self.filter_stats = {
            "rounds": 0,
            "edges": 0,
            "edges_dropped": 0,
            "promotions": 0,
        }

    def _note_filter(
        self, total_edges: int, kept_edges: int, promotions: int
    ) -> None:
        """Accumulate saturation-filter hit counters for one round."""
        stats = self.filter_stats
        stats["rounds"] += 1
        stats["edges"] += int(total_edges)
        stats["edges_dropped"] += int(total_edges) - int(kept_edges)
        stats["promotions"] += int(promotions)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_nodes: int, n_messages: Optional[int] = None) -> "KnowledgeStorage":
        """A state in which no node knows any message."""
        return cls(n_nodes, n_messages, initialize_own=False)

    def copy(self) -> "KnowledgeStorage":
        """Deep copy of the knowledge state."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Storage primitives (implemented per layout)
    # ------------------------------------------------------------------ #
    def rows(self, nodes: np.ndarray) -> np.ndarray:
        """Snapshot copies of the bitset rows of ``nodes`` (gather).

        The result is a fresh dense ``(len(nodes), words)`` array owned by
        the caller — safe to hold across subsequent bulk updates.
        """
        raise NotImplementedError

    def row(self, node: int) -> np.ndarray:
        """``node``'s bitset row.

        Dense layouts return a live view valid only until the next bulk
        update; non-dense layouts return a materialized copy.  Do not hold
        the result across :meth:`apply_transmissions` /
        :meth:`apply_exchange` calls.
        """
        raise NotImplementedError

    def iter_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_start, block)`` dense blocks covering all rows in order.

        Blocks are consecutive, non-overlapping row ranges; concatenated they
        form the full dense matrix.  Dense layouts yield views (read-only by
        convention); non-dense layouts may yield materialized copies.
        """
        raise NotImplementedError

    def scatter_rows(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        """OR ``source[src_idx[i]]`` into row ``receivers[i]`` for all ``i``.

        ``source`` is external row storage (never this object's own rows),
        so the scatter is order-independent under duplicate receivers.  This
        is the interface used by code that merges externally-staged rows —
        e.g. random-walk payload delivery — replacing direct ``data``
        mutation.
        """
        raise NotImplementedError

    def assign_rows(self, nodes: np.ndarray, row: np.ndarray) -> None:
        """Overwrite each row in ``nodes`` with the packed row ``row``."""
        raise NotImplementedError

    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply a batch of directed transmissions ``senders[i] -> receivers[i]``."""
        raise NotImplementedError

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
        deficit_mask: Optional[np.ndarray] = None,
        deficits_out: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Apply one synchronous push–pull round: ``callers[i] <-> targets[i]``.

        ``deficit_mask``/``deficits_out`` (given together) opt into the
        fused completion recount: layouts that support it write
        ``popcount(deficit_mask & ~row)`` into ``deficits_out[r]`` for every
        row they change (``deficits_out`` must hold valid counts on entry —
        unchanged rows are left alone) and set :attr:`fused_deficits`;
        layouts that don't simply ignore the arguments and leave
        :attr:`fused_deficits` false, in which case the caller recounts.
        """
        raise NotImplementedError

    def add(self, node: int, message: int) -> None:
        """Mark ``node`` as knowing ``message``."""
        raise NotImplementedError

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        """Mark every entry of ``nodes`` as knowing ``message``."""
        raise NotImplementedError

    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        """OR an external bitset row into ``dst``'s knowledge."""
        raise NotImplementedError

    def union_from_node(
        self, dst: int, src: int, snapshot: Optional[np.ndarray] = None
    ) -> None:
        """Make ``dst`` learn everything ``src`` knows."""
        raise NotImplementedError

    def storage_nbytes(self) -> int:
        """Bytes of resident storage (rows plus layout bookkeeping)."""
        raise NotImplementedError

    def notify_rows_written(self, rows: np.ndarray) -> None:
        """Tell the storage that ``rows`` were mutated outside the helpers.

        Layouts with bookkeeping (the frontier) override this; a no-op for
        plain storage.  New code should prefer :meth:`scatter_rows`, which
        keeps bookkeeping consistent without a separate notification.
        """

    # ------------------------------------------------------------------ #
    # Derived: dense materialization
    # ------------------------------------------------------------------ #
    def _materialize(self) -> np.ndarray:
        """The full dense matrix, assembled block by block."""
        out = np.empty((self.n_nodes, self.words), dtype=_WORD_DTYPE)
        for start, block in self.iter_blocks():
            out[start : start + block.shape[0]] = block
        return out

    @property
    def data(self) -> np.ndarray:
        """Read-only dense materialization of the state.

        For non-dense layouts this allocates the full ``n_nodes x words``
        matrix — intended for tests and debugging, never for hot paths.
        (:class:`KnowledgeMatrix` shadows this with its resident buffer.)
        """
        out = self._materialize()
        out.setflags(write=False)
        return out

    def snapshot(self) -> np.ndarray:
        """A dense copy of the word matrix (used for synchronous-step reads)."""
        return self._materialize()

    # ------------------------------------------------------------------ #
    # Derived: element access
    # ------------------------------------------------------------------ #
    def _bit(self, message: int) -> np.uint64:
        return np.uint64(1) << np.uint64(message % WORD_BITS)

    def _check_message(self, message: int) -> None:
        if not 0 <= message < self.n_messages:
            raise IndexError(
                f"message {message} out of range [0, {self.n_messages})"
            )

    def knows(self, node: int, message: int) -> bool:
        """Whether ``node`` currently knows ``message``."""
        self._check_message(message)
        word = self.row(node)[message // WORD_BITS]
        return bool(word & self._bit(message))

    def known_messages(self, node: int) -> np.ndarray:
        """Sorted array of message identifiers known by ``node``."""
        bits = np.unpackbits(
            np.ascontiguousarray(self.row(node)).view(np.uint8), bitorder="little"
        )
        return np.flatnonzero(bits[: self.n_messages])

    def missing_messages_at(self, node: int) -> np.ndarray:
        """Message identifiers *not* known by ``node``."""
        known = np.unpackbits(
            np.ascontiguousarray(self.row(node)).view(np.uint8), bitorder="little"
        )
        return np.flatnonzero(~known[: self.n_messages].astype(bool))

    # ------------------------------------------------------------------ #
    # Derived: aggregate queries (stream over blocks)
    # ------------------------------------------------------------------ #
    def counts(self) -> np.ndarray:
        """Number of messages known by each node (length ``n_nodes``)."""
        out = np.empty(self.n_nodes, dtype=np.int64)
        for start, block in self.iter_blocks():
            out[start : start + block.shape[0]] = (
                np.bitwise_count(block).sum(axis=1).astype(np.int64)
            )
        return out

    def nodes_knowing(self, message: int) -> np.ndarray:
        """Array of node identifiers that know ``message``."""
        self._check_message(message)
        word = message // WORD_BITS
        bit = self._bit(message)
        hits = [
            start + np.flatnonzero((block[:, word] & bit) != 0)
            for start, block in self.iter_blocks()
        ]
        return np.concatenate(hits)

    def num_nodes_knowing(self, message: int) -> int:
        """Number of nodes that know ``message``."""
        return int(self.nodes_knowing(message).size)

    def informed_counts_per_message(self) -> np.ndarray:
        """For every message, the number of nodes knowing it."""
        totals = np.zeros(self.n_messages, dtype=np.int64)
        for _start, block in self.iter_blocks():
            bits = np.unpackbits(
                np.ascontiguousarray(block).view(np.uint8), axis=1, bitorder="little"
            )[:, : self.n_messages]
            totals += bits.sum(axis=0, dtype=np.int64)
        return totals

    def fully_informed_nodes(self) -> np.ndarray:
        """Boolean mask of nodes that know every message."""
        return self.counts() == self.n_messages

    def is_complete(self) -> bool:
        """True when every node knows every message (gossiping finished)."""
        full_word = np.uint64(0xFFFFFFFFFFFFFFFF)
        # Check all full words first (cheap early exit).
        full_words = self.words - 1 if self.n_messages % WORD_BITS else self.words
        rem = self.n_messages % WORD_BITS
        tail_mask = (np.uint64(1) << np.uint64(rem)) - np.uint64(1) if rem else None
        for _start, block in self.iter_blocks():
            if full_words and not np.all(block[:, :full_words] == full_word):
                return False
            if rem and not np.all(block[:, -1] == tail_mask):
                return False
        return True

    def total_known(self) -> int:
        """Total number of (node, message) pairs currently known."""
        total = 0
        for _start, block in self.iter_blocks():
            total += int(np.bitwise_count(block).sum())
        return total

    def coverage(self) -> float:
        """Fraction of the ``n_nodes * n_messages`` pairs that are known."""
        return self.total_known() / float(self.n_nodes * self.n_messages)

    def count_missing(self, mask: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Per-row deficits: ``popcount(mask & ~row)`` for each row in ``rows``.

        ``mask`` is the completion target (usually :meth:`full_row_mask`).
        This is the recount primitive behind
        :class:`~repro.core.completion.CompletionTracker`; layouts override
        it with representation-aware implementations that are pinned
        bit-identical to this scan.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        return (
            np.bitwise_count(mask[None, :] & ~self.rows(rows))
            .sum(axis=1)
            .astype(np.int64)
        )

    # ------------------------------------------------------------------ #
    # Derived: row constructors
    # ------------------------------------------------------------------ #
    def zero_row(self) -> np.ndarray:
        """A fresh all-zero row compatible with this matrix."""
        return np.zeros(self.words, dtype=_WORD_DTYPE)

    def full_row_mask(self) -> np.ndarray:
        """Packed row with every valid message bit set (the completion target)."""
        mask = np.full(self.words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=_WORD_DTYPE)
        rem = self.n_messages % WORD_BITS
        if rem:
            mask[-1] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
        return mask

    def row_with(self, messages: Iterable[int]) -> np.ndarray:
        """A fresh row with exactly ``messages`` set."""
        row = self.zero_row()
        for m in messages:
            self._check_message(m)
            row[m // WORD_BITS] |= self._bit(m)
        return row

    # ------------------------------------------------------------------ #
    # Derived: the saturation filter (shared by every layout's exchange)
    # ------------------------------------------------------------------ #
    def _filter_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        complete: Optional[np.ndarray],
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Split an exchange round into push/pull edges plus direct promotions.

        Returns ``(push_s, push_r, pull_s, pull_r, promoted)``.  When
        ``complete`` is given (a boolean saturated-row mask), transmissions
        into saturated rows are dropped and receivers fed by a saturated
        sender are returned in ``promoted`` for direct assignment of the
        completion row — bit-exact provided every participating row is a
        subset of the completion row.
        """
        empty = np.zeros(0, dtype=np.int64)
        promoted = empty
        if complete is None:
            return callers, targets, targets, callers, promoted
        keep_push = ~complete[targets]
        keep_pull = ~complete[callers]
        sat_push = keep_push & complete[callers]
        sat_pull = keep_pull & complete[targets]
        if sat_push.any() or sat_pull.any():
            promoted = np.unique(
                np.concatenate([targets[sat_push], callers[sat_pull]])
            )
            is_promoted = np.zeros(self.n_nodes, dtype=bool)
            is_promoted[promoted] = True
            keep_push &= ~is_promoted[targets]
            keep_pull &= ~is_promoted[callers]
        self._note_filter(
            2 * callers.size,
            int(keep_push.sum()) + int(keep_pull.sum()),
            promoted.size,
        )
        return (
            callers[keep_push],
            targets[keep_push],
            targets[keep_pull],
            callers[keep_pull],
            promoted,
        )

    # ------------------------------------------------------------------ #
    # Derived: identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """SHA-256 over the dense row-major byte stream (layout-independent).

        Two states with equal bits have equal fingerprints regardless of
        layout or block partition, so this is the cheap cross-layout
        bit-identity check at sizes where holding two dense matrices for
        ``__eq__`` would be wasteful.
        """
        digest = hashlib.sha256()
        digest.update(f"{self.n_nodes}:{self.n_messages}:".encode())
        for _start, block in self.iter_blocks():
            digest.update(np.ascontiguousarray(block).data)
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeStorage):
            return NotImplemented
        if self.n_nodes != other.n_nodes or self.n_messages != other.n_messages:
            return False
        for start, block in self.iter_blocks():
            idx = np.arange(start, start + block.shape[0], dtype=np.int64)
            if not np.array_equal(block, other.rows(idx)):
                return False
        return True

    __hash__ = None  # mutable container

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n_nodes={self.n_nodes}, "
            f"n_messages={self.n_messages}, coverage={self.coverage():.3f})"
        )


class KnowledgeMatrix(KnowledgeStorage):
    """Which original messages each node currently knows, as packed bitsets.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    n_messages:
        Number of distinct original messages.  Defaults to ``n_nodes`` (the
        gossiping setting where node ``i`` starts with message ``i``).
    initialize_own:
        When true (the default) node ``i`` starts knowing message ``i``
        (requires ``n_messages >= n_nodes`` or simply ``i < n_messages``).

    Notes
    -----
    Bulk updates either mutate rows in place or — on the compiled full-round
    paths — write the end-of-round state into a spare buffer and *swap* it
    with ``data``, so do not hold references to ``data`` (or row views)
    across round updates.  All update helpers take a *snapshot* argument
    where the synchronous semantics of the random phone call model require
    reading start-of-step state while writing end-of-step state.
    """

    __slots__ = ("data", "_scratch", "_csr_off", "_csr_adj")

    layout = "dense"

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
    ) -> None:
        super().__init__(n_nodes, n_messages)
        self.data = np.zeros((self.n_nodes, self.words), dtype=_WORD_DTYPE)
        #: Reusable spare buffer for the swap-form round kernels and for
        #: start-of-step snapshots (lazily built).
        self._scratch: Optional[np.ndarray] = None
        #: Reusable CSR buffers (offsets / incoming senders) for the
        #: swap-form round kernels (lazily built, grown on demand).
        self._csr_off: Optional[np.ndarray] = None
        self._csr_adj: Optional[np.ndarray] = None
        if initialize_own:
            # Fault the matrix in sequentially before the scattered per-row
            # writes below: one diagonal bit per row touches every page, and
            # scattered first-touch faults cost ~2x the sequential ones (the
            # fill is a no-op on the already-zero pages otherwise).
            self.data.fill(0)
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto, dtype=np.int64)
            flat = self.data.reshape(-1)
            flat[idx * self.words + idx // WORD_BITS] |= np.left_shift(
                np.uint64(1), (idx % WORD_BITS).astype(_WORD_DTYPE)
            )

    # ------------------------------------------------------------------ #
    # Constructors and copies
    # ------------------------------------------------------------------ #
    def copy(self) -> "KnowledgeMatrix":
        """Deep copy of the knowledge state."""
        clone = KnowledgeMatrix.empty(self.n_nodes, self.n_messages)
        clone.data[:] = self.data
        return clone

    def snapshot(self) -> np.ndarray:
        """A copy of the raw word matrix (used for synchronous-step reads)."""
        return self.data.copy()

    # ------------------------------------------------------------------ #
    # Storage primitives
    # ------------------------------------------------------------------ #
    def rows(self, nodes: np.ndarray) -> np.ndarray:
        return self.data[np.asarray(nodes, dtype=np.int64)]

    def row(self, node: int) -> np.ndarray:
        """Live view of ``node``'s bitset row.

        Valid only until the next bulk update: the swap-form round kernels
        exchange the underlying buffer, so do not hold this view across
        :meth:`apply_transmissions` / :meth:`apply_exchange` calls.
        """
        return self.data[node]

    def iter_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        yield 0, self.data

    def scatter_rows(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        self._scatter_or(
            source,
            np.asarray(src_idx, dtype=np.int64),
            np.asarray(receivers, dtype=np.int64),
        )

    def assign_rows(self, nodes: np.ndarray, row: np.ndarray) -> None:
        self.data[np.asarray(nodes, dtype=np.int64)] = row

    def storage_nbytes(self) -> int:
        total = self.data.nbytes
        for buf in (self._scratch, self._csr_off, self._csr_adj):
            if buf is not None:
                total += buf.nbytes
        return total

    # ------------------------------------------------------------------ #
    # Element mutators
    # ------------------------------------------------------------------ #
    def add(self, node: int, message: int) -> None:
        """Mark ``node`` as knowing ``message``."""
        self._check_message(message)
        self.data[node, message // WORD_BITS] |= self._bit(message)

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        """Mark every entry of ``nodes`` as knowing ``message``."""
        self._check_message(message)
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size:
            self.data[nodes, message // WORD_BITS] |= self._bit(message)

    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        """OR an external bitset row into ``dst``'s knowledge."""
        self.data[dst] |= src_row

    def union_from_node(
        self, dst: int, src: int, snapshot: Optional[np.ndarray] = None
    ) -> None:
        """Make ``dst`` learn everything ``src`` knows.

        If ``snapshot`` is given, ``src``'s knowledge is read from it (the
        synchronous-model convention); otherwise the live matrix is read.
        """
        source = self.data if snapshot is None else snapshot
        self.data[dst] |= source[src]

    # ------------------------------------------------------------------ #
    # Bulk updates (the hot path)
    # ------------------------------------------------------------------ #
    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply a batch of directed transmissions ``senders[i] -> receivers[i]``.

        All transmissions are evaluated against the same start-of-step state,
        so a message cannot hop through several nodes within a single
        synchronous step.  When ``snapshot`` is omitted the sender rows are
        gathered (copied) from the live matrix *before* any write, which gives
        the same snapshot semantics without copying the whole matrix — the
        cost scales with the number of transmissions, not with ``n_nodes``.

        Receivers may repeat (several incoming channels per node); the batch
        is sorted by receiver and each receiver segment is merged with a
        single ``bitwise_or.reduceat`` reduction, so every receiver row is
        written exactly once.

        Returns
        -------
        numpy.ndarray
            Receiver identifiers whose rows were touched (possibly without
            change).  The array may be unsorted and contain duplicates —
            which code path produced it is platform-dependent — so treat it
            as an unordered multiset; ``CompletionTracker.update``
            deduplicates internally.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        if snapshot is None:
            backend = backends.active()
            if (
                backend.use_compiled()
                and senders.size * 4 >= self.n_nodes
                and self.n_nodes * self.words >= _SWAP_MIN_WORK
            ):
                # Swap-form compiled round: the next state is written into
                # the spare buffer (each row exactly once) and the buffers
                # swap — no whole-matrix snapshot copy.  Small matrices stay
                # on the snapshot + scatter path below: their rows fit in
                # cache, so the CSR build's integer work would dominate
                # (measured: the swap form loses ~18% at n=1000 x 16 words
                # and wins ~25% from n=5000 x 79 words up).
                self._ensure_scratch()
                off, adj = self._csr_buffers(senders.size)
                backend.push_round(
                    self.data,
                    self._scratch,
                    np.ascontiguousarray(senders),
                    np.ascontiguousarray(receivers),
                    off,
                    adj,
                )
                self.data, self._scratch = self._scratch, self.data
                return receivers
            source, senders = self._snapshot_sources(senders)
        else:
            source = snapshot
        return self._scatter_or(source, senders, receivers)

    def _ensure_scratch(self) -> np.ndarray:
        if self._scratch is None:
            self._scratch = np.empty_like(self.data)
        return self._scratch

    def _csr_buffers(self, edges: int) -> "tuple[np.ndarray, np.ndarray]":
        """CSR scratch for the swap-form round kernels (grown on demand)."""
        if self._csr_off is None:
            self._csr_off = np.empty(self.n_nodes + 1, dtype=np.int64)
        if self._csr_adj is None or self._csr_adj.size < edges:
            self._csr_adj = np.empty(edges, dtype=np.int64)
        return self._csr_off, self._csr_adj

    def _snapshot_sources(
        self, senders: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Start-of-step source rows for ``senders``, copied before any write.

        Dense batches (most nodes sending) reuse a full double buffer filled
        with one sequential ``copyto`` — far faster than a random row gather.
        Sparse batches gather only the unique sender rows, so the snapshot
        cost scales with the actual senders, not with ``n_nodes``.

        Returns ``(source, indices)`` such that ``source[indices[i]]`` is
        sender ``i``'s start-of-step row.
        """
        if senders.size * 4 >= self.n_nodes:
            np.copyto(self._ensure_scratch(), self.data)
            return self._scratch, senders
        unique_senders, sender_pos = np.unique(senders, return_inverse=True)
        return self.data[unique_senders], sender_pos

    def _scatter_or(
        self, source: np.ndarray, senders: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        """OR ``source[senders[i]]`` into row ``receivers[i]`` for all ``i``.

        Receivers may repeat; duplicates are resolved either by an
        order-independent compiled pass or by the shared layered NumPy
        scatter (:func:`_layered_scatter`).

        Returns the receivers whose rows were written (possibly with
        duplicates on the compiled path; sorted unique on the NumPy path).
        """
        backend = backends.active()
        if backend.use_compiled():
            # The compiled scatter applies transmissions row-sequentially
            # (serial) or receiver-sharded (threaded); because ``source`` is
            # snapshot storage disjoint from ``data``, the result is
            # order-independent even with duplicate receivers, so no sorting
            # or layering is needed at all.
            backend.scatter_or(
                self.data,
                np.ascontiguousarray(source),
                np.ascontiguousarray(senders),
                np.ascontiguousarray(receivers),
            )
            return receivers
        return _layered_scatter(self.data, source, senders, receivers)

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
        deficit_mask: Optional[np.ndarray] = None,
        deficits_out: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Apply one synchronous push–pull round: ``callers[i] <-> targets[i]``.

        Both directions (push ``caller -> target`` and pull ``target ->
        caller``) read the same start-of-step state.  ``callers`` must be
        sorted and unique (the channel model: one outgoing channel per node);
        targets may repeat.  The pull direction therefore has unique
        receivers and is applied as a single aligned gather-OR — when every
        node is a caller it degenerates to ``data |= source[targets]`` with
        no index arrays at all — while the push direction goes through the
        layered scatter.

        When ``complete``/``complete_row`` are given (a boolean
        saturated-row mask and the saturation target row, usually from
        :class:`~repro.core.completion.CompletionTracker`), the exchange
        additionally short-circuits saturation: transmissions into saturated
        rows are dropped (no-ops) and receivers fed by a saturated sender are
        directly assigned ``complete_row``.  This is bit-exact provided every
        participating row is a subset of ``complete_row`` — true whenever
        channels only ever connect alive nodes, because crashed nodes never
        transmit and their messages never spread.  On compiled backends a
        round where at least half the rows are still in play runs as one
        saturation-filtered swap-form kernel pass; sparser late rounds take
        the gather/scatter path below, whose cost scales with the surviving
        edges.

        ``deficit_mask``/``deficits_out`` fuse the completion recount into
        the compiled swap-form passes (see :class:`KnowledgeStorage`); the
        gather/scatter paths leave :attr:`fused_deficits` false.

        Returns
        -------
        (touched, promoted):
            ``touched`` — receivers whose rows were OR-updated (may contain
            duplicates: a node can receive in both directions);
            ``promoted`` — sorted unique receivers directly saturated.  The
            two sets are disjoint.
        """
        callers = np.asarray(callers, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if callers.shape != targets.shape:
            raise ValueError("callers and targets must have identical shapes")
        empty = np.zeros(0, dtype=np.int64)
        self.fused_deficits = False
        if callers.size == 0:
            return empty, empty
        if complete is not None and not complete.any():
            complete = None
        backend = backends.active()
        if complete is None and backend.use_compiled():
            # Unfiltered round, swap form: both directions are resolved in
            # one compiled pass that writes each row's end-of-round state
            # exactly once into the spare buffer, then the buffers swap.
            self._ensure_scratch()
            off, adj = self._csr_buffers(2 * callers.size)
            backend.exchange(
                self.data,
                self._scratch,
                np.ascontiguousarray(callers),
                np.ascontiguousarray(targets),
                off,
                adj,
                deficit_mask,
                deficits_out,
            )
            self.data, self._scratch = self._scratch, self.data
            self.fused_deficits = deficits_out is not None
            return np.concatenate([callers, targets]), empty
        if (
            complete is not None
            and backend.use_compiled()
            and self.n_nodes * self.words >= _SWAP_MIN_WORK
        ):
            live_rows = int((~complete[callers]).sum()) + int(
                (~complete[targets]).sum()
            )
            if live_rows * 2 >= self.n_nodes:
                # Filtered swap form: most rows are still in play, so the
                # full-matrix swap pass beats gathering the surviving edges.
                # The kernel drops edges into complete receivers, memcpys
                # promoted rows from ``complete_row``, and fuses deficits.
                self._ensure_scratch()
                off, adj = self._csr_buffers(2 * callers.size)
                promoted_u8 = np.zeros(self.n_nodes, dtype=np.uint8)
                backend.exchange_filtered(
                    self.data,
                    self._scratch,
                    np.ascontiguousarray(callers),
                    np.ascontiguousarray(targets),
                    off,
                    adj,
                    np.ascontiguousarray(complete).view(np.uint8),
                    promoted_u8,
                    np.ascontiguousarray(complete_row),
                    deficit_mask,
                    deficits_out,
                )
                self.data, self._scratch = self._scratch, self.data
                self.fused_deficits = deficits_out is not None
                promoted = np.flatnonzero(promoted_u8)
                touched = np.concatenate([callers, targets])
                if promoted.size:
                    # Keep the documented disjointness of touched/promoted
                    # (CompletionTracker counts each promotion exactly once).
                    touched = touched[promoted_u8[touched] == 0]
                kept = 2 * int((~complete[callers] & ~complete[targets]).sum())
                self._note_filter(2 * callers.size, kept, promoted.size)
                return touched, promoted
        push_s, push_r, pull_s, pull_r, promoted = self._filter_exchange(
            callers, targets, complete
        )
        touched = empty
        if push_r.size or pull_r.size:
            n_push = push_s.size
            source, remapped = self._snapshot_sources(
                np.concatenate([push_s, pull_s])
            )
            push_s = remapped[:n_push]
            pull_s = remapped[n_push:]
            if backend.use_compiled():
                # One order-independent compiled pass over both directions.
                touched = self._scatter_or(
                    source,
                    remapped,
                    np.concatenate([push_r, pull_r]),
                )
            else:
                if pull_r.size == self.n_nodes:
                    # Sorted unique, full-length: pull_r is exactly arange(n).
                    self.data |= source[pull_s]
                elif pull_r.size:
                    self.data[pull_r] |= source[pull_s]
                if push_r.size:
                    touched_push = self._scatter_or(source, push_s, push_r)
                    touched = np.concatenate([pull_r, touched_push])
                else:
                    touched = pull_r
        if promoted.size:
            self.assign_rows(promoted, complete_row)
        return touched, promoted

    # ------------------------------------------------------------------ #
    # Queries with a dense fast path
    # ------------------------------------------------------------------ #
    def count_missing(self, mask: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64)
        backend = backends.active()
        if backend.use_compiled():
            return backend.recount_deficits(
                self.data, mask, np.ascontiguousarray(rows)
            )
        return (
            np.bitwise_count(mask[None, :] & ~self.data[rows])
            .sum(axis=1)
            .astype(np.int64)
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, KnowledgeMatrix):
            return (
                self.n_nodes == other.n_nodes
                and self.n_messages == other.n_messages
                and bool(np.array_equal(self.data, other.data))
            )
        return super().__eq__(other)

    __hash__ = None  # mutable container


#: Default fraction of ``transmissions * words`` below which the frontier
#: (word-sparse) path is used; also sizes the per-row active-word capacity.
#: 0.125 won the crossover sweep at n=20000 (see docs/benchmarks.md): the
#: compiled pair pass costs ~4-6x more per word than the streaming dense
#: kernels, so the sparse path should stop well before nominal break-even.
_DEFAULT_CROSSOVER = 0.125


class FrontierKnowledge(KnowledgeMatrix):
    """A :class:`KnowledgeMatrix` with a sparsity-aware (frontier) fast path.

    In early gossip rounds almost every row holds a handful of message bits,
    yet the dense kernels move full ``words``-wide rows (or snapshot the
    whole matrix) per round.  This subclass tracks, for every row, the set
    of *active* (nonzero) 64-bit words as an index frontier and applies a
    sparse batch by scattering only ``(receiver, word)`` pairs drawn from
    the senders' frontiers — the cost of a round scales with the number of
    set words actually in flight, not with ``n_nodes * words``.

    The representation is adaptive with a one-way ratchet:

    * per batch, the estimated frontier cost (``sum`` of sender active-word
      counts, dense rows counted at full width) is compared against
      ``crossover * transmissions * words``; at or past the threshold the
      batch takes the existing dense scatter-OR / double-buffer path;
    * per row, once more than ``word_cap`` words become active — or the row
      is written through a dense batch, a direct ``data`` mutation, or a
      saturation promotion — the row is flagged dense and is never
      enumerated again (knowledge only grows, so density never decreases).

    Both paths implement the identical snapshot-read / live-write round
    semantics (all gathers strictly precede all writes), so trajectories are
    bit-identical to a plain :class:`KnowledgeMatrix` at equal seeds; see
    ``tests/engine/test_frontier_knowledge.py``.

    Parameters
    ----------
    crossover:
        Fraction of the dense per-batch cost below which the sparse path is
        chosen (default 0.125, or ``REPRO_FRONTIER_CROSSOVER``).  Also sizes
        ``word_cap``, the per-row active-word capacity.
    """

    __slots__ = (
        "crossover",
        "word_cap",
        "_nnz",
        "_active_words",
        "_word_active",
        "_dense_rows",
        "_val_buf",
        "_lin_buf",
        "_retired",
    )

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
        crossover: Optional[float] = None,
    ) -> None:
        super().__init__(n_nodes, n_messages, initialize_own=initialize_own)
        if crossover is None:
            crossover = float(
                os.environ.get("REPRO_FRONTIER_CROSSOVER", _DEFAULT_CROSSOVER)
            )
        if not 0.0 < crossover <= 1.0:
            raise ValueError(f"crossover must be in (0, 1], got {crossover}")
        self.crossover = float(crossover)
        #: Active words a row may list before it ratchets onto the dense path.
        self.word_cap = min(self.words, max(4, int(round(self.words * self.crossover))))
        #: Rows permanently on the dense path (no frontier bookkeeping).
        self._dense_rows = np.zeros(self.n_nodes, dtype=bool)
        #: Number of active words listed per row.
        self._nnz = np.zeros(self.n_nodes, dtype=np.int64)
        #: Active word indices per row (first ``_nnz[i]`` entries valid,
        #: discovery order — order is irrelevant for an OR).
        self._active_words = np.zeros((self.n_nodes, self.word_cap), dtype=np.int32)
        #: Membership mask: ``_word_active[i, w]`` iff ``w`` is listed for
        #: row ``i`` (meaningless once a row is flagged dense).
        self._word_active = np.zeros((self.n_nodes, self.words), dtype=bool)
        #: Reusable pair buffers for the compiled frontier pass (grown on
        #: demand; avoids a multi-megabyte allocation per round).
        self._val_buf: Optional[np.ndarray] = None
        self._lin_buf: Optional[np.ndarray] = None
        #: Set once every row is dense-flagged; the wrappers then delegate
        #: to the parent kernels with zero bookkeeping overhead.
        self._retired = False
        if initialize_own:
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto)
            own_word = idx // WORD_BITS
            self._active_words[idx, 0] = own_word
            self._nnz[:upto] = 1
            self._word_active[idx, own_word] = True

    # ------------------------------------------------------------------ #
    # Batch entry points
    # ------------------------------------------------------------------ #
    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        if self._retired:
            return super().apply_transmissions(senders, receivers, snapshot)
        if snapshot is None:
            dense_sel, estimate = self._estimate(senders)
            if estimate < self.crossover * senders.size * self.words:
                return self._sparse_apply(senders, receivers, dense_sel)
        touched = super().apply_transmissions(senders, receivers, snapshot)
        self._mark_dense(receivers)
        return touched

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
        deficit_mask: Optional[np.ndarray] = None,
        deficits_out: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        callers = np.asarray(callers, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if callers.shape != targets.shape:
            raise ValueError("callers and targets must have identical shapes")
        empty = np.zeros(0, dtype=np.int64)
        self.fused_deficits = False
        if callers.size == 0:
            return empty, empty
        if self._retired:
            return super().apply_exchange(
                callers,
                targets,
                complete=complete,
                complete_row=complete_row,
                deficit_mask=deficit_mask,
                deficits_out=deficits_out,
            )
        if complete is None or not complete.any():
            # Both directions of an exchange read the same start-of-step
            # state, so the round is exactly one combined transmission batch.
            senders = np.concatenate([callers, targets])
            receivers = np.concatenate([targets, callers])
            dense_sel, estimate = self._estimate(senders)
            if estimate < self.crossover * senders.size * self.words:
                return self._sparse_apply(senders, receivers, dense_sel), empty
        # Dense (or saturation-filtered) rounds go through the parent kernel;
        # by the time rows saturate the matrix is dense anyway, so everything
        # the parent may have written simply ratchets to the dense path.
        touched, promoted = super().apply_exchange(
            callers,
            targets,
            complete=complete,
            complete_row=complete_row,
            deficit_mask=deficit_mask,
            deficits_out=deficits_out,
        )
        self._dense_rows[callers] = True
        self._mark_dense(targets)
        return touched, promoted

    # ------------------------------------------------------------------ #
    # The frontier path
    # ------------------------------------------------------------------ #
    def _mark_dense(self, rows: np.ndarray) -> None:
        """Ratchet ``rows`` to the dense path; retire once all rows are."""
        self._dense_rows[rows] = True
        if self._dense_rows.all():
            self._retired = True

    def _estimate(self, senders: np.ndarray) -> "tuple[np.ndarray, int]":
        """Dense-row selector and estimated word-pair cost of a batch."""
        dense_sel = self._dense_rows[senders]
        nnz = self._nnz[senders]
        if dense_sel.any():
            nnz = np.where(dense_sel, self.words, nnz)
        return dense_sel, int(nnz.sum())

    def _sparse_apply(
        self, senders: np.ndarray, receivers: np.ndarray, dense_sel: np.ndarray
    ) -> np.ndarray:
        """Apply one batch word-sparsely (snapshot semantics preserved).

        Transmissions from frontier rows contribute only their active
        ``(word, value)`` pairs; transmissions from dense-flagged rows go
        through the row-level scatter.  Every gather — sparse word values
        and dense source rows alike — happens strictly before any write, so
        the result is bit-identical to the dense one-batch kernel.
        """
        words = self.words
        if dense_sel.any():
            sparse_s = senders[~dense_sel]
            sparse_r = receivers[~dense_sel]
            dense_s = senders[dense_sel]
            dense_r = receivers[dense_sel]
        else:
            sparse_s, sparse_r = senders, receivers
            dense_s = dense_r = None
        # ---- dense sub-batch gather (before any write) ---------------- #
        if dense_s is not None:
            source, dense_idx = self._snapshot_sources(dense_s)
        total = int(self._nnz[sparse_s].sum()) if sparse_s.size else 0
        backend = backends.active()
        if total and backend.use_compiled():
            # One fused compiled pass: pair gather (still pre-write), scatter
            # and frontier bookkeeping.  Runs before the dense scatter so its
            # value gather also precedes every write of the batch.
            if self._val_buf is None or self._val_buf.size < total:
                # Double-up slack: pair counts roughly double per early round.
                self._val_buf = np.empty(2 * total, dtype=np.uint64)
                self._lin_buf = np.empty(2 * total, dtype=np.int64)
            backend.frontier_scatter(
                self.data,
                self._active_words,
                self._nnz,
                self._word_active,
                self._dense_rows,
                np.ascontiguousarray(sparse_s),
                np.ascontiguousarray(sparse_r),
                self._val_buf,
                self._lin_buf,
                total,
            )
        elif total:
            nnz = self._nnz[sparse_s]
            tx = np.repeat(np.arange(sparse_s.size, dtype=np.int64), nnz)
            ends = np.cumsum(nnz)
            rank = np.arange(total, dtype=np.int64) - np.repeat(ends - nnz, nnz)
            tx_senders = sparse_s[tx]
            wcols = self._active_words[tx_senders, rank].astype(np.int64)
            vals = self.data[tx_senders, wcols]
            pair_rows = sparse_r[tx]
            lin = pair_rows * words + wcols
            order = np.argsort(lin, kind="stable")
            lin_sorted = lin[order]
            vals_sorted = vals[order]
            bounds = np.flatnonzero(np.r_[True, lin_sorted[1:] != lin_sorted[:-1]])
            merged = np.bitwise_or.reduceat(vals_sorted, bounds)
            self.data.reshape(-1)[lin_sorted[bounds]] |= merged
            self._note_pairs(pair_rows, wcols, lin)
        # ---- dense sub-batch scatter ---------------------------------- #
        if dense_s is not None:
            self._scatter_or(source, dense_idx, dense_r)
            # A dense sender's words are a superset of the cap, so the
            # receiving row crosses it too.
            self._dense_rows[dense_r] = True
        return receivers

    def _note_pairs(
        self, rows: np.ndarray, wcols: np.ndarray, lin: np.ndarray
    ) -> None:
        """Record that words ``wcols`` were OR-written into ``rows``.

        Newly activated words are appended to each receiver's frontier;
        receivers whose count would exceed ``word_cap`` ratchet to dense.
        """
        fresh = ~self._word_active[rows, wcols] & ~self._dense_rows[rows]
        if not fresh.any():
            return
        unique_lin = np.unique(lin[fresh])
        r = unique_lin // self.words
        w = (unique_lin % self.words).astype(np.int32)
        self._word_active[r, w] = True
        # ``unique_lin`` is sorted, so rows arrive grouped.
        starts = np.flatnonzero(np.r_[True, r[1:] != r[:-1]])
        counts = np.diff(np.r_[starts, r.size])
        unique_rows = r[starts]
        new_nnz = self._nnz[unique_rows] + counts
        overflow = new_nnz > self.word_cap
        within = np.arange(r.size) - np.repeat(starts, counts)
        positions = self._nnz[r] + within
        keep = ~np.repeat(overflow, counts)
        if keep.any():
            self._active_words[r[keep], positions[keep]] = w[keep]
            self._nnz[unique_rows[~overflow]] = new_nnz[~overflow]
        if overflow.any():
            self._dense_rows[unique_rows[overflow]] = True

    def _note_single_word(self, rows: np.ndarray, word: int) -> None:
        """Record that the single word ``word`` gained bits in ``rows``."""
        rows = rows[~self._dense_rows[rows] & ~self._word_active[rows, word]]
        if rows.size == 0:
            return
        rows = np.unique(rows)
        self._word_active[rows, word] = True
        positions = self._nnz[rows]
        overflow = positions >= self.word_cap
        ok = rows[~overflow]
        self._active_words[ok, positions[~overflow]] = word
        self._nnz[ok] = positions[~overflow] + 1
        if overflow.any():
            self._dense_rows[rows[overflow]] = True

    # ------------------------------------------------------------------ #
    # Bookkeeping for the non-batch mutators
    # ------------------------------------------------------------------ #
    def add(self, node: int, message: int) -> None:
        super().add(node, message)
        self._note_single_word(
            np.asarray([node], dtype=np.int64), message // WORD_BITS
        )

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        super().add_many(nodes, message)
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size:
            self._note_single_word(nodes, message // WORD_BITS)

    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        super().union_into(dst, src_row)
        self._dense_rows[dst] = True

    def union_from_node(
        self, dst: int, src: int, snapshot: Optional[np.ndarray] = None
    ) -> None:
        super().union_from_node(dst, src, snapshot)
        self._dense_rows[dst] = True

    def scatter_rows(
        self, source: np.ndarray, src_idx: np.ndarray, receivers: np.ndarray
    ) -> None:
        super().scatter_rows(source, src_idx, receivers)
        # External rows carry unknown word sets; the receivers leave the
        # frontier rather than re-deriving their active words.
        self._mark_dense(np.asarray(receivers, dtype=np.int64))

    def assign_rows(self, nodes: np.ndarray, row: np.ndarray) -> None:
        super().assign_rows(nodes, row)
        self._mark_dense(np.asarray(nodes, dtype=np.int64))

    def notify_rows_written(self, rows: np.ndarray) -> None:
        """Direct ``data`` mutations ratchet the written rows to dense."""
        self._dense_rows[rows] = True

    # ------------------------------------------------------------------ #
    # Frontier-aware recounts
    # ------------------------------------------------------------------ #
    def count_missing(self, mask: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Deficits from the active frontier words instead of full-row scans.

        For a frontier row every word outside its active set is zero, so
        ``popcount(mask & ~row) == popcount(mask) - sum_w popcount(mask[w] &
        row[w])`` over the row's active words only — exact, not an estimate.
        Dense-flagged rows fall back to the parent's scan (compiled when
        available).  Pinned bit-identical to the scan path by
        ``tests/engine/test_layouts.py``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0 or self._retired:
            return super().count_missing(mask, rows)
        dense_sel = self._dense_rows[rows]
        out = np.empty(rows.size, dtype=np.int64)
        if dense_sel.any():
            out[dense_sel] = super().count_missing(mask, rows[dense_sel])
        frontier_rows = rows[~dense_sel]
        if frontier_rows.size:
            total = int(np.bitwise_count(mask).sum())
            nnz = self._nnz[frontier_rows]
            pairs = int(nnz.sum())
            known = np.zeros(frontier_rows.size, dtype=np.int64)
            if pairs:
                tx = np.repeat(np.arange(frontier_rows.size, dtype=np.int64), nnz)
                ends = np.cumsum(nnz)
                rank = np.arange(pairs, dtype=np.int64) - np.repeat(ends - nnz, nnz)
                r = frontier_rows[tx]
                w = self._active_words[r, rank].astype(np.int64)
                got = np.bitwise_count(self.data[r, w] & mask[w]).astype(np.int64)
                np.add.at(known, tx, got)
            out[~dense_sel] = total - known
        return out

    # ------------------------------------------------------------------ #
    # Introspection (used by tests and the benchmark harness)
    # ------------------------------------------------------------------ #
    def frontier_fraction(self) -> float:
        """Fraction of rows still on the frontier (sparse) path."""
        return 1.0 - float(self._dense_rows.mean())

    def storage_nbytes(self) -> int:
        total = super().storage_nbytes()
        for buf in (
            self._nnz,
            self._active_words,
            self._word_active,
            self._dense_rows,
            self._val_buf,
            self._lin_buf,
        ):
            if buf is not None:
                total += buf.nbytes
        return total


#: Minimum row width (in 64-bit words) for the frontier representation to
#: pay for its bookkeeping; narrower matrices always use the dense kernels.
#: Re-measured after the SIMD kernels landed (they shifted the break-even
#: upward — vectorized dense passes got cheaper while the frontier's
#: per-row bookkeeping did not; sweep in docs/benchmarks.md): whole-protocol
#: push-pull is a wash at 64-79 words and only wins from ~96 words up.
_FRONTIER_MIN_WORDS = 96


def dense_knowledge(
    n_nodes: int, n_messages: Optional[int] = None
) -> KnowledgeMatrix:
    """The dense-family knowledge state for a problem size.

    Returns a :class:`FrontierKnowledge` (sparse/dense adaptive) for wide
    matrices (``>= 96`` words, i.e. ``n_messages >= 6081``); narrow rows are
    cheap to move whole — especially through the SIMD word-OR kernels — so
    smaller problems stay on the plain dense :class:`KnowledgeMatrix`.  Setting ``REPRO_DISABLE_FRONTIER`` in the
    environment forces the plain matrix at every size.  Both produce
    bit-identical trajectories; the switch exists for A/B benchmarking and
    equivalence testing.
    """
    if os.environ.get("REPRO_DISABLE_FRONTIER"):
        return KnowledgeMatrix(n_nodes, n_messages)
    words = _n_words(n_nodes if n_messages is None else n_messages)
    if words < _FRONTIER_MIN_WORDS:
        return KnowledgeMatrix(n_nodes, n_messages)
    return FrontierKnowledge(n_nodes, n_messages)


def adaptive_knowledge(
    n_nodes: int, n_messages: Optional[int] = None
) -> KnowledgeStorage:
    """The knowledge state protocols should instantiate.

    Delegates to the layout registry (:mod:`repro.engine.layouts`): the
    documented memory model picks dense storage while it fits the budget and
    the block-paged layout beyond, and ``REPRO_KNOWLEDGE_LAYOUT`` or a
    per-scope :func:`repro.engine.layouts.use` override forces a specific
    layout.  All layouts produce bit-identical trajectories.
    """
    from . import layouts

    return layouts.make_knowledge(n_nodes, n_messages)


class SingleMessageState:
    """Informed/uninformed state for single-message broadcasting baselines.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    source:
        The initially informed node (defaults to node 0).
    """

    __slots__ = ("n_nodes", "informed", "informed_at")

    def __init__(self, n_nodes: int, source: int = 0) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if not 0 <= source < n_nodes:
            raise ValueError(f"source {source} out of range [0, {n_nodes})")
        self.n_nodes = int(n_nodes)
        self.informed = np.zeros(n_nodes, dtype=bool)
        self.informed[source] = True
        #: round index at which each node was first informed (-1 = never).
        self.informed_at = np.full(n_nodes, -1, dtype=np.int64)
        self.informed_at[source] = 0

    def num_informed(self) -> int:
        """Number of currently informed nodes."""
        return int(self.informed.sum())

    def is_complete(self) -> bool:
        """True when all nodes are informed."""
        return bool(self.informed.all())

    def inform(self, nodes: np.ndarray, round_index: int) -> int:
        """Mark ``nodes`` as informed during ``round_index``.

        Returns the number of *newly* informed nodes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        fresh = nodes[~self.informed[nodes]]
        fresh = np.unique(fresh)
        self.informed[fresh] = True
        self.informed_at[fresh] = round_index
        return int(fresh.size)

    def uninformed_nodes(self) -> np.ndarray:
        """Array of nodes that are still uninformed."""
        return np.flatnonzero(~self.informed)

    def informed_nodes(self) -> np.ndarray:
        """Array of nodes that are informed."""
        return np.flatnonzero(self.informed)
