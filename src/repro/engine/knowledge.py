"""Packed-bitset bookkeeping of which node knows which original message.

Gossiping is an all-to-all dissemination problem: each of the ``n`` nodes
starts with one original message and every node must eventually know all ``n``
messages.  The simulator therefore has to track, for every node, the *set* of
original messages it currently knows.  A dense boolean ``n x n`` matrix would
need ``n**2`` bytes; instead we pack message sets into rows of 64-bit words,
which both reduces memory by a factor of eight and turns message-set unions
(the only mutation the random phone call model needs) into a handful of
vectorised ``|=`` operations.

Two classes are provided:

``KnowledgeMatrix``
    The full gossiping state: one bitset row per node over ``n_messages``
    message slots.

``SingleMessageState``
    A light-weight informed/uninformed boolean vector used by the
    single-message *broadcasting* baselines in :mod:`repro.broadcast`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from . import _ckernel

__all__ = ["KnowledgeMatrix", "SingleMessageState", "WORD_BITS"]

#: Number of bits per storage word.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def _n_words(n_bits: int) -> int:
    """Number of 64-bit words needed to store ``n_bits`` bits."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


class KnowledgeMatrix:
    """Which original messages each node currently knows, as packed bitsets.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    n_messages:
        Number of distinct original messages.  Defaults to ``n_nodes`` (the
        gossiping setting where node ``i`` starts with message ``i``).
    initialize_own:
        When true (the default) node ``i`` starts knowing message ``i``
        (requires ``n_messages >= n_nodes`` or simply ``i < n_messages``).

    Notes
    -----
    Rows are mutated in place.  All update helpers take a *snapshot* argument
    where the synchronous semantics of the random phone call model require
    reading start-of-step state while writing end-of-step state.
    """

    __slots__ = ("n_nodes", "n_messages", "words", "data", "_scratch")

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_messages is None:
            n_messages = n_nodes
        if n_messages <= 0:
            raise ValueError(f"n_messages must be positive, got {n_messages}")
        self.n_nodes = int(n_nodes)
        self.n_messages = int(n_messages)
        self.words = _n_words(self.n_messages)
        self.data = np.zeros((self.n_nodes, self.words), dtype=_WORD_DTYPE)
        #: Reusable double buffer for start-of-step snapshots (lazily built).
        self._scratch: Optional[np.ndarray] = None
        if initialize_own:
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto)
            self.data[idx, idx // WORD_BITS] |= np.left_shift(
                np.uint64(1), (idx % WORD_BITS).astype(_WORD_DTYPE)
            )

    # ------------------------------------------------------------------ #
    # Constructors and copies
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_nodes: int, n_messages: Optional[int] = None) -> "KnowledgeMatrix":
        """A matrix in which no node knows any message."""
        return cls(n_nodes, n_messages, initialize_own=False)

    def copy(self) -> "KnowledgeMatrix":
        """Deep copy of the knowledge state."""
        clone = KnowledgeMatrix.empty(self.n_nodes, self.n_messages)
        clone.data[:] = self.data
        return clone

    def snapshot(self) -> np.ndarray:
        """A copy of the raw word matrix (used for synchronous-step reads)."""
        return self.data.copy()

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def _bit(self, message: int) -> np.uint64:
        return np.uint64(1) << np.uint64(message % WORD_BITS)

    def add(self, node: int, message: int) -> None:
        """Mark ``node`` as knowing ``message``."""
        self._check_message(message)
        self.data[node, message // WORD_BITS] |= self._bit(message)

    def add_many(self, nodes: np.ndarray, message: int) -> None:
        """Mark every entry of ``nodes`` as knowing ``message``."""
        self._check_message(message)
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size:
            self.data[nodes, message // WORD_BITS] |= self._bit(message)

    def knows(self, node: int, message: int) -> bool:
        """Whether ``node`` currently knows ``message``."""
        self._check_message(message)
        word = self.data[node, message // WORD_BITS]
        return bool(word & self._bit(message))

    def known_messages(self, node: int) -> np.ndarray:
        """Sorted array of message identifiers known by ``node``."""
        bits = np.unpackbits(self.data[node].view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.n_messages])

    def _check_message(self, message: int) -> None:
        if not 0 <= message < self.n_messages:
            raise IndexError(
                f"message {message} out of range [0, {self.n_messages})"
            )

    # ------------------------------------------------------------------ #
    # Bulk updates (the hot path)
    # ------------------------------------------------------------------ #
    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        """OR an external bitset row into ``dst``'s knowledge."""
        self.data[dst] |= src_row

    def union_from_node(self, dst: int, src: int, snapshot: Optional[np.ndarray] = None) -> None:
        """Make ``dst`` learn everything ``src`` knows.

        If ``snapshot`` is given, ``src``'s knowledge is read from it (the
        synchronous-model convention); otherwise the live matrix is read.
        """
        source = self.data if snapshot is None else snapshot
        self.data[dst] |= source[src]

    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply a batch of directed transmissions ``senders[i] -> receivers[i]``.

        All transmissions are evaluated against the same start-of-step state,
        so a message cannot hop through several nodes within a single
        synchronous step.  When ``snapshot`` is omitted the sender rows are
        gathered (copied) from the live matrix *before* any write, which gives
        the same snapshot semantics without copying the whole matrix — the
        cost scales with the number of transmissions, not with ``n_nodes``.

        Receivers may repeat (several incoming channels per node); the batch
        is sorted by receiver and each receiver segment is merged with a
        single ``bitwise_or.reduceat`` reduction, so every receiver row is
        written exactly once.

        Returns
        -------
        numpy.ndarray
            Receiver identifiers whose rows were touched (possibly without
            change).  The array may be unsorted and contain duplicates —
            which code path produced it is platform-dependent — so treat it
            as an unordered multiset; ``CompletionTracker.update``
            deduplicates internally.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return np.zeros(0, dtype=np.int64)
        if snapshot is None:
            if _ckernel.available() and senders.size * 4 >= self.n_nodes:
                # Fused snapshot + scatter in one compiled pass.
                self._ensure_scratch()
                _ckernel.push_round(
                    self.data,
                    self._scratch,
                    np.ascontiguousarray(senders),
                    np.ascontiguousarray(receivers),
                )
                return receivers
            source, senders = self._snapshot_sources(senders)
        else:
            source = snapshot
        return self._scatter_or(source, senders, receivers)

    def _ensure_scratch(self) -> np.ndarray:
        if self._scratch is None:
            self._scratch = np.empty_like(self.data)
        return self._scratch

    def _snapshot_sources(
        self, senders: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Start-of-step source rows for ``senders``, copied before any write.

        Dense batches (most nodes sending) reuse a full double buffer filled
        with one sequential ``copyto`` — far faster than a random row gather.
        Sparse batches gather only the unique sender rows, so the snapshot
        cost scales with the actual senders, not with ``n_nodes``.

        Returns ``(source, indices)`` such that ``source[indices[i]]`` is
        sender ``i``'s start-of-step row.
        """
        if senders.size * 4 >= self.n_nodes:
            np.copyto(self._ensure_scratch(), self.data)
            return self._scratch, senders
        unique_senders, sender_pos = np.unique(senders, return_inverse=True)
        return self.data[unique_senders], sender_pos

    def _scatter_or(
        self, source: np.ndarray, senders: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        """OR ``source[senders[i]]`` into row ``receivers[i]`` for all ``i``.

        Receivers may repeat; the batch is sorted by receiver and resolved in
        *layers*: layer ``k`` holds each receiver's ``k``-th incoming
        transmission, so receivers are unique within a layer and each layer
        is one vectorised gather-OR-scatter.  The number of layers is the
        maximum in-degree (``O(log n / log log n)`` w.h.p.), not the number
        of transmissions.  This outperforms ``bitwise_or.reduceat``, whose
        generic inner loop is an order of magnitude slower than the
        fancy-indexing fast path.

        Returns the receivers whose rows were written (possibly with
        duplicates on the compiled path; sorted unique on the NumPy path).
        """
        if _ckernel.available():
            # The C loop applies transmissions sequentially; because
            # ``source`` is snapshot storage disjoint from ``data``, the
            # result is order-independent even with duplicate receivers, so
            # no sorting or layering is needed at all.
            _ckernel.scatter_or(
                self.data,
                np.ascontiguousarray(source),
                np.ascontiguousarray(senders),
                np.ascontiguousarray(receivers),
            )
            return receivers
        order = np.argsort(receivers, kind="stable")
        r_sorted = receivers[order]
        s_sorted = senders[order]
        first = np.r_[True, r_sorted[1:] != r_sorted[:-1]]
        positions = np.arange(r_sorted.size)
        starts = positions[first]
        rank = positions - np.repeat(starts, np.diff(np.r_[starts, r_sorted.size]))
        data = self.data
        for k in range(int(rank.max()) + 1):
            layer = rank == k
            data[r_sorted[layer]] |= source[s_sorted[layer]]
        return r_sorted[starts]

    def apply_exchange(
        self,
        callers: np.ndarray,
        targets: np.ndarray,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Apply one synchronous push–pull round: ``callers[i] <-> targets[i]``.

        Both directions (push ``caller -> target`` and pull ``target ->
        caller``) read the same start-of-step state.  ``callers`` must be
        sorted and unique (the channel model: one outgoing channel per node);
        targets may repeat.  The pull direction therefore has unique
        receivers and is applied as a single aligned gather-OR — when every
        node is a caller it degenerates to ``data |= source[targets]`` with
        no index arrays at all — while the push direction goes through the
        layered scatter.

        When ``complete``/``complete_row`` are given (a boolean
        saturated-row mask and the saturation target row, usually from
        :class:`~repro.core.completion.CompletionTracker`), the exchange
        additionally short-circuits saturation: transmissions into saturated
        rows are dropped (no-ops) and receivers fed by a saturated sender are
        directly assigned ``complete_row``.  This is bit-exact provided every
        participating row is a subset of ``complete_row`` — true whenever
        channels only ever connect alive nodes, because crashed nodes never
        transmit and their messages never spread.

        Returns
        -------
        (touched, promoted):
            ``touched`` — receivers whose rows were OR-updated (may contain
            duplicates: a node can receive in both directions);
            ``promoted`` — sorted unique receivers directly saturated.  The
            two sets are disjoint.
        """
        callers = np.asarray(callers, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if callers.shape != targets.shape:
            raise ValueError("callers and targets must have identical shapes")
        empty = np.zeros(0, dtype=np.int64)
        if callers.size == 0:
            return empty, empty
        if complete is not None and not complete.any():
            complete = None
        if complete is None and _ckernel.available():
            # Unfiltered round: one fused compiled pass (snapshot + both
            # directions), no intermediate index arrays.
            self._ensure_scratch()
            _ckernel.exchange(
                self.data,
                self._scratch,
                np.ascontiguousarray(callers),
                np.ascontiguousarray(targets),
            )
            return np.concatenate([callers, targets]), empty
        promoted = empty
        if complete is not None:
            keep_push = ~complete[targets]
            keep_pull = ~complete[callers]
            sat_push = keep_push & complete[callers]
            sat_pull = keep_pull & complete[targets]
            if sat_push.any() or sat_pull.any():
                promoted = np.unique(
                    np.concatenate([targets[sat_push], callers[sat_pull]])
                )
                is_promoted = np.zeros(self.n_nodes, dtype=bool)
                is_promoted[promoted] = True
                keep_push &= ~is_promoted[targets]
                keep_pull &= ~is_promoted[callers]
            push_s, push_r = callers[keep_push], targets[keep_push]
            pull_s, pull_r = targets[keep_pull], callers[keep_pull]
        else:
            push_s, push_r = callers, targets
            pull_s, pull_r = targets, callers
        touched = empty
        if push_r.size or pull_r.size:
            n_push = push_s.size
            source, remapped = self._snapshot_sources(
                np.concatenate([push_s, pull_s])
            )
            push_s = remapped[:n_push]
            pull_s = remapped[n_push:]
            if _ckernel.available():
                # One order-independent C pass over both directions.
                touched = self._scatter_or(
                    source,
                    remapped,
                    np.concatenate([push_r, pull_r]),
                )
            else:
                if pull_r.size == self.n_nodes:
                    # Sorted unique, full-length: pull_r is exactly arange(n).
                    self.data |= source[pull_s]
                elif pull_r.size:
                    self.data[pull_r] |= source[pull_s]
                if push_r.size:
                    touched_push = self._scatter_or(source, push_s, push_r)
                    touched = np.concatenate([pull_r, touched_push])
                else:
                    touched = pull_r
        if promoted.size:
            self.data[promoted] = complete_row
        return touched, promoted

    # ------------------------------------------------------------------ #
    # Aggregate queries
    # ------------------------------------------------------------------ #
    def counts(self) -> np.ndarray:
        """Number of messages known by each node (length ``n_nodes``)."""
        return np.bitwise_count(self.data).sum(axis=1).astype(np.int64)

    def nodes_knowing(self, message: int) -> np.ndarray:
        """Array of node identifiers that know ``message``."""
        self._check_message(message)
        word = message // WORD_BITS
        mask = (self.data[:, word] & self._bit(message)) != 0
        return np.flatnonzero(mask)

    def num_nodes_knowing(self, message: int) -> int:
        """Number of nodes that know ``message``."""
        return int(self.nodes_knowing(message).size)

    def informed_counts_per_message(self) -> np.ndarray:
        """For every message, the number of nodes knowing it."""
        bits = np.unpackbits(
            self.data.view(np.uint8), axis=1, bitorder="little"
        )[:, : self.n_messages]
        return bits.sum(axis=0, dtype=np.int64)

    def fully_informed_nodes(self) -> np.ndarray:
        """Boolean mask of nodes that know every message."""
        return self.counts() == self.n_messages

    def is_complete(self) -> bool:
        """True when every node knows every message (gossiping finished)."""
        full_word = np.uint64(0xFFFFFFFFFFFFFFFF)
        # Check all full words first (cheap early exit).
        full_words = self.words - 1 if self.n_messages % WORD_BITS else self.words
        if full_words and not np.all(self.data[:, :full_words] == full_word):
            return False
        rem = self.n_messages % WORD_BITS
        if rem:
            tail_mask = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
            if not np.all(self.data[:, -1] == tail_mask):
                return False
        return True

    def total_known(self) -> int:
        """Total number of (node, message) pairs currently known."""
        return int(np.bitwise_count(self.data).sum())

    def coverage(self) -> float:
        """Fraction of the ``n_nodes * n_messages`` pairs that are known."""
        return self.total_known() / float(self.n_nodes * self.n_messages)

    def missing_messages_at(self, node: int) -> np.ndarray:
        """Message identifiers *not* known by ``node``."""
        known = np.unpackbits(self.data[node].view(np.uint8), bitorder="little")
        return np.flatnonzero(~known[: self.n_messages].astype(bool))

    # ------------------------------------------------------------------ #
    # Row-level helpers (used by the random-walk machinery)
    # ------------------------------------------------------------------ #
    def row(self, node: int) -> np.ndarray:
        """Live view of ``node``'s bitset row."""
        return self.data[node]

    def zero_row(self) -> np.ndarray:
        """A fresh all-zero row compatible with this matrix."""
        return np.zeros(self.words, dtype=_WORD_DTYPE)

    def full_row_mask(self) -> np.ndarray:
        """Packed row with every valid message bit set (the completion target)."""
        mask = np.full(self.words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=_WORD_DTYPE)
        rem = self.n_messages % WORD_BITS
        if rem:
            mask[-1] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
        return mask

    def row_with(self, messages: Iterable[int]) -> np.ndarray:
        """A fresh row with exactly ``messages`` set."""
        row = self.zero_row()
        for m in messages:
            self._check_message(m)
            row[m // WORD_BITS] |= self._bit(m)
        return row

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeMatrix):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.n_messages == other.n_messages
            and bool(np.array_equal(self.data, other.data))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeMatrix(n_nodes={self.n_nodes}, n_messages={self.n_messages}, "
            f"coverage={self.coverage():.3f})"
        )


class SingleMessageState:
    """Informed/uninformed state for single-message broadcasting baselines.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    source:
        The initially informed node (defaults to node 0).
    """

    __slots__ = ("n_nodes", "informed", "informed_at")

    def __init__(self, n_nodes: int, source: int = 0) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if not 0 <= source < n_nodes:
            raise ValueError(f"source {source} out of range [0, {n_nodes})")
        self.n_nodes = int(n_nodes)
        self.informed = np.zeros(n_nodes, dtype=bool)
        self.informed[source] = True
        #: round index at which each node was first informed (-1 = never).
        self.informed_at = np.full(n_nodes, -1, dtype=np.int64)
        self.informed_at[source] = 0

    def num_informed(self) -> int:
        """Number of currently informed nodes."""
        return int(self.informed.sum())

    def is_complete(self) -> bool:
        """True when all nodes are informed."""
        return bool(self.informed.all())

    def inform(self, nodes: np.ndarray, round_index: int) -> int:
        """Mark ``nodes`` as informed during ``round_index``.

        Returns the number of *newly* informed nodes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        fresh = nodes[~self.informed[nodes]]
        fresh = np.unique(fresh)
        self.informed[fresh] = True
        self.informed_at[fresh] = round_index
        return int(fresh.size)

    def uninformed_nodes(self) -> np.ndarray:
        """Array of nodes that are still uninformed."""
        return np.flatnonzero(~self.informed)

    def informed_nodes(self) -> np.ndarray:
        """Array of nodes that are informed."""
        return np.flatnonzero(self.informed)
