"""Packed-bitset bookkeeping of which node knows which original message.

Gossiping is an all-to-all dissemination problem: each of the ``n`` nodes
starts with one original message and every node must eventually know all ``n``
messages.  The simulator therefore has to track, for every node, the *set* of
original messages it currently knows.  A dense boolean ``n x n`` matrix would
need ``n**2`` bytes; instead we pack message sets into rows of 64-bit words,
which both reduces memory by a factor of eight and turns message-set unions
(the only mutation the random phone call model needs) into a handful of
vectorised ``|=`` operations.

Two classes are provided:

``KnowledgeMatrix``
    The full gossiping state: one bitset row per node over ``n_messages``
    message slots.

``SingleMessageState``
    A light-weight informed/uninformed boolean vector used by the
    single-message *broadcasting* baselines in :mod:`repro.broadcast`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["KnowledgeMatrix", "SingleMessageState", "WORD_BITS"]

#: Number of bits per storage word.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def _n_words(n_bits: int) -> int:
    """Number of 64-bit words needed to store ``n_bits`` bits."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


class KnowledgeMatrix:
    """Which original messages each node currently knows, as packed bitsets.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    n_messages:
        Number of distinct original messages.  Defaults to ``n_nodes`` (the
        gossiping setting where node ``i`` starts with message ``i``).
    initialize_own:
        When true (the default) node ``i`` starts knowing message ``i``
        (requires ``n_messages >= n_nodes`` or simply ``i < n_messages``).

    Notes
    -----
    Rows are mutated in place.  All update helpers take a *snapshot* argument
    where the synchronous semantics of the random phone call model require
    reading start-of-step state while writing end-of-step state.
    """

    __slots__ = ("n_nodes", "n_messages", "words", "data")

    def __init__(
        self,
        n_nodes: int,
        n_messages: Optional[int] = None,
        *,
        initialize_own: bool = True,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_messages is None:
            n_messages = n_nodes
        if n_messages <= 0:
            raise ValueError(f"n_messages must be positive, got {n_messages}")
        self.n_nodes = int(n_nodes)
        self.n_messages = int(n_messages)
        self.words = _n_words(self.n_messages)
        self.data = np.zeros((self.n_nodes, self.words), dtype=_WORD_DTYPE)
        if initialize_own:
            upto = min(self.n_nodes, self.n_messages)
            idx = np.arange(upto)
            self.data[idx, idx // WORD_BITS] |= np.left_shift(
                np.uint64(1), (idx % WORD_BITS).astype(_WORD_DTYPE)
            )

    # ------------------------------------------------------------------ #
    # Constructors and copies
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_nodes: int, n_messages: Optional[int] = None) -> "KnowledgeMatrix":
        """A matrix in which no node knows any message."""
        return cls(n_nodes, n_messages, initialize_own=False)

    def copy(self) -> "KnowledgeMatrix":
        """Deep copy of the knowledge state."""
        clone = KnowledgeMatrix.empty(self.n_nodes, self.n_messages)
        clone.data[:] = self.data
        return clone

    def snapshot(self) -> np.ndarray:
        """A copy of the raw word matrix (used for synchronous-step reads)."""
        return self.data.copy()

    # ------------------------------------------------------------------ #
    # Element access
    # ------------------------------------------------------------------ #
    def _bit(self, message: int) -> np.uint64:
        return np.uint64(1) << np.uint64(message % WORD_BITS)

    def add(self, node: int, message: int) -> None:
        """Mark ``node`` as knowing ``message``."""
        self._check_message(message)
        self.data[node, message // WORD_BITS] |= self._bit(message)

    def knows(self, node: int, message: int) -> bool:
        """Whether ``node`` currently knows ``message``."""
        self._check_message(message)
        word = self.data[node, message // WORD_BITS]
        return bool(word & self._bit(message))

    def known_messages(self, node: int) -> np.ndarray:
        """Sorted array of message identifiers known by ``node``."""
        bits = np.unpackbits(self.data[node].view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.n_messages])

    def _check_message(self, message: int) -> None:
        if not 0 <= message < self.n_messages:
            raise IndexError(
                f"message {message} out of range [0, {self.n_messages})"
            )

    # ------------------------------------------------------------------ #
    # Bulk updates (the hot path)
    # ------------------------------------------------------------------ #
    def union_into(self, dst: int, src_row: np.ndarray) -> None:
        """OR an external bitset row into ``dst``'s knowledge."""
        self.data[dst] |= src_row

    def union_from_node(self, dst: int, src: int, snapshot: Optional[np.ndarray] = None) -> None:
        """Make ``dst`` learn everything ``src`` knows.

        If ``snapshot`` is given, ``src``'s knowledge is read from it (the
        synchronous-model convention); otherwise the live matrix is read.
        """
        source = self.data if snapshot is None else snapshot
        self.data[dst] |= source[src]

    def apply_transmissions(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        snapshot: Optional[np.ndarray] = None,
    ) -> None:
        """Apply a batch of directed transmissions ``senders[i] -> receivers[i]``.

        All transmissions are evaluated against the same start-of-step
        ``snapshot`` (taken implicitly if not supplied), so a message cannot
        hop through several nodes within a single synchronous step.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must have identical shapes")
        if senders.size == 0:
            return
        source = self.snapshot() if snapshot is None else snapshot
        # Receivers may repeat (several incoming channels); a Python loop over
        # transmissions with vectorised row ORs is both correct and fast
        # enough: each OR touches ``words`` contiguous uint64 values.
        data = self.data
        for s, r in zip(senders.tolist(), receivers.tolist()):
            data[r] |= source[s]

    # ------------------------------------------------------------------ #
    # Aggregate queries
    # ------------------------------------------------------------------ #
    def counts(self) -> np.ndarray:
        """Number of messages known by each node (length ``n_nodes``)."""
        return np.bitwise_count(self.data).sum(axis=1).astype(np.int64)

    def nodes_knowing(self, message: int) -> np.ndarray:
        """Array of node identifiers that know ``message``."""
        self._check_message(message)
        word = message // WORD_BITS
        mask = (self.data[:, word] & self._bit(message)) != 0
        return np.flatnonzero(mask)

    def num_nodes_knowing(self, message: int) -> int:
        """Number of nodes that know ``message``."""
        return int(self.nodes_knowing(message).size)

    def informed_counts_per_message(self) -> np.ndarray:
        """For every message, the number of nodes knowing it."""
        bits = np.unpackbits(
            self.data.view(np.uint8), axis=1, bitorder="little"
        )[:, : self.n_messages]
        return bits.sum(axis=0, dtype=np.int64)

    def fully_informed_nodes(self) -> np.ndarray:
        """Boolean mask of nodes that know every message."""
        return self.counts() == self.n_messages

    def is_complete(self) -> bool:
        """True when every node knows every message (gossiping finished)."""
        full_word = np.uint64(0xFFFFFFFFFFFFFFFF)
        # Check all full words first (cheap early exit).
        full_words = self.words - 1 if self.n_messages % WORD_BITS else self.words
        if full_words and not np.all(self.data[:, :full_words] == full_word):
            return False
        rem = self.n_messages % WORD_BITS
        if rem:
            tail_mask = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
            if not np.all(self.data[:, -1] == tail_mask):
                return False
        return True

    def total_known(self) -> int:
        """Total number of (node, message) pairs currently known."""
        return int(np.bitwise_count(self.data).sum())

    def coverage(self) -> float:
        """Fraction of the ``n_nodes * n_messages`` pairs that are known."""
        return self.total_known() / float(self.n_nodes * self.n_messages)

    def missing_messages_at(self, node: int) -> np.ndarray:
        """Message identifiers *not* known by ``node``."""
        known = np.unpackbits(self.data[node].view(np.uint8), bitorder="little")
        return np.flatnonzero(~known[: self.n_messages].astype(bool))

    # ------------------------------------------------------------------ #
    # Row-level helpers (used by the random-walk machinery)
    # ------------------------------------------------------------------ #
    def row(self, node: int) -> np.ndarray:
        """Live view of ``node``'s bitset row."""
        return self.data[node]

    def zero_row(self) -> np.ndarray:
        """A fresh all-zero row compatible with this matrix."""
        return np.zeros(self.words, dtype=_WORD_DTYPE)

    def row_with(self, messages: Iterable[int]) -> np.ndarray:
        """A fresh row with exactly ``messages`` set."""
        row = self.zero_row()
        for m in messages:
            self._check_message(m)
            row[m // WORD_BITS] |= self._bit(m)
        return row

    # ------------------------------------------------------------------ #
    # Dunder conveniences
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeMatrix):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and self.n_messages == other.n_messages
            and bool(np.array_equal(self.data, other.data))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeMatrix(n_nodes={self.n_nodes}, n_messages={self.n_messages}, "
            f"coverage={self.coverage():.3f})"
        )


class SingleMessageState:
    """Informed/uninformed state for single-message broadcasting baselines.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    source:
        The initially informed node (defaults to node 0).
    """

    __slots__ = ("n_nodes", "informed", "informed_at")

    def __init__(self, n_nodes: int, source: int = 0) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if not 0 <= source < n_nodes:
            raise ValueError(f"source {source} out of range [0, {n_nodes})")
        self.n_nodes = int(n_nodes)
        self.informed = np.zeros(n_nodes, dtype=bool)
        self.informed[source] = True
        #: round index at which each node was first informed (-1 = never).
        self.informed_at = np.full(n_nodes, -1, dtype=np.int64)
        self.informed_at[source] = 0

    def num_informed(self) -> int:
        """Number of currently informed nodes."""
        return int(self.informed.sum())

    def is_complete(self) -> bool:
        """True when all nodes are informed."""
        return bool(self.informed.all())

    def inform(self, nodes: np.ndarray, round_index: int) -> int:
        """Mark ``nodes`` as informed during ``round_index``.

        Returns the number of *newly* informed nodes.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        fresh = nodes[~self.informed[nodes]]
        fresh = np.unique(fresh)
        self.informed[fresh] = True
        self.informed_at[fresh] = round_index
        return int(fresh.size)

    def uninformed_nodes(self) -> np.ndarray:
        """Array of nodes that are still uninformed."""
        return np.flatnonzero(~self.informed)

    def informed_nodes(self) -> np.ndarray:
        """Array of nodes that are informed."""
        return np.flatnonzero(self.informed)
