"""Communication-complexity accounting for the random phone call model.

The paper (following Berenbrink et al., ICALP 2010) counts two kinds of cost:

* *channel opens* — a node opening a communication channel in a step, and
* *packet transmissions* — sending one packet through an open channel,
  counted once regardless of how many original messages are combined in it.

Different figures in the literature report different combinations of these
(the plain push–pull plot in the paper effectively reports rounds, while the
analytical bounds count transmissions).  :class:`TransmissionLedger` therefore
keeps separate per-node counters for opens, push packets and pull packets, per
protocol phase, and lets the caller choose the accounting via
:class:`MessageAccounting` when summarising.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

__all__ = ["MessageAccounting", "PhaseTotals", "TransmissionLedger"]


class MessageAccounting(str, enum.Enum):
    """Which cost components are summed when reporting message complexity."""

    #: Packet transmissions only (push + pull packets).  This is the metric
    #: reported per node in the paper's Figure 1 style plots.
    PACKETS = "packets"
    #: Channel opens only.
    OPENS = "opens"
    #: The strict Berenbrink et al. accounting: opens + packets.
    OPENS_AND_PACKETS = "opens_and_packets"
    #: Push packets only.
    PUSHES = "pushes"
    #: Pull packets only.
    PULLS = "pulls"


@dataclass
class PhaseTotals:
    """Aggregated counters for one protocol phase."""

    channel_opens: int = 0
    push_packets: int = 0
    pull_packets: int = 0
    rounds: int = 0

    @property
    def packets(self) -> int:
        """Total packet transmissions in the phase."""
        return self.push_packets + self.pull_packets

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used for serialisation."""
        return {
            "channel_opens": self.channel_opens,
            "push_packets": self.push_packets,
            "pull_packets": self.pull_packets,
            "packets": self.packets,
            "rounds": self.rounds,
        }


class TransmissionLedger:
    """Per-node, per-phase communication counters.

    Parameters
    ----------
    n_nodes:
        Number of nodes; all counters are arrays of this length.

    Notes
    -----
    The ledger is deliberately protocol-agnostic.  Protocols call
    :meth:`record_opens`, :meth:`record_pushes` and :meth:`record_pulls` with
    arrays of node identifiers (repetition allowed — a node sending two pull
    packets in one step appears twice), and :meth:`end_round` once per
    synchronous step.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.channel_opens = np.zeros(n_nodes, dtype=np.int64)
        self.push_packets = np.zeros(n_nodes, dtype=np.int64)
        self.pull_packets = np.zeros(n_nodes, dtype=np.int64)
        self.rounds = 0
        self._phase: Optional[str] = None
        self._phase_totals: Dict[str, PhaseTotals] = {}
        self._phase_order: List[str] = []

    # ------------------------------------------------------------------ #
    # Phase management
    # ------------------------------------------------------------------ #
    def begin_phase(self, name: str) -> None:
        """Start attributing subsequent costs to phase ``name``."""
        if name not in self._phase_totals:
            self._phase_totals[name] = PhaseTotals()
            self._phase_order.append(name)
        self._phase = name

    def end_phase(self) -> None:
        """Stop attributing costs to the current phase."""
        self._phase = None

    @property
    def current_phase(self) -> Optional[str]:
        """Name of the phase currently being recorded, if any."""
        return self._phase

    @property
    def phases(self) -> List[str]:
        """Phase names in the order they were first seen."""
        return list(self._phase_order)

    def phase_totals(self, name: str) -> PhaseTotals:
        """Aggregated counters for phase ``name``."""
        return self._phase_totals[name]

    def _phase_bucket(self) -> Optional[PhaseTotals]:
        if self._phase is None:
            return None
        return self._phase_totals[self._phase]

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _accumulate(self, target: np.ndarray, nodes: np.ndarray) -> int:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return 0
        np.add.at(target, nodes, 1)
        return int(nodes.size)

    def record_opens(self, nodes: np.ndarray) -> None:
        """Record one channel open per entry of ``nodes``."""
        count = self._accumulate(self.channel_opens, nodes)
        bucket = self._phase_bucket()
        if bucket is not None:
            bucket.channel_opens += count

    def record_pushes(self, nodes: np.ndarray) -> None:
        """Record one push packet sent per entry of ``nodes``."""
        count = self._accumulate(self.push_packets, nodes)
        bucket = self._phase_bucket()
        if bucket is not None:
            bucket.push_packets += count

    def record_pulls(self, nodes: np.ndarray) -> None:
        """Record one pull packet sent per entry of ``nodes``."""
        count = self._accumulate(self.pull_packets, nodes)
        bucket = self._phase_bucket()
        if bucket is not None:
            bucket.pull_packets += count

    def end_round(self) -> None:
        """Mark the end of one synchronous step."""
        self.rounds += 1
        bucket = self._phase_bucket()
        if bucket is not None:
            bucket.rounds += 1

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def per_node(self, accounting: MessageAccounting = MessageAccounting.PACKETS) -> np.ndarray:
        """Per-node cost under the chosen accounting."""
        accounting = MessageAccounting(accounting)
        if accounting is MessageAccounting.PACKETS:
            return self.push_packets + self.pull_packets
        if accounting is MessageAccounting.OPENS:
            return self.channel_opens.copy()
        if accounting is MessageAccounting.OPENS_AND_PACKETS:
            return self.channel_opens + self.push_packets + self.pull_packets
        if accounting is MessageAccounting.PUSHES:
            return self.push_packets.copy()
        if accounting is MessageAccounting.PULLS:
            return self.pull_packets.copy()
        raise ValueError(f"unknown accounting {accounting!r}")  # pragma: no cover

    def total(self, accounting: MessageAccounting = MessageAccounting.PACKETS) -> int:
        """Total cost across all nodes under the chosen accounting."""
        return int(self.per_node(accounting).sum())

    def average_per_node(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> float:
        """Average cost per node — the y-axis of the paper's Figure 1."""
        return self.total(accounting) / float(self.n_nodes)

    def max_per_node(self, accounting: MessageAccounting = MessageAccounting.PACKETS) -> int:
        """Maximum cost incurred by any single node."""
        return int(self.per_node(accounting).max())

    def summary(self) -> Dict[str, object]:
        """Serializable summary of all counters."""
        return {
            "n_nodes": self.n_nodes,
            "rounds": self.rounds,
            "total_channel_opens": int(self.channel_opens.sum()),
            "total_push_packets": int(self.push_packets.sum()),
            "total_pull_packets": int(self.pull_packets.sum()),
            "total_packets": int(self.push_packets.sum() + self.pull_packets.sum()),
            "avg_packets_per_node": self.average_per_node(MessageAccounting.PACKETS),
            "avg_opens_per_node": self.average_per_node(MessageAccounting.OPENS),
            "phases": {
                name: self._phase_totals[name].as_dict() for name in self._phase_order
            },
        }

    def merge(self, other: "TransmissionLedger") -> "TransmissionLedger":
        """Combine two ledgers (e.g. leader election + gossiping) into a new one."""
        if self.n_nodes != other.n_nodes:
            raise ValueError("cannot merge ledgers with different node counts")
        merged = TransmissionLedger(self.n_nodes)
        merged.channel_opens = self.channel_opens + other.channel_opens
        merged.push_packets = self.push_packets + other.push_packets
        merged.pull_packets = self.pull_packets + other.pull_packets
        merged.rounds = self.rounds + other.rounds
        for source in (self, other):
            for name in source._phase_order:
                totals = source._phase_totals[name]
                if name not in merged._phase_totals:
                    merged._phase_totals[name] = PhaseTotals()
                    merged._phase_order.append(name)
                dst = merged._phase_totals[name]
                dst.channel_opens += totals.channel_opens
                dst.push_packets += totals.push_packets
                dst.pull_packets += totals.pull_packets
                dst.rounds += totals.rounds
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransmissionLedger(n_nodes={self.n_nodes}, rounds={self.rounds}, "
            f"packets={self.total(MessageAccounting.PACKETS)})"
        )
