"""Per-round progress traces of a gossiping or broadcasting run.

The analytical part of the paper reasons about the growth of the informed set
``I_m(t)`` per message over time; the empirical part reports end-of-run
aggregates.  :class:`SpreadingTrace` records a small per-round summary of the
knowledge state so that examples and analysis code can plot spreading curves
without storing the full knowledge matrix per round (which would be
prohibitively large).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .knowledge import KnowledgeMatrix, SingleMessageState

__all__ = ["RoundRecord", "SpreadingTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """Summary of the knowledge state at the end of one round.

    Attributes
    ----------
    round_index:
        Zero-based round counter (global across phases).
    phase:
        Name of the protocol phase the round belongs to.
    coverage:
        Fraction of known (node, message) pairs.
    min_known / mean_known / max_known:
        Statistics of the per-node knowledge counts.
    fully_informed_nodes:
        Number of nodes that already know every message.
    """

    round_index: int
    phase: str
    coverage: float
    min_known: int
    mean_known: float
    max_known: int
    fully_informed_nodes: int


class SpreadingTrace:
    """Accumulates :class:`RoundRecord` entries over a protocol run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[RoundRecord] = []

    def record(
        self,
        round_index: int,
        phase: str,
        knowledge: KnowledgeMatrix,
    ) -> None:
        """Append a summary of ``knowledge`` for ``round_index``."""
        if not self.enabled:
            return
        counts = knowledge.counts()
        total = knowledge.n_nodes * knowledge.n_messages
        self.records.append(
            RoundRecord(
                round_index=round_index,
                phase=phase,
                coverage=float(counts.sum()) / float(total),
                min_known=int(counts.min()),
                mean_known=float(counts.mean()),
                max_known=int(counts.max()),
                fully_informed_nodes=int((counts == knowledge.n_messages).sum()),
            )
        )

    def record_broadcast(
        self, round_index: int, phase: str, state: SingleMessageState
    ) -> None:
        """Append a summary of a single-message broadcast ``state``."""
        if not self.enabled:
            return
        informed = state.num_informed()
        self.records.append(
            RoundRecord(
                round_index=round_index,
                phase=phase,
                coverage=informed / float(state.n_nodes),
                min_known=int(state.informed.min()),
                mean_known=informed / float(state.n_nodes),
                max_known=int(state.informed.max()),
                fully_informed_nodes=informed,
            )
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def coverage_curve(self) -> np.ndarray:
        """Array of per-round coverage values."""
        return np.asarray([r.coverage for r in self.records], dtype=np.float64)

    def rounds_per_phase(self) -> Dict[str, int]:
        """Number of recorded rounds attributed to each phase."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.phase] = out.get(record.phase, 0) + 1
        return out

    def final_coverage(self) -> float:
        """Coverage at the last recorded round (0.0 if nothing recorded)."""
        return self.records[-1].coverage if self.records else 0.0

    def as_rows(self) -> List[Dict[str, object]]:
        """Plain-dict rows for CSV/JSON export."""
        return [
            {
                "round": r.round_index,
                "phase": r.phase,
                "coverage": r.coverage,
                "min_known": r.min_known,
                "mean_known": r.mean_known,
                "max_known": r.max_known,
                "fully_informed_nodes": r.fully_informed_nodes,
            }
            for r in self.records
        ]
