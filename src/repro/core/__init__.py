"""The paper's gossiping algorithms and their parameters."""

from .completion import (
    CompletionTracker,
    alive_message_mask,
    gossip_complete,
    missing_pairs,
)
from .fast_gossiping import FastGossiping
from .leader_election import LeaderElection, LeaderElectionResult
from .memory_gossiping import CommunicationTree, MemoryGossiping
from .node_memory import NodeMemory
from .parameters import (
    FastGossipingParameters,
    FastGossipingSchedule,
    LeaderElectionParameters,
    MemoryGossipingParameters,
    MemoryGossipingSchedule,
    PushPullParameters,
    log2,
    loglog2,
    table1_rows,
    theory_fast_gossiping,
    tuned_fast_gossiping,
    tuned_memory_gossiping,
)
from .protocol import CLOCKS, GossipProtocol
from .push_pull import PushPullGossip
from .push_sum import PushSumGossip, PushSumParameters
from .random_walks import WalkPool, start_walks
from .results import GossipResult

__all__ = [
    "CompletionTracker",
    "alive_message_mask",
    "gossip_complete",
    "missing_pairs",
    "FastGossiping",
    "LeaderElection",
    "LeaderElectionResult",
    "CommunicationTree",
    "MemoryGossiping",
    "NodeMemory",
    "FastGossipingParameters",
    "FastGossipingSchedule",
    "LeaderElectionParameters",
    "MemoryGossipingParameters",
    "MemoryGossipingSchedule",
    "PushPullParameters",
    "log2",
    "loglog2",
    "table1_rows",
    "theory_fast_gossiping",
    "tuned_fast_gossiping",
    "tuned_memory_gossiping",
    "CLOCKS",
    "GossipProtocol",
    "PushPullGossip",
    "PushSumGossip",
    "PushSumParameters",
    "WalkPool",
    "start_walks",
    "GossipResult",
]
