"""Algorithm 2 — gossiping in the memory model (constant-size node memory).

Every node may remember the addresses of the last few (four) neighbours it
contacted, may *avoid* them when opening a new random channel (``open-avoid``)
and may re-contact them deliberately.  With this small extension of the random
phone call model the paper obtains a gossiping algorithm with ``O(log n)``
running time and only ``O(n)`` message transmissions (``O(n log log n)`` if a
leader first has to be elected):

Phase I — *tree construction*: the leader disseminates its message by having
every newly informed node contact four distinct random neighbours (one per
step of a *long-step*), each node storing whom it contacted and when.  A few
pull long-steps let the remaining uninformed nodes fetch the message and
record from whom they got it.  The recorded contacts form a communication
tree rooted at the leader.

Phase II — *gathering*: the recorded edges are replayed in reverse
chronological order, so every node forwards all original messages it has
accumulated towards the leader; afterwards the leader knows every message.

Phase III — *broadcast*: the leader's complete message set is sent back down
the same tree in forward chronological order.

The robustness experiments of the paper build several independent trees in
Phase I, crash ``F`` random nodes right before Phase II and count how many
healthy nodes' original messages are missing at the root afterwards; the
:class:`MemoryGossiping` protocol exposes exactly these quantities in its
result extras.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.knowledge import KnowledgeMatrix
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng, spawn_rngs
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .completion import gossip_complete
from .leader_election import LeaderElection, LeaderElectionResult
from .parameters import (
    LeaderElectionParameters,
    MemoryGossipingParameters,
    MemoryGossipingSchedule,
    tuned_memory_gossiping,
)
from .protocol import GossipProtocol
from .results import GossipResult

__all__ = ["CommunicationTree", "MemoryGossiping"]


def _group_by_step(steps: np.ndarray, descending: bool) -> List[np.ndarray]:
    """Group edge indices by their step value, ordered by step.

    One stable argsort plus a boundary split replaces the former
    ``O(edges * unique_steps)`` repeated ``flatnonzero`` scans; within each
    group the indices stay in ascending order (stable sort), matching the
    replay order of the per-step scan.
    """
    steps = np.asarray(steps, dtype=np.int64)
    if steps.size == 0:
        return []
    order = np.argsort(steps, kind="stable")
    sorted_steps = steps[order]
    boundaries = np.flatnonzero(sorted_steps[1:] != sorted_steps[:-1]) + 1
    groups = np.split(order, boundaries)
    if descending:
        groups.reverse()
    return groups


def _steps_descending(steps: np.ndarray) -> List[np.ndarray]:
    """Edge index groups from the latest recorded step to the earliest."""
    return _group_by_step(steps, descending=True)


def _steps_ascending(steps: np.ndarray) -> List[np.ndarray]:
    """Edge index groups from the earliest recorded step to the latest."""
    return _group_by_step(steps, descending=False)


@dataclass
class CommunicationTree:
    """The contact structure recorded during Phase I for one tree.

    Attributes
    ----------
    root:
        The leader at which the tree is rooted.
    push_parents / push_children / push_steps:
        One entry per push contact: the active node, the neighbour it
        contacted, and the global Phase I step at which the contact happened.
    pull_children / pull_parents / pull_steps:
        One entry per first-time pull receipt: the previously uninformed node,
        the informed neighbour it pulled the message from, and the step.
    informed_step:
        Step at which each node first received the leader's message
        (-1 = never; the root has step 0).
    """

    root: int
    push_parents: np.ndarray
    push_children: np.ndarray
    push_steps: np.ndarray
    pull_children: np.ndarray
    pull_parents: np.ndarray
    pull_steps: np.ndarray
    informed_step: np.ndarray

    @property
    def num_informed(self) -> int:
        """Number of nodes that received the leader's message."""
        return int((self.informed_step >= 0).sum())

    @property
    def num_push_edges(self) -> int:
        """Number of recorded push contacts."""
        return int(self.push_parents.size)

    @property
    def num_pull_edges(self) -> int:
        """Number of recorded pull attachments."""
        return int(self.pull_children.size)

    def covers_all(self) -> bool:
        """Whether every node received the leader's message."""
        return bool(np.all(self.informed_step >= 0))

    def first_contact_push_indices(self) -> np.ndarray:
        """Indices of the push contacts that *first informed* their child.

        Restricting Phase II to these edges turns the recorded contact
        structure into a strict tree (one upward path per node); the
        redundancy ablation compares this against replaying all contacts.
        """
        if self.push_children.size == 0:
            return np.zeros(0, dtype=np.int64)
        informing = self.informed_step[self.push_children] == self.push_steps + 1
        candidates = np.flatnonzero(informing)
        if candidates.size == 0:
            return candidates
        # Several parents may have contacted the same child in the same step;
        # keep only the first recorded contact per child.
        _, first = np.unique(self.push_children[candidates], return_index=True)
        return np.sort(candidates[first])

    def depth_estimate(self) -> int:
        """Largest recorded informing step (a proxy for the tree depth)."""
        informed = self.informed_step[self.informed_step >= 0]
        return int(informed.max()) if informed.size else 0


class _NodeMemory:
    """The constant-size per-node memory (list ``l_v``) of the memory model."""

    def __init__(self, n: int, size: int) -> None:
        self.size = size
        self.slots = np.full((n, size), -1, dtype=np.int64)
        self.pointer = np.zeros(n, dtype=np.int64)

    def remembered(self, node: int) -> np.ndarray:
        """Addresses currently stored by ``node``."""
        row = self.slots[node]
        return row[row >= 0]

    def store(self, node: int, address: int) -> None:
        """Store ``address`` in the next slot of ``node`` (ring buffer)."""
        self.slots[node, self.pointer[node] % self.size] = address
        self.pointer[node] += 1


class MemoryGossiping(GossipProtocol):
    """Algorithm 2 of the paper: memory-model gossiping with a leader.

    Parameters
    ----------
    params:
        Phase-length constants; defaults to the Table 1 tuned constants.
    leader:
        Fixed leader node.  ``None`` picks a uniformly random node (the
        paper's default assumption) unless ``elect_leader`` is set.
    elect_leader:
        When true, run Algorithm 3 first and use the elected node; its
        communication cost is merged into the result ledger.
    election_params:
        Constants for the optional leader election.
    gather_only:
        Stop after Phase II.  Used by the robustness experiments, which only
        need the gathered set at the root.
    """

    name = "memory"

    def __init__(
        self,
        params: Optional[MemoryGossipingParameters] = None,
        *,
        leader: Optional[int] = None,
        elect_leader: bool = False,
        election_params: Optional[LeaderElectionParameters] = None,
        gather_only: bool = False,
    ) -> None:
        self.params = params or tuned_memory_gossiping()
        self.leader = leader
        self.elect_leader = elect_leader
        self.election_params = election_params or LeaderElectionParameters()
        self.gather_only = gather_only

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
    ) -> GossipResult:
        generator = self._prepare(graph, rng)
        if not failures.is_empty() and failures.inject_at not in ("start", "before_gather"):
            raise ValueError(
                "MemoryGossiping supports failures injected at 'start' or 'before_gather'"
            )
        schedule = self.params.resolve(graph.n)
        n = graph.n

        ledger = TransmissionLedger(n)
        trace = SpreadingTrace(enabled=record_trace)
        knowledge = KnowledgeMatrix(n)

        # Failure masks.  Failures at 'start' apply to every phase; failures
        # at 'before_gather' (the paper's robustness setting) only constrain
        # Phases II and III.
        alive_full = failures.alive_mask(n)
        alive_phase1 = alive_full if failures.applies_at("start") else None
        alive_later = None if failures.is_empty() else alive_full
        alive_nodes = np.flatnonzero(alive_full)

        # Leader selection.
        election_result: Optional[LeaderElectionResult] = None
        if self.leader is not None:
            leader = int(self.leader)
            if not 0 <= leader < n:
                raise ValueError(f"leader {leader} out of range [0, {n})")
        elif self.elect_leader:
            election = LeaderElection(self.election_params)
            election_result = election.run(graph, rng=generator, failures=NO_FAILURES)
            leader = election_result.leader
            ledger = ledger.merge(election_result.ledger)
        else:
            leader = int(generator.integers(n))
        if not alive_full[leader]:
            # The paper treats the leader as healthy (it fails only with
            # probability n^{-Omega(1)}); mirror that by protecting it.
            raise ValueError("the leader must not be part of the failure plan")

        memory = _NodeMemory(n, schedule.fanout)

        # -------------------------- Phase I ---------------------------- #
        ledger.begin_phase("phase1-tree-construction")
        tree_rngs = spawn_rngs(generator, schedule.num_trees)
        trees: List[CommunicationTree] = []
        for tree_rng in tree_rngs:
            tree = self._build_tree(
                graph,
                knowledge,
                ledger,
                tree_rng,
                schedule,
                leader,
                memory,
                alive=alive_phase1,
            )
            trees.append(tree)
        trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase1-tree-construction", knowledge)
        ledger.end_phase()

        # -------------------------- Phase II --------------------------- #
        ledger.begin_phase("phase2-gather")
        for tree in trees:
            self._gather(
                tree,
                knowledge,
                ledger,
                alive=alive_later,
                contacts=schedule.gather_contacts,
            )
        trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase2-gather", knowledge)
        ledger.end_phase()

        lost = self._lost_messages(knowledge, leader, alive_nodes)

        # -------------------------- Phase III -------------------------- #
        completed = False
        if not self.gather_only:
            ledger.begin_phase("phase3-broadcast")
            for tree in trees:
                self._replay_broadcast(
                    tree,
                    knowledge,
                    ledger,
                    alive=alive_later,
                    contacts=schedule.gather_contacts,
                )
            trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase3-broadcast", knowledge)
            ledger.end_phase()
            completed = gossip_complete(knowledge, alive_nodes)

        extras: Dict[str, object] = {
            "leader": leader,
            "num_trees": len(trees),
            "trees": trees,
            "lost_messages": int(lost.size),
            "lost_message_ids": lost,
            "tree_coverage": [tree.num_informed for tree in trees],
            "schedule": schedule.as_dict(),
        }
        if election_result is not None:
            extras["election_unique"] = election_result.unique
            extras["election_candidates"] = int(election_result.candidates.size)

        return GossipResult(
            protocol=self.name,
            n_nodes=n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=knowledge,
            trace=trace if record_trace else None,
            extras=extras,
        )

    # ------------------------------------------------------------------ #
    # Phase I — tree construction
    # ------------------------------------------------------------------ #
    def _build_tree(
        self,
        graph: Adjacency,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        rng: np.random.Generator,
        schedule: MemoryGossipingSchedule,
        leader: int,
        memory: _NodeMemory,
        *,
        alive: Optional[np.ndarray],
    ) -> CommunicationTree:
        n = graph.n
        fanout = schedule.fanout
        informed_step = np.full(n, -1, dtype=np.int64)
        informed_step[leader] = 0

        push_parents: List[int] = []
        push_children: List[int] = []
        push_steps: List[int] = []
        pull_children: List[int] = []
        pull_parents: List[int] = []
        pull_steps: List[int] = []

        step = 0
        frontier: List[int] = [leader]

        # ----------------------- push long-steps ----------------------- #
        for _ in range(schedule.push_longsteps):
            next_frontier: List[int] = []
            opens: List[int] = []
            for v in frontier:
                if alive is not None and not alive[v]:
                    continue
                targets = graph.sample_neighbors_avoiding(
                    v, rng, avoid=memory.remembered(v), count=fanout
                )
                for k, u in enumerate(targets.tolist()):
                    memory.store(v, u)
                    opens.append(v)
                    contact_step = step + k
                    if alive is not None and not alive[u]:
                        # The packet is sent but the crashed callee drops it;
                        # the caller still records the contact.
                        push_parents.append(v)
                        push_children.append(u)
                        push_steps.append(contact_step)
                        continue
                    push_parents.append(v)
                    push_children.append(u)
                    push_steps.append(contact_step)
                    if informed_step[u] < 0:
                        informed_step[u] = contact_step + 1
                        knowledge.add(u, leader)
                        next_frontier.append(u)
            if opens:
                arr = np.asarray(opens, dtype=np.int64)
                ledger.record_opens(arr)
                ledger.record_pushes(arr)
            step += fanout
            for _ in range(fanout):
                ledger.end_round()
            frontier = next_frontier
            if not frontier:
                break

        # ----------------------- pull long-steps ----------------------- #
        pull_rounds_budget = schedule.pull_longsteps
        if schedule.run_pull_until_complete:
            pull_rounds_budget += schedule.max_extra_longsteps
        executed = 0
        while executed < pull_rounds_budget:
            uninformed = np.flatnonzero(informed_step < 0)
            if alive is not None and uninformed.size:
                uninformed = uninformed[alive[uninformed]]
            if uninformed.size == 0:
                if executed >= schedule.pull_longsteps:
                    break
            if uninformed.size == 0 and not schedule.run_pull_until_complete:
                break
            for k in range(schedule.fanout):
                callers = np.flatnonzero(informed_step < 0)
                if alive is not None and callers.size:
                    callers = callers[alive[callers]]
                if callers.size == 0:
                    ledger.end_round()
                    step += 1
                    continue
                opens: List[int] = []
                pulls: List[int] = []
                # Synchronous semantics: only nodes informed *before* this
                # step can answer a pull in it.
                informed_before_step = informed_step >= 0
                for v in callers.tolist():
                    targets = graph.sample_neighbors_avoiding(
                        v, rng, avoid=memory.remembered(v), count=1
                    )
                    if targets.size == 0:
                        targets = graph.sample_neighbors_avoiding(v, rng, count=1)
                    if targets.size == 0:
                        continue
                    u = int(targets[0])
                    memory.store(v, u)
                    opens.append(v)
                    if alive is not None and not alive[u]:
                        continue
                    if informed_before_step[u]:
                        pulls.append(u)
                        informed_step[v] = step + 1
                        knowledge.add(v, leader)
                        pull_children.append(v)
                        pull_parents.append(u)
                        pull_steps.append(step)
                if opens:
                    ledger.record_opens(np.asarray(opens, dtype=np.int64))
                if pulls:
                    ledger.record_pulls(np.asarray(pulls, dtype=np.int64))
                ledger.end_round()
                step += 1
            executed += 1
            remaining_uninformed = np.flatnonzero(informed_step < 0)
            if alive is not None and remaining_uninformed.size:
                remaining_uninformed = remaining_uninformed[alive[remaining_uninformed]]
            if remaining_uninformed.size == 0 and executed >= schedule.pull_longsteps:
                break

        return CommunicationTree(
            root=leader,
            push_parents=np.asarray(push_parents, dtype=np.int64),
            push_children=np.asarray(push_children, dtype=np.int64),
            push_steps=np.asarray(push_steps, dtype=np.int64),
            pull_children=np.asarray(pull_children, dtype=np.int64),
            pull_parents=np.asarray(pull_parents, dtype=np.int64),
            pull_steps=np.asarray(pull_steps, dtype=np.int64),
            informed_step=informed_step,
        )

    # ------------------------------------------------------------------ #
    # Phase II — gather along the reversed tree
    # ------------------------------------------------------------------ #
    @staticmethod
    def _selected_push_edges(
        tree: CommunicationTree, contacts: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Push contacts used by the gather/broadcast replay.

        ``"all"`` uses every recorded contact (the literal Algorithm 2);
        ``"first"`` restricts to the contact that first informed each node.
        """
        if contacts == "first":
            idx = tree.first_contact_push_indices()
            return tree.push_parents[idx], tree.push_children[idx], tree.push_steps[idx]
        return tree.push_parents, tree.push_children, tree.push_steps

    def _gather(
        self,
        tree: CommunicationTree,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray],
        contacts: str = "all",
    ) -> None:
        push_parents, push_children, push_steps = self._selected_push_edges(tree, contacts)
        # First the pull-phase attachments, children first (reverse step
        # order): each node pushes everything it has to the node it pulled
        # the leader's message from.  Edges recorded in the same Phase I step
        # are replayed within the same round.
        for edge_indices in _steps_descending(tree.pull_steps):
            opens: List[int] = []
            pushes: List[int] = []
            for idx in edge_indices:
                child = int(tree.pull_children[idx])
                parent = int(tree.pull_parents[idx])
                if alive is not None and not alive[child]:
                    continue  # crashed node: no communication at all
                opens.append(child)
                pushes.append(child)
                if alive is not None and not alive[parent]:
                    continue  # crashed recipient drops the packet
                knowledge.union_from_node(parent, child)
            if opens:
                ledger.record_opens(np.asarray(opens, dtype=np.int64))
                ledger.record_pushes(np.asarray(pushes, dtype=np.int64))
            ledger.end_round()
        # Then the push-phase contacts in reverse chronological order: the
        # parent re-opens the stored channel and the child answers with a pull
        # carrying all original messages it has accumulated so far.
        for edge_indices in _steps_descending(push_steps):
            opens = []
            pulls: List[int] = []
            for idx in edge_indices:
                parent = int(push_parents[idx])
                child = int(push_children[idx])
                if alive is not None and not alive[parent]:
                    continue
                opens.append(parent)
                if alive is not None and not alive[child]:
                    continue
                pulls.append(child)
                knowledge.union_from_node(parent, child)
            if opens:
                ledger.record_opens(np.asarray(opens, dtype=np.int64))
            if pulls:
                ledger.record_pulls(np.asarray(pulls, dtype=np.int64))
            ledger.end_round()

    # ------------------------------------------------------------------ #
    # Phase III — broadcast back down the tree
    # ------------------------------------------------------------------ #
    def _replay_broadcast(
        self,
        tree: CommunicationTree,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray],
        contacts: str = "all",
    ) -> None:
        # Forward chronological replay: every recorded contact forwards the
        # sender's current combined message.  Because a node's own informing
        # contact happened strictly before its outgoing contacts, the leader's
        # complete set cascades down the tree in a single pass.
        push_parents, push_children, push_steps = self._selected_push_edges(tree, contacts)
        all_steps = np.concatenate([push_steps, tree.pull_steps])
        push_count = push_steps.size
        for edge_indices in _steps_ascending(all_steps):
            opens: List[int] = []
            pushes: List[int] = []
            pulls: List[int] = []
            for idx in edge_indices:
                if idx < push_count:
                    sender = int(push_parents[idx])
                    receiver = int(push_children[idx])
                    is_pull = False
                else:
                    sender = int(tree.pull_parents[idx - push_count])
                    receiver = int(tree.pull_children[idx - push_count])
                    is_pull = True
                if alive is not None and not alive[sender]:
                    continue
                if is_pull:
                    # The formerly uninformed node re-opens the stored channel
                    # and the informed neighbour answers with a pull.
                    if alive is not None and not alive[receiver]:
                        continue
                    opens.append(receiver)
                    pulls.append(sender)
                    knowledge.union_from_node(receiver, sender)
                else:
                    opens.append(sender)
                    pushes.append(sender)
                    if alive is not None and not alive[receiver]:
                        continue
                    knowledge.union_from_node(receiver, sender)
            if opens:
                ledger.record_opens(np.asarray(opens, dtype=np.int64))
            if pushes:
                ledger.record_pushes(np.asarray(pushes, dtype=np.int64))
            if pulls:
                ledger.record_pulls(np.asarray(pulls, dtype=np.int64))
            ledger.end_round()

    # ------------------------------------------------------------------ #
    # Robustness bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lost_messages(
        knowledge: KnowledgeMatrix, leader: int, alive_nodes: np.ndarray
    ) -> np.ndarray:
        """Healthy nodes whose original message is missing at the leader."""
        missing = knowledge.missing_messages_at(leader)
        if missing.size == 0:
            return missing
        return np.intersect1d(missing, alive_nodes, assume_unique=False)
