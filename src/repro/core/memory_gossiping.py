"""Algorithm 2 — gossiping in the memory model (constant-size node memory).

Every node may remember the addresses of the last few (four) neighbours it
contacted, may *avoid* them when opening a new random channel (``open-avoid``)
and may re-contact them deliberately.  With this small extension of the random
phone call model the paper obtains a gossiping algorithm with ``O(log n)``
running time and only ``O(n)`` message transmissions (``O(n log log n)`` if a
leader first has to be elected):

Phase I — *tree construction*: the leader disseminates its message by having
every newly informed node contact four distinct random neighbours (one per
step of a *long-step*), each node storing whom it contacted and when.  A few
pull long-steps let the remaining uninformed nodes fetch the message and
record from whom they got it.  The recorded contacts form a communication
tree rooted at the leader.

Phase II — *gathering*: the recorded edges are replayed in reverse
chronological order, so every node forwards all original messages it has
accumulated towards the leader; afterwards the leader knows every message.

Phase III — *broadcast*: the leader's complete message set is sent back down
the same tree in forward chronological order.

The robustness experiments of the paper build several independent trees in
Phase I, crash ``F`` random nodes right before Phase II and count how many
healthy nodes' original messages are missing at the root afterwards; the
:class:`MemoryGossiping` protocol exposes exactly these quantities in its
result extras.

Implementation notes (the batched kernels)
------------------------------------------
All three phases are fully batched — there is no per-node Python loop on
the hot path.  Phase I processes the whole frontier per push long-step and
every still-uninformed caller per pull step through the batched
``open-avoid`` samplers (:mod:`repro.core.node_memory`,
:meth:`repro.graphs.adjacency.Adjacency.sample_neighbors_avoiding_many`).
The Phase II/III replays apply each recorded per-step edge group as one
scatter-OR batch against start-of-round state, and :class:`_ReplayBatcher`
merges consecutive groups whose senders do not collide with pending
receivers into single batches (bit-identical; see
``docs/architecture.md``).  The replays run word-sparsely on
:class:`~repro.engine.knowledge.FrontierKnowledge` while rows are thin.
``tests/core/test_batched_equivalence.py`` pins Phases I–III and the
leader election bit-identically to per-node reference loops sharing the
documented RNG stream discipline;
``tests/engine/test_frontier_knowledge.py`` pins the batcher and the
frontier path.

Every scatter-OR batch dispatches through the active kernel backend
(:mod:`repro.engine.backends`): the protocol is backend-agnostic and its
trajectories are bit-identical across the ``numpy``, ``c`` and
``c-threads`` backends at every thread count (``REPRO_KERNEL_BACKEND`` /
``REPRO_KERNEL_THREADS``; see ``docs/parallelism.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.knowledge import KnowledgeMatrix, adaptive_knowledge
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng, spawn_rngs
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .completion import gossip_complete
from .leader_election import LeaderElection, LeaderElectionResult
from .node_memory import NodeMemory, open_avoid_fanout, open_avoid_one
from .parameters import (
    LeaderElectionParameters,
    MemoryGossipingParameters,
    MemoryGossipingSchedule,
    tuned_memory_gossiping,
)
from .protocol import GossipProtocol
from .results import GossipResult

__all__ = ["CommunicationTree", "MemoryGossiping"]


def _group_by_step(steps: np.ndarray, descending: bool) -> List[np.ndarray]:
    """Group edge indices by their step value, ordered by step.

    One stable argsort plus a boundary split replaces the former
    ``O(edges * unique_steps)`` repeated ``flatnonzero`` scans; within each
    group the indices stay in ascending order (stable sort), matching the
    replay order of the per-step scan.
    """
    steps = np.asarray(steps, dtype=np.int64)
    if steps.size == 0:
        return []
    order = np.argsort(steps, kind="stable")
    sorted_steps = steps[order]
    boundaries = np.flatnonzero(sorted_steps[1:] != sorted_steps[:-1]) + 1
    groups = np.split(order, boundaries)
    if descending:
        groups.reverse()
    return groups


def _steps_descending(steps: np.ndarray) -> List[np.ndarray]:
    """Edge index groups from the latest recorded step to the earliest."""
    return _group_by_step(steps, descending=True)


def _steps_ascending(steps: np.ndarray) -> List[np.ndarray]:
    """Edge index groups from the earliest recorded step to the latest."""
    return _group_by_step(steps, descending=False)


@dataclass
class CommunicationTree:
    """The contact structure recorded during Phase I for one tree.

    Attributes
    ----------
    root:
        The leader at which the tree is rooted.
    push_parents / push_children / push_steps:
        One entry per push contact: the active node, the neighbour it
        contacted, and the global Phase I step at which the contact happened.
    pull_children / pull_parents / pull_steps:
        One entry per first-time pull receipt: the previously uninformed node,
        the informed neighbour it pulled the message from, and the step.
    informed_step:
        Step at which each node first received the leader's message
        (-1 = never; the root has step 0).
    """

    root: int
    push_parents: np.ndarray
    push_children: np.ndarray
    push_steps: np.ndarray
    pull_children: np.ndarray
    pull_parents: np.ndarray
    pull_steps: np.ndarray
    informed_step: np.ndarray

    @property
    def num_informed(self) -> int:
        """Number of nodes that received the leader's message."""
        return int((self.informed_step >= 0).sum())

    @property
    def num_push_edges(self) -> int:
        """Number of recorded push contacts."""
        return int(self.push_parents.size)

    @property
    def num_pull_edges(self) -> int:
        """Number of recorded pull attachments."""
        return int(self.pull_children.size)

    def covers_all(self) -> bool:
        """Whether every node received the leader's message."""
        return bool(np.all(self.informed_step >= 0))

    def first_contact_push_indices(self) -> np.ndarray:
        """Indices of the push contacts that *first informed* their child.

        Restricting Phase II to these edges turns the recorded contact
        structure into a strict tree (one upward path per node); the
        redundancy ablation compares this against replaying all contacts.
        """
        if self.push_children.size == 0:
            return np.zeros(0, dtype=np.int64)
        informing = self.informed_step[self.push_children] == self.push_steps + 1
        candidates = np.flatnonzero(informing)
        if candidates.size == 0:
            return candidates
        # Several parents may have contacted the same child in the same step;
        # keep only the first recorded contact per child.
        _, first = np.unique(self.push_children[candidates], return_index=True)
        return np.sort(candidates[first])

    def depth_estimate(self) -> int:
        """Largest recorded informing step (a proxy for the tree depth)."""
        informed = self.informed_step[self.informed_step >= 0]
        return int(informed.max()) if informed.size else 0


def _concat(chunks: List[np.ndarray]) -> np.ndarray:
    """Concatenate accumulated edge chunks (empty-safe)."""
    if not chunks:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(chunks)


class _ReplayBatcher:
    """Merges replay step groups into single scatter-OR batches.

    The Phase II/III replays apply one small edge group per recorded Phase I
    step, so at large ``n`` they are bound by per-group row gathers.  Two
    consecutive groups can be applied as *one* snapshot-gather + scatter-OR
    batch whenever the later group's senders are disjoint from every pending
    receiver: no merged sender row is then touched by the pending writes, so
    reading all rows up front is bit-identical to replaying the groups in
    sequence.  (Duplicate receivers are already order-independent — every
    transmission of a batch ORs snapshot values.)

    Groups whose senders *do* collide with pending receivers are merged as
    well, through **transitive compensation**: if ``s -> r`` arrives while
    edges ``x -> s`` are pending, the sequential replay would have ``s``
    forward ``s_snapshot | x_snapshot``, so queueing the extra edges
    ``x -> r`` next to ``s -> r`` reproduces exactly that value from the
    common snapshot.  Compensation edges are recorded as pending edges into
    ``r`` themselves, so chained collisions (``q -> p``, ``p -> s``,
    ``s -> r``) compensate transitively.  A budget caps the edge inflation:
    when the compensation fan-out for a group would exceed
    ``max(64, 2 * group_size)`` the batcher flushes instead (the merge is an
    optimisation, never a semantic requirement).

    When a saturation filter is attached (``complete``/``complete_row``, no
    failures only — the subset invariant must hold), :meth:`flush`
    additionally drops edges into already-complete receivers and promotes
    receivers fed by a complete sender to a direct row assignment, exactly
    mirroring the filtered exchange kernels.  This collapses the Phase III
    cascade — where most senders are complete — from edge-proportional OR
    traffic to one row assignment per node.

    Only the knowledge update is batched.  Ledger accounting — opens, packet
    counters and ``end_round`` — stays with the caller per step group, so
    round counts and per-node costs are unchanged.
    """

    __slots__ = (
        "_knowledge",
        "_receiver_hit",
        "_senders",
        "_receivers",
        "_complete",
        "_mask",
    )

    def __init__(
        self,
        knowledge: KnowledgeMatrix,
        *,
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
    ) -> None:
        self._knowledge = knowledge
        self._receiver_hit = np.zeros(knowledge.n_nodes, dtype=bool)
        self._senders: List[np.ndarray] = []
        self._receivers: List[np.ndarray] = []
        self._complete = complete
        self._mask = complete_row

    def add(self, senders: np.ndarray, receivers: np.ndarray) -> None:
        """Queue one step group, compensating or flushing on collisions."""
        if senders.size == 0:
            return
        if self._senders and self._receiver_hit[senders].any():
            if not self._add_compensated(senders, receivers):
                self.flush()
        self._senders.append(senders)
        self._receivers.append(receivers)
        self._receiver_hit[receivers] = True

    def _add_compensated(self, senders: np.ndarray, receivers: np.ndarray) -> bool:
        """Queue compensation edges for colliding senders; False = over budget.

        For every new edge ``s -> r`` whose sender has pending incoming edges
        ``x -> s``, queue ``x -> r``: the receiver then ORs the same snapshot
        rows the sequential replay would have forwarded through ``s``.
        """
        pending_s = _concat(self._senders)
        pending_r = _concat(self._receivers)
        order = np.argsort(pending_r, kind="stable")
        pending_r_sorted = pending_r[order]
        lo = np.searchsorted(pending_r_sorted, senders, side="left")
        hi = np.searchsorted(pending_r_sorted, senders, side="right")
        counts = hi - lo
        comp_total = int(counts.sum())
        if comp_total > max(64, 2 * senders.size):
            return False
        # Rank trick: for new-edge i with counts[i] pending predecessors,
        # enumerate pending slots lo[i] .. hi[i]-1 without a Python loop.
        starts = np.cumsum(counts) - counts
        take = (
            np.repeat(lo, counts)
            + np.arange(comp_total, dtype=np.int64)
            - np.repeat(starts, counts)
        )
        comp_senders = pending_s[order[take]]
        comp_receivers = np.repeat(receivers, counts)
        self._senders.append(comp_senders)
        self._receivers.append(comp_receivers)
        self._receiver_hit[comp_receivers] = True
        return True

    def flush(self) -> None:
        """Apply all pending groups as one transmission batch."""
        if not self._senders:
            return
        senders = _concat(self._senders)
        receivers = _concat(self._receivers)
        self._senders.clear()
        self._receivers.clear()
        self._receiver_hit[receivers] = False
        if self._complete is None:
            self._knowledge.apply_transmissions(senders, receivers)
            return
        # Saturation-filtered flush (no-failure runs only: every row is a
        # subset of ``complete_row``, so an OR from a complete sender is an
        # assignment and an OR into a complete receiver is a no-op).
        total = int(senders.size)
        live = ~self._complete[receivers]
        senders, receivers = senders[live], receivers[live]
        from_complete = self._complete[senders]
        promoted = np.unique(receivers[from_complete])
        rest_s = senders[~from_complete]
        rest_r = receivers[~from_complete]
        if promoted.size and rest_r.size:
            # OR contributions into promoted rows are subsets of the mask the
            # assignment below writes — dropping them is bit-exact.
            keep = ~np.isin(rest_r, promoted)
            rest_s, rest_r = rest_s[keep], rest_r[keep]
        if rest_s.size:
            self._knowledge.apply_transmissions(rest_s, rest_r)
        if promoted.size:
            self._knowledge.assign_rows(promoted, self._mask)
            self._complete[promoted] = True
        self._knowledge._note_filter(total, int(rest_s.size), int(promoted.size))


class MemoryGossiping(GossipProtocol):
    """Algorithm 2 of the paper: memory-model gossiping with a leader.

    Parameters
    ----------
    params:
        Phase-length constants; defaults to the Table 1 tuned constants.
    leader:
        Fixed leader node.  ``None`` picks a uniformly random node (the
        paper's default assumption) unless ``elect_leader`` is set.
    elect_leader:
        When true, run Algorithm 3 first and use the elected node; its
        communication cost is merged into the result ledger.
    election_params:
        Constants for the optional leader election.
    gather_only:
        Stop after Phase II.  Used by the robustness experiments, which only
        need the gathered set at the root.
    """

    name = "memory"

    def __init__(
        self,
        params: Optional[MemoryGossipingParameters] = None,
        *,
        leader: Optional[int] = None,
        elect_leader: bool = False,
        election_params: Optional[LeaderElectionParameters] = None,
        gather_only: bool = False,
    ) -> None:
        self.params = params or tuned_memory_gossiping()
        self.leader = leader
        self.elect_leader = elect_leader
        self.election_params = election_params or LeaderElectionParameters()
        self.gather_only = gather_only

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
    ) -> GossipResult:
        generator = self._prepare(graph, rng)
        if not failures.is_empty() and failures.inject_at not in ("start", "before_gather"):
            raise ValueError(
                "MemoryGossiping supports failures injected at 'start' or 'before_gather'"
            )
        schedule = self.params.resolve(graph.n)
        n = graph.n

        ledger = TransmissionLedger(n)
        trace = SpreadingTrace(enabled=record_trace)
        # Frontier (sparsity-aware) knowledge: Phase I rows hold only the
        # leader's message, so the Phase II gather replays word-sparsely and
        # rows ratchet dense as the broadcast cascades the full set back down.
        knowledge = adaptive_knowledge(n)

        # Failure masks.  Failures at 'start' apply to every phase; failures
        # at 'before_gather' (the paper's robustness setting) only constrain
        # Phases II and III.
        alive_full = failures.alive_mask(n)
        alive_phase1 = alive_full if failures.applies_at("start") else None
        alive_later = None if failures.is_empty() else alive_full
        alive_nodes = np.flatnonzero(alive_full)

        # Leader selection.
        election_result: Optional[LeaderElectionResult] = None
        if self.leader is not None:
            leader = int(self.leader)
            if not 0 <= leader < n:
                raise ValueError(f"leader {leader} out of range [0, {n})")
        elif self.elect_leader:
            election = LeaderElection(self.election_params)
            election_result = election.run(graph, rng=generator, failures=NO_FAILURES)
            leader = election_result.leader
            ledger = ledger.merge(election_result.ledger)
        else:
            leader = int(generator.integers(n))
        if not alive_full[leader]:
            # The paper treats the leader as healthy (it fails only with
            # probability n^{-Omega(1)}); mirror that by protecting it.
            raise ValueError("the leader must not be part of the failure plan")

        memory = NodeMemory(n, schedule.fanout)

        # -------------------------- Phase I ---------------------------- #
        ledger.begin_phase("phase1-tree-construction")
        tree_rngs = spawn_rngs(generator, schedule.num_trees)
        trees: List[CommunicationTree] = []
        for tree_rng in tree_rngs:
            tree = self._build_tree(
                graph,
                knowledge,
                ledger,
                tree_rng,
                schedule,
                leader,
                memory,
                alive=alive_phase1,
            )
            trees.append(tree)
        trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase1-tree-construction", knowledge)
        ledger.end_phase()

        # -------------------------- Phase II --------------------------- #
        ledger.begin_phase("phase2-gather")
        for tree in trees:
            self._gather(
                tree,
                knowledge,
                ledger,
                alive=alive_later,
                contacts=schedule.gather_contacts,
            )
        trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase2-gather", knowledge)
        ledger.end_phase()

        lost = self._lost_messages(knowledge, leader, alive_nodes)

        # -------------------------- Phase III -------------------------- #
        completed = False
        if not self.gather_only:
            ledger.begin_phase("phase3-broadcast")
            # Saturation filter for the broadcast cascade (no-failure runs
            # only: the subset invariant rows ⊆ mask is needed for the
            # promotion shortcut).  The upfront scan replaces the full
            # ``gossip_complete`` rescan this phase used to end with.
            complete_row: Optional[np.ndarray] = None
            complete: Optional[np.ndarray] = None
            if alive_later is None:
                complete_row = knowledge.full_row_mask()
                complete = (
                    knowledge.count_missing(
                        complete_row, np.arange(n, dtype=np.int64)
                    )
                    == 0
                )
            for tree in trees:
                self._replay_broadcast(
                    tree,
                    knowledge,
                    ledger,
                    alive=alive_later,
                    contacts=schedule.gather_contacts,
                    complete=complete,
                    complete_row=complete_row,
                )
            trace.record(ledger.rounds - 1 if ledger.rounds else 0, "phase3-broadcast", knowledge)
            ledger.end_phase()
            if complete is not None:
                # ``complete`` only ever marks truly saturated rows, so a
                # residual check over the unmarked rows is the full predicate.
                remaining = np.flatnonzero(~complete)
                completed = remaining.size == 0 or not knowledge.count_missing(
                    complete_row, remaining
                ).any()
            else:
                completed = gossip_complete(knowledge, alive_nodes)

        extras: Dict[str, object] = {
            "leader": leader,
            "num_trees": len(trees),
            "trees": trees,
            "lost_messages": int(lost.size),
            "lost_message_ids": lost,
            "tree_coverage": [tree.num_informed for tree in trees],
            "schedule": schedule.as_dict(),
        }
        if election_result is not None:
            extras["election_unique"] = election_result.unique
            extras["election_candidates"] = int(election_result.candidates.size)

        return GossipResult(
            protocol=self.name,
            n_nodes=n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=knowledge,
            trace=trace if record_trace else None,
            extras=extras,
        )

    # ------------------------------------------------------------------ #
    # Phase I — tree construction
    # ------------------------------------------------------------------ #
    def _build_tree(
        self,
        graph: Adjacency,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        rng: np.random.Generator,
        schedule: MemoryGossipingSchedule,
        leader: int,
        memory: NodeMemory,
        *,
        alive: Optional[np.ndarray],
    ) -> CommunicationTree:
        """Phase I with the whole frontier processed per long-step.

        Push long-steps sample all frontier nodes' ``fanout`` distinct
        contacts in one batched ``open-avoid`` call; pull long-steps sample
        one contact for every still-uninformed node per step.  Only nodes
        that actually opened a channel are charged opens/packets, and a
        crashed callee's contact is recorded exactly once (the packet is
        sent but dropped, so the caller's record and cost are identical to
        the healthy case — only the informing is suppressed).

        The pull budget terminates as soon as every (alive) node holds the
        leader's message: trailing no-op rounds are not executed and not
        counted (the per-node version kept burning ``fanout`` empty rounds
        per remaining long-step when ``run_pull_until_complete`` was set).
        """
        n = graph.n
        fanout = schedule.fanout
        informed_step = np.full(n, -1, dtype=np.int64)
        informed_step[leader] = 0

        push_parents: List[np.ndarray] = []
        push_children: List[np.ndarray] = []
        push_steps: List[np.ndarray] = []
        pull_children: List[np.ndarray] = []
        pull_parents: List[np.ndarray] = []
        pull_steps: List[np.ndarray] = []

        step = 0
        frontier = np.asarray([leader], dtype=np.int64)
        substep_offsets = np.arange(fanout, dtype=np.int64)
        no_step = np.iinfo(np.int64).max

        # ----------------------- push long-steps ----------------------- #
        # Only alive nodes ever enter the frontier (crashed callees are
        # recorded but never informed), and the leader is checked upfront,
        # so no alive-filter is needed on the frontier itself.
        for _ in range(schedule.push_longsteps):
            targets = open_avoid_fanout(graph, frontier, memory, rng, fanout)
            contacted = (targets >= 0).ravel()
            parents = np.repeat(frontier, fanout)[contacted]
            children = targets.ravel()[contacted]
            contact_steps = (step + np.tile(substep_offsets, frontier.size))[contacted]
            if parents.size:
                push_parents.append(parents)
                push_children.append(children)
                push_steps.append(contact_steps)
                ledger.record_opens(parents)
                ledger.record_pushes(parents)
            # A child contacted several times this long-step is informed by
            # its earliest contact; crashed callees drop the packet.
            if alive is not None:
                delivered = alive[children]
                cand_children = children[delivered]
                cand_steps = contact_steps[delivered]
            else:
                cand_children, cand_steps = children, contact_steps
            first_contact = np.full(n, no_step, dtype=np.int64)
            np.minimum.at(first_contact, cand_children, cand_steps)
            fresh = np.flatnonzero((informed_step < 0) & (first_contact < no_step))
            informed_step[fresh] = first_contact[fresh] + 1
            knowledge.add_many(fresh, leader)
            step += fanout
            for _ in range(fanout):
                ledger.end_round()
            frontier = fresh
            if frontier.size == 0:
                break

        # ----------------------- pull long-steps ----------------------- #
        pull_rounds_budget = schedule.pull_longsteps
        if schedule.run_pull_until_complete:
            pull_rounds_budget += schedule.max_extra_longsteps
        executed = 0
        covered = False
        while executed < pull_rounds_budget and not covered:
            for _ in range(fanout):
                callers = np.flatnonzero(informed_step < 0)
                if alive is not None and callers.size:
                    callers = callers[alive[callers]]
                if callers.size == 0:
                    covered = True
                    break
                # Synchronous semantics: only nodes informed *before* this
                # step can answer a pull in it.
                informed_before_step = informed_step >= 0
                targets = open_avoid_one(graph, callers, memory, rng)
                opened = targets >= 0
                openers = callers[opened]
                contacts = targets[opened]
                if openers.size:
                    ledger.record_opens(openers)
                answered = informed_before_step[contacts]
                if alive is not None:
                    answered &= alive[contacts]
                sources = contacts[answered]
                joined = openers[answered]
                if joined.size:
                    ledger.record_pulls(sources)
                    informed_step[joined] = step + 1
                    knowledge.add_many(joined, leader)
                    pull_children.append(joined)
                    pull_parents.append(sources)
                    pull_steps.append(np.full(joined.size, step, dtype=np.int64))
                ledger.end_round()
                step += 1
            executed += 1

        return CommunicationTree(
            root=leader,
            push_parents=_concat(push_parents),
            push_children=_concat(push_children),
            push_steps=_concat(push_steps),
            pull_children=_concat(pull_children),
            pull_parents=_concat(pull_parents),
            pull_steps=_concat(pull_steps),
            informed_step=informed_step,
        )

    # ------------------------------------------------------------------ #
    # Phase II — gather along the reversed tree
    # ------------------------------------------------------------------ #
    @staticmethod
    def _selected_push_edges(
        tree: CommunicationTree, contacts: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Push contacts used by the gather/broadcast replay.

        ``"all"`` uses every recorded contact (the literal Algorithm 2);
        ``"first"`` restricts to the contact that first informed each node.
        """
        if contacts == "first":
            idx = tree.first_contact_push_indices()
            return tree.push_parents[idx], tree.push_children[idx], tree.push_steps[idx]
        return tree.push_parents, tree.push_children, tree.push_steps

    def _gather(
        self,
        tree: CommunicationTree,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray],
        contacts: str = "all",
    ) -> None:
        """Replay the recorded contacts in reverse order, one round per step.

        Edges recorded in the same Phase I step form one group whose
        transmissions all read the same start-of-round state — the
        synchronous-model snapshot discipline used by every other kernel.
        Correctness only relies on cross-group ordering (a node's informing
        contact lies in a strictly earlier Phase I step than its outgoing
        contacts), so consecutive groups whose senders are disjoint from the
        pending receivers are merged by :class:`_ReplayBatcher` into single
        scatter-OR batches (bit-identical; round accounting unchanged).
        """
        push_parents, push_children, push_steps = self._selected_push_edges(tree, contacts)
        batcher = _ReplayBatcher(knowledge)
        # First the pull-phase attachments, children first (reverse step
        # order): each node pushes everything it has to the node it pulled
        # the leader's message from.  Edges recorded in the same Phase I step
        # are replayed within the same round.
        for edge_indices in _steps_descending(tree.pull_steps):
            children = tree.pull_children[edge_indices]
            parents = tree.pull_parents[edge_indices]
            if alive is not None:
                sending = alive[children]  # crashed child: no communication
                children = children[sending]
                parents = parents[sending]
            if children.size:
                ledger.record_opens(children)
                ledger.record_pushes(children)
                if alive is not None:
                    delivered = alive[parents]  # crashed recipient drops it
                    batcher.add(children[delivered], parents[delivered])
                else:
                    batcher.add(children, parents)
            ledger.end_round()
        batcher.flush()
        # Then the push-phase contacts in reverse chronological order: the
        # parent re-opens the stored channel and the child answers with a pull
        # carrying all original messages it has accumulated so far.
        for edge_indices in _steps_descending(push_steps):
            parents = push_parents[edge_indices]
            children = push_children[edge_indices]
            if alive is not None:
                opening = alive[parents]
                parents = parents[opening]
                children = children[opening]
            if parents.size:
                ledger.record_opens(parents)
            if alive is not None:
                answering = alive[children]
                parents, children = parents[answering], children[answering]
            if children.size:
                ledger.record_pulls(children)
                batcher.add(children, parents)
            ledger.end_round()
        batcher.flush()

    # ------------------------------------------------------------------ #
    # Phase III — broadcast back down the tree
    # ------------------------------------------------------------------ #
    def _replay_broadcast(
        self,
        tree: CommunicationTree,
        knowledge: KnowledgeMatrix,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray],
        contacts: str = "all",
        complete: Optional[np.ndarray] = None,
        complete_row: Optional[np.ndarray] = None,
    ) -> None:
        # Forward chronological replay: every recorded contact forwards the
        # sender's current combined message.  Because a node's own informing
        # contact happened strictly before its outgoing contacts, the leader's
        # complete set cascades down the tree in a single pass.  As in
        # :meth:`_gather`, each per-step group reads start-of-round state, and
        # groups are merged into single scatter-OR batches by
        # :class:`_ReplayBatcher` (colliding senders handled by transitive
        # compensation).  ``complete``/``complete_row`` additionally turn the
        # cascade's dominant complete-sender transmissions into one row
        # assignment per receiver (no-failure runs only).
        push_parents, push_children, push_steps = self._selected_push_edges(tree, contacts)
        batcher = _ReplayBatcher(knowledge, complete=complete, complete_row=complete_row)
        all_steps = np.concatenate([push_steps, tree.pull_steps])
        push_count = push_steps.size
        for edge_indices in _steps_ascending(all_steps):
            from_push = edge_indices < push_count
            p_idx = edge_indices[from_push]
            l_idx = edge_indices[~from_push] - push_count
            p_senders = push_parents[p_idx]
            p_receivers = push_children[p_idx]
            # The formerly uninformed node re-opens the stored channel and
            # the informed neighbour answers with a pull.
            l_senders = tree.pull_parents[l_idx]
            l_receivers = tree.pull_children[l_idx]
            if alive is not None:
                p_opening = alive[p_senders]
                p_senders = p_senders[p_opening]
                p_receivers = p_receivers[p_opening]
                l_live = alive[l_senders] & alive[l_receivers]
                l_senders = l_senders[l_live]
                l_receivers = l_receivers[l_live]
            if p_senders.size or l_receivers.size:
                ledger.record_opens(np.concatenate([p_senders, l_receivers]))
            if p_senders.size:
                ledger.record_pushes(p_senders)
            if l_senders.size:
                ledger.record_pulls(l_senders)
            if alive is not None:
                p_delivered = alive[p_receivers]
                p_senders = p_senders[p_delivered]
                p_receivers = p_receivers[p_delivered]
            batcher.add(
                np.concatenate([p_senders, l_senders]),
                np.concatenate([p_receivers, l_receivers]),
            )
            ledger.end_round()
        batcher.flush()

    # ------------------------------------------------------------------ #
    # Robustness bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lost_messages(
        knowledge: KnowledgeMatrix, leader: int, alive_nodes: np.ndarray
    ) -> np.ndarray:
        """Healthy nodes whose original message is missing at the leader."""
        missing = knowledge.missing_messages_at(leader)
        if missing.size == 0:
            return missing
        return np.intersect1d(missing, alive_nodes, assume_unique=False)
