"""Result records returned by gossiping protocol runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..engine.knowledge import KnowledgeMatrix
from ..engine.metrics import MessageAccounting, TransmissionLedger
from ..engine.trace import SpreadingTrace

__all__ = ["GossipResult"]


@dataclass
class GossipResult:
    """Outcome of a single protocol execution.

    Attributes
    ----------
    protocol:
        Name of the protocol that produced the result.
    n_nodes:
        Network size.
    completed:
        Whether every (alive) target node knows every message at the end.
    rounds:
        Number of synchronous steps executed.
    ledger:
        Per-node communication cost accounting.
    knowledge:
        Final knowledge state (may be ``None`` when the caller asked the
        protocol to discard it to save memory).
    trace:
        Optional per-round progress trace.
    extras:
        Protocol-specific extra outputs (e.g. the leader identifier, the
        communication trees of the memory model, lost-message statistics under
        failures).
    """

    protocol: str
    n_nodes: int
    completed: bool
    rounds: int
    ledger: TransmissionLedger
    knowledge: Optional[KnowledgeMatrix] = None
    trace: Optional[SpreadingTrace] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors used by experiments
    # ------------------------------------------------------------------ #
    def messages_per_node(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> float:
        """Average communication cost per node under the chosen accounting."""
        return self.ledger.average_per_node(accounting)

    def total_messages(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> int:
        """Total communication cost under the chosen accounting."""
        return self.ledger.total(accounting)

    def max_messages_per_node(
        self, accounting: MessageAccounting = MessageAccounting.PACKETS
    ) -> int:
        """Maximum per-node communication cost."""
        return self.ledger.max_per_node(accounting)

    def coverage(self) -> float:
        """Final fraction of known (node, message) pairs (1.0 when complete)."""
        if self.knowledge is None:
            return 1.0 if self.completed else float("nan")
        return self.knowledge.coverage()

    def summary(self) -> Dict[str, Any]:
        """Serializable summary used by the experiment harness."""
        data: Dict[str, Any] = {
            "protocol": self.protocol,
            "n_nodes": self.n_nodes,
            "completed": self.completed,
            "rounds": self.rounds,
            "messages_per_node": self.messages_per_node(),
            "opens_per_node": self.messages_per_node(MessageAccounting.OPENS),
            "strict_cost_per_node": self.messages_per_node(
                MessageAccounting.OPENS_AND_PACKETS
            ),
            "ledger": self.ledger.summary(),
        }
        for key, value in self.extras.items():
            if isinstance(value, (int, float, str, bool)) or value is None:
                data[f"extra_{key}"] = value
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GossipResult(protocol={self.protocol!r}, n={self.n_nodes}, "
            f"completed={self.completed}, rounds={self.rounds}, "
            f"messages_per_node={self.messages_per_node():.2f})"
        )
