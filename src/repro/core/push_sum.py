"""Push-sum averaging (Kempe–Dobra–Gehrke) under both execution clocks.

The aggregation workload the asynchronous engine exists for: every node ``i``
holds a pair ``(s_i, w_i)`` initialised to ``(x_i, 1)`` and estimates the
network average as ``s_i / w_i``.  Whenever a node acts it keeps half of its
pair and sends the other half to a uniformly random neighbour; the receiver
adds the halves component-wise.  Two exact invariants make the protocol a
sharp correctness probe:

* **Mass conservation** — ``sum(s)`` and ``sum(w)`` never change (up to
  float rounding, since every update only moves halves around).
* **Monotone spread** — every update replaces ratios by convex combinations
  of existing ratios, so ``max(s/w) - min(s/w)`` never increases (again up
  to rounding); per-step *variance* is **not** monotone, which is why the
  convergence tests pin the spread and only require overall variance decay.

Under the synchronous clock all nodes act each round (the classic protocol);
under the event clock (:mod:`repro.engine.event_clock`) one node acts per
wakeup.  Event groups batch only non-colliding events, and within a group
every target receives exactly one contribution, so the vectorised group
update performs the *same floating-point additions in the same order* as
sequential application — event-clock push-sum is bit-identical to a
one-event-at-a-time reference, which ``tests/core/test_push_sum.py`` pins.

The run returns a regular :class:`~repro.core.results.GossipResult` (with
``knowledge=None``): ``completed`` means the spread converged below the
tolerance, ``rounds`` counts synchronous rounds or non-empty event groups,
and ``extras["series"]`` carries the per-round/per-group convergence metrics
(time, mass error, spread, variance) the push-sum scenario aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine.event_clock import EventScheduler
from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState
from ..graphs.adjacency import Adjacency
from .parameters import log2
from .protocol import GossipProtocol
from .results import GossipResult

__all__ = ["PushSumParameters", "PushSumGossip", "INITIAL_VALUES"]

#: Supported initial-value presets: ``linear`` spreads ``i / (n - 1)`` over
#: the nodes (deterministic, true mean 1/2); ``uniform`` draws i.i.d.
#: ``U[0, 1)`` values from the run's generator *before* any event randomness.
INITIAL_VALUES = ("linear", "uniform")


@dataclass(frozen=True)
class PushSumParameters:
    """Tunables of the push-sum averaging protocol.

    Attributes
    ----------
    tolerance:
        Convergence threshold on the estimate spread ``max(s/w) - min(s/w)``
        (absolute; both value presets live in ``[0, 1]``).
    max_rounds_factor:
        Safety limit: at most ``ceil(max_rounds_factor * log n)`` synchronous
        rounds, or that many times ``n`` wakeups under the event clock.  The
        default is generous because reaching a ``1e-8`` spread needs
        ``O(log n + log(1/tol))`` rounds.
    clock:
        Default execution clock (``"sync"`` or ``"event"``).
    values:
        Initial-value preset, one of :data:`INITIAL_VALUES`.
    """

    tolerance: float = 1e-8
    max_rounds_factor: float = 24.0
    clock: str = "sync"
    values: str = "linear"

    def max_rounds(self, n: int) -> int:
        """Maximum number of synchronous rounds for network size ``n``."""
        return max(8, math.ceil(self.max_rounds_factor * log2(n)))

    def max_events(self, n: int) -> int:
        """Event-clock wakeup budget: ``max_rounds(n)`` rounds' worth."""
        return self.max_rounds(n) * max(1, n)


class PushSumGossip(GossipProtocol):
    """Gossip-based distributed averaging via push-sum."""

    name = "push-sum"
    supported_clocks = ("sync", "event")

    def __init__(self, params: Optional[PushSumParameters] = None) -> None:
        self.params = params or PushSumParameters()
        if self.params.values not in INITIAL_VALUES:
            raise ValueError(
                f"unknown values preset {self.params.values!r} "
                f"(expected one of {INITIAL_VALUES})"
            )

    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
        clock: Optional[str] = None,
    ) -> GossipResult:
        """Run push-sum until the estimate spread converges.

        ``record_trace`` is accepted for interface compatibility but ignored
        (there is no knowledge matrix to trace); failure plans are rejected
        because a crashed node would carry away mass.
        """
        clock = self._resolve_clock(clock if clock is not None else self.params.clock)
        generator = self._prepare(graph, rng)
        if not failures.is_empty():
            raise ValueError("PushSumGossip does not support failure plans")
        n = graph.n
        # Initial values are drawn before any event randomness so the event
        # stream at a given seed is identical for both presets' clocks.
        if self.params.values == "uniform":
            x = generator.random(n)
        else:
            x = np.arange(n, dtype=np.float64) / float(n - 1)
        s = x.copy()
        w = np.ones(n, dtype=np.float64)
        mass = float(x.sum())
        true_mean = mass / n
        series: Dict[str, List[float]] = {
            "time": [],
            "mass_error": [],
            "spread": [],
            "variance": [],
        }

        def observe(time: float) -> float:
            ratio = s / w
            spread = float(ratio.max() - ratio.min())
            series["time"].append(float(time))
            series["mass_error"].append(
                abs(float(s.sum()) - mass) / max(1.0, abs(mass))
            )
            series["spread"].append(spread)
            series["variance"].append(float(ratio.var()))
            return spread

        variance_initial = float(x.var())
        ledger = TransmissionLedger(n)
        ledger.begin_phase("push-sum")
        tolerance = float(self.params.tolerance)
        completed = False
        events = 0
        sim_time = 0.0

        if clock == "sync":
            all_nodes = np.arange(n, dtype=np.int64)
            for round_index in range(self.params.max_rounds(n)):
                targets = graph.sample_neighbors(all_nodes, generator)
                s_half = 0.5 * s
                w_half = 0.5 * w
                s = s_half + np.bincount(targets, weights=s_half, minlength=n)
                w = w_half + np.bincount(targets, weights=w_half, minlength=n)
                ledger.record_opens(all_nodes)
                ledger.record_pushes(all_nodes)
                ledger.end_round()
                events += n
                sim_time = float(round_index + 1)
                if observe(sim_time) <= tolerance:
                    completed = True
                    break
        else:
            scheduler = EventScheduler(
                graph, generator, max_events=self.params.max_events(n)
            )
            for group in scheduler.groups():
                if group.openers.size:
                    ledger.record_opens(group.openers)
                if not group.size:
                    continue
                callers, targets = group.callers, group.targets
                s_half = 0.5 * s[callers]
                w_half = 0.5 * w[callers]
                s[callers] = s_half
                w[callers] = w_half
                # Within a non-colliding group every target is distinct, so
                # this aligned add performs exactly the additions sequential
                # per-event application would — bit-identical floats.
                s[targets] += s_half
                w[targets] += w_half
                ledger.record_pushes(callers)
                ledger.end_round()
                if observe(group.end_time) <= tolerance:
                    completed = True
                    break
            events = scheduler.events
            sim_time = scheduler.time

        ledger.end_phase()
        ratio = s / w
        extras = {
            "clock": clock,
            "events": events,
            "sim_time": sim_time,
            "true_mean": true_mean,
            "mass_error": series["mass_error"][-1] if series["mass_error"] else 0.0,
            "spread": series["spread"][-1] if series["spread"] else 0.0,
            "variance_initial": variance_initial,
            "variance_final": series["variance"][-1] if series["variance"] else 0.0,
            "estimate_error": float(np.abs(ratio - true_mean).max()),
            "series": series,
        }
        return GossipResult(
            protocol=self.name,
            n_nodes=n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=None,
            trace=None,
            extras=extras,
        )
