"""The memory model's constant-size per-node memory, vectorized.

Algorithms 2 and 3 both extend the random phone call model with a small
per-node ring buffer ``l_v`` holding the last few contacted neighbours, used
by the ``open-avoid`` operation (open a channel to a random neighbour *not*
in ``l_v``).  This module holds the shared state container plus the two
batched open-avoid kernels built on
:meth:`repro.graphs.adjacency.Adjacency.sample_neighbors_avoiding_many`:

``open_avoid_one``
    One channel per caller, with the protocols' fallback semantics: a caller
    whose memory blocks every neighbour re-opens uniformly over all
    neighbours (used by the Phase I pull loop and the whole of Algorithm 3).

``open_avoid_fanout``
    ``count`` distinct channels per caller with no fallback (used by the
    Phase I push long-steps, where a caller simply contacts fewer
    neighbours when its memory blocks too many).

Both kernels record every successful contact in the ring buffer, exactly as
the per-node formulation stores each address right after opening the channel.

RNG stream discipline: each kernel first consumes ``rng.random((m, count))``
for the primary draw; ``open_avoid_one`` then consumes ``rng.random((f, 1))``
for the ``f`` fallback callers in ascending batch order.  The equivalence
tests replicate this discipline with per-node reference loops.
"""

from __future__ import annotations

import numpy as np

from ..graphs.adjacency import Adjacency

__all__ = ["NodeMemory", "open_avoid_one", "open_avoid_fanout"]


class NodeMemory:
    """The constant-size per-node memory (list ``l_v``) of the memory model.

    Parameters
    ----------
    n:
        Number of nodes.
    size:
        Ring-buffer capacity per node (4 in the paper).

    Notes
    -----
    ``slots`` is an ``(n, size)`` matrix with ``-1`` marking empty slots and
    ``pointer`` the per-node monotonically increasing write cursor; slot
    ``pointer % size`` is overwritten next, so the buffer always holds the
    most recent ``size`` stored addresses.
    """

    __slots__ = ("size", "slots", "pointer")

    def __init__(self, n: int, size: int) -> None:
        self.size = int(size)
        self.slots = np.full((n, size), -1, dtype=np.int64)
        self.pointer = np.zeros(n, dtype=np.int64)

    def remembered(self, node: int) -> np.ndarray:
        """Addresses currently stored by ``node``."""
        row = self.slots[node]
        return row[row >= 0]

    def store(self, node: int, address: int) -> None:
        """Store ``address`` in the next slot of ``node`` (ring buffer)."""
        self.slots[node, self.pointer[node] % self.size] = address
        self.pointer[node] += 1

    def avoid_rows(self, nodes: np.ndarray) -> np.ndarray:
        """``(m, size)`` avoid matrix for ``nodes`` (``-1`` = empty slot).

        The rows are a copy, so callers may store into the memory before
        consuming the returned matrix.
        """
        return self.slots[nodes]

    def store_many(self, nodes: np.ndarray, addresses: np.ndarray) -> None:
        """Store a batch of addresses, one ring-buffer write per valid entry.

        Parameters
        ----------
        nodes:
            Unique caller identifiers, shape ``(m,)``.
        addresses:
            ``(m,)`` or ``(m, k)`` addresses; entries ``< 0`` are skipped.
            For the matrix form, column ``j`` is stored before column
            ``j + 1``, matching a per-node loop over each caller's targets.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim == 1:
            addresses = addresses[:, None]
        for j in range(addresses.shape[1]):
            column = addresses[:, j]
            keep = column >= 0
            if not keep.any():
                continue
            which = nodes[keep]
            self.slots[which, self.pointer[which] % self.size] = column[keep]
            self.pointer[which] += 1


def open_avoid_one(
    graph: Adjacency,
    nodes: np.ndarray,
    memory: NodeMemory,
    rng: np.random.Generator,
) -> np.ndarray:
    """Batched single-channel ``open-avoid`` with uniform fallback.

    For every caller, sample one random neighbour avoiding the caller's
    memory; callers whose memory blocks every neighbour retry uniformly over
    all their neighbours.  Successful contacts are stored in ``memory``.
    Returns one target per caller, ``-1`` for callers with no neighbours at
    all (no channel is opened for those).

    ``nodes`` must be unique: each caller owns one ring-buffer write per
    step, and :meth:`NodeMemory.store_many` collapses repeated rows (in the
    synchronous model a node opens at most one avoid-channel per step).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    targets = graph.sample_neighbors_avoiding_many(
        nodes, rng, avoid=memory.avoid_rows(nodes), count=1
    )[:, 0]
    retry = (targets < 0) & (graph.degrees[nodes] > 0)
    if retry.any():
        targets[retry] = graph.sample_neighbors_avoiding_many(
            nodes[retry], rng, count=1
        )[:, 0]
    memory.store_many(nodes, targets)
    return targets


def open_avoid_fanout(
    graph: Adjacency,
    nodes: np.ndarray,
    memory: NodeMemory,
    rng: np.random.Generator,
    count: int,
) -> np.ndarray:
    """Batched multi-channel ``open-avoid`` (no fallback).

    Samples up to ``count`` distinct neighbours per caller avoiding the
    caller's memory and stores every successful contact.  Returns an
    ``(m, count)`` matrix with ``-1`` in the trailing columns of callers that
    ran out of eligible neighbours.  As with :func:`open_avoid_one`,
    ``nodes`` must be unique.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    targets = graph.sample_neighbors_avoiding_many(
        nodes, rng, avoid=memory.avoid_rows(nodes), count=count
    )
    memory.store_many(nodes, targets)
    return targets
