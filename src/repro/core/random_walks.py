"""Random-walk machinery used by Phase II of Algorithm 1 (fast-gossiping).

At the beginning of each Phase II round every node starts a random walk with a
small probability.  A walk is a packet carrying a set of original messages; on
arrival at a node it is merged with the node's combined message (both walk and
node learn each other's messages), appended to the node's FIFO queue, and the
node forwards one queued walk per step to a uniformly random neighbour.  Each
forward is a *move*; walks are refused from queues once they exceed a move cap
(``c_moves * log n``), which the paper uses to keep walks well mixed.

The :class:`WalkPool` below stores all walks of one round in flat NumPy arrays
(payload bitsets, move counters, hosting queue) and exposes the three
operations the protocol needs: delivery of in-transit walks, one forwarding
step, and the set of nodes that currently hold walks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..engine.knowledge import KnowledgeMatrix
from ..engine.metrics import TransmissionLedger
from ..graphs.adjacency import Adjacency

__all__ = ["WalkPool", "start_walks"]


class WalkPool:
    """All random walks of a single Phase II round.

    Parameters
    ----------
    payloads:
        ``(num_walks, words)`` packed bitset payloads, one row per walk.
    move_cap:
        Maximum number of moves after which a walk is no longer enqueued.
    """

    def __init__(self, payloads: np.ndarray, move_cap: int) -> None:
        self.payloads = np.asarray(payloads, dtype=np.uint64)
        if self.payloads.ndim != 2:
            raise ValueError("payloads must be a 2-D array of packed words")
        self.move_cap = int(move_cap)
        self.num_walks = int(self.payloads.shape[0])
        self.moves = np.zeros(self.num_walks, dtype=np.int64)
        #: FIFO queue of walk identifiers per node.
        self.queues: Dict[int, Deque[int]] = {}
        #: Walks currently travelling: list of (walk_id, destination).
        self.in_transit: List[Tuple[int, int]] = []
        #: Walks dropped because they exceeded the move cap.
        self.retired: List[int] = []
        #: Total number of walk moves performed (for diagnostics).
        self.total_moves = 0

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #
    def nodes_with_walks(self) -> np.ndarray:
        """Nodes whose queue currently holds at least one walk."""
        hosts = [node for node, queue in self.queues.items() if queue]
        return np.asarray(sorted(hosts), dtype=np.int64)

    def queued_walks(self) -> int:
        """Total number of queued walks."""
        return sum(len(q) for q in self.queues.values())

    def walks_in_transit(self) -> int:
        """Number of walks currently travelling to their next host."""
        return len(self.in_transit)

    def is_idle(self) -> bool:
        """True when no walk is queued or in transit."""
        return self.queued_walks() == 0 and not self.in_transit

    # ------------------------------------------------------------------ #
    # Protocol operations
    # ------------------------------------------------------------------ #
    def send(self, walk_id: int, destination: int) -> None:
        """Put a walk in transit towards ``destination``."""
        self.in_transit.append((int(walk_id), int(destination)))

    def deliver(self, knowledge: KnowledgeMatrix) -> None:
        """Deliver all in-transit walks to their destinations.

        For every delivered walk ``w`` arriving at node ``v`` (and still under
        the move cap): the walk payload and ``v``'s combined message are
        merged (``q_v.add(m' ∪ m_v)``; ``m_v ← m_v ∪ m'``) and the walk is
        appended to ``v``'s queue.  Walks over the cap are retired without
        touching the node's state, exactly as in the pseudocode, which skips
        them entirely.
        """
        arrivals = self.in_transit
        self.in_transit = []
        for walk_id, destination in arrivals:
            if self.moves[walk_id] > self.move_cap:
                self.retired.append(walk_id)
                continue
            node_row = knowledge.row(destination)
            self.payloads[walk_id] |= node_row
            knowledge.union_into(destination, self.payloads[walk_id])
            self.queues.setdefault(destination, deque()).append(walk_id)

    def forward_step(
        self,
        graph: Adjacency,
        rng: np.random.Generator,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray] = None,
    ) -> int:
        """Every node holding walks forwards the oldest one to a random neighbour.

        Returns the number of walks forwarded.  Each forward costs the hosting
        node one channel open and one push packet.
        """
        hosts = self.nodes_with_walks()
        if alive is not None and hosts.size:
            hosts = hosts[alive[hosts]]
        if hosts.size == 0:
            return 0
        destinations = graph.sample_neighbors(hosts, rng)
        forwarded = 0
        senders: List[int] = []
        for host, destination in zip(hosts.tolist(), destinations.tolist()):
            if destination < 0:
                continue
            if alive is not None and not alive[destination]:
                # The channel is opened but the failed callee never stores the
                # walk: the walk is lost (crash semantics).
                walk_id = self.queues[host].popleft()
                self.retired.append(walk_id)
                senders.append(host)
                forwarded += 1
                continue
            walk_id = self.queues[host].popleft()
            self.moves[walk_id] += 1
            self.total_moves += 1
            self.send(walk_id, destination)
            senders.append(host)
            forwarded += 1
        if senders:
            sender_arr = np.asarray(senders, dtype=np.int64)
            ledger.record_opens(sender_arr)
            ledger.record_pushes(sender_arr)
        return forwarded


def start_walks(
    graph: Adjacency,
    knowledge: KnowledgeMatrix,
    probability: float,
    move_cap: int,
    rng: np.random.Generator,
    ledger: TransmissionLedger,
    *,
    alive: Optional[np.ndarray] = None,
) -> WalkPool:
    """Start the round's random walks.

    Every (alive) node flips a coin and with ``probability`` starts a walk by
    pushing its combined message to a uniformly random neighbour.  The newly
    created walks are placed in transit in the returned :class:`WalkPool`;
    callers should invoke :meth:`WalkPool.deliver` at the beginning of the
    first forwarding step.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    nodes = np.arange(graph.n, dtype=np.int64)
    if alive is not None:
        nodes = nodes[alive[nodes]]
    coins = rng.random(nodes.size) < probability
    starters = nodes[coins]
    destinations = graph.sample_neighbors(starters, rng)
    ok = destinations >= 0
    if alive is not None and starters.size:
        ok &= np.where(destinations >= 0, alive[np.clip(destinations, 0, None)], False)
    # The channel open and push happen regardless of whether the callee is
    # healthy; only delivery depends on it.
    if starters.size:
        ledger.record_opens(starters)
        ledger.record_pushes(starters)
    starters_ok = starters[ok]
    destinations_ok = destinations[ok]
    payloads = knowledge.data[starters_ok].copy()
    pool = WalkPool(payloads, move_cap)
    for walk_id, destination in enumerate(destinations_ok.tolist()):
        pool.send(walk_id, destination)
    return pool
