"""Random-walk machinery used by Phase II of Algorithm 1 (fast-gossiping).

At the beginning of each Phase II round every node starts a random walk with a
small probability.  A walk is a packet carrying a set of original messages; on
arrival at a node it is merged with the node's combined message (both walk and
node learn each other's messages), appended to the node's FIFO queue, and the
node forwards one queued walk per step to a uniformly random neighbour.  Each
forward is a *move*; walks are refused from queues once they exceed a move cap
(``c_moves * log n``), which the paper uses to keep walks well mixed.

The :class:`WalkPool` below stores all walks of one round in flat NumPy arrays
(payload bitsets, move counters, per-walk host assignment and FIFO sequence
numbers) and exposes the three operations the protocol needs: delivery of
in-transit walks, one forwarding step, and the set of nodes that currently
hold walks.  All three are fully vectorised: deliveries are grouped by
destination with a stable sort and merged via ``np.bitwise_or.reduceat``, and
the oldest-walk-per-host selection of a forwarding step is a ``lexsort`` over
``(host, sequence)`` followed by a boundary pick — no per-walk Python loop
survives on the hot path.

Synchronous semantics: all walks delivered in the same step read the
destination node's *start-of-delivery* knowledge and the node accumulates the
union of every arriving payload (snapshot-read / live-write, the same
discipline as :meth:`~repro.engine.knowledge.KnowledgeMatrix.apply_transmissions`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from ..engine.knowledge import KnowledgeStorage
from ..engine.metrics import TransmissionLedger
from ..graphs.adjacency import Adjacency

__all__ = ["WalkPool", "start_walks"]

_EMPTY = np.zeros(0, dtype=np.int64)


class WalkPool:
    """All random walks of a single Phase II round.

    Parameters
    ----------
    payloads:
        ``(num_walks, words)`` packed bitset payloads, one row per walk.
    move_cap:
        Maximum number of moves after which a walk is no longer enqueued.
    """

    def __init__(self, payloads: np.ndarray, move_cap: int) -> None:
        self.payloads = np.ascontiguousarray(payloads, dtype=np.uint64)
        if self.payloads.ndim != 2:
            raise ValueError("payloads must be a 2-D array of packed words")
        self.move_cap = int(move_cap)
        self.num_walks = int(self.payloads.shape[0])
        self.moves = np.zeros(self.num_walks, dtype=np.int64)
        #: Hosting node per walk (-1 while in transit or retired).
        self._host = np.full(self.num_walks, -1, dtype=np.int64)
        #: FIFO position per walk: smaller = enqueued earlier.
        self._seq = np.zeros(self.num_walks, dtype=np.int64)
        self._next_seq = 0
        #: Maintained counter of queued walks (keeps ``queued_walks`` O(1)).
        self._queued = 0
        #: Number of forwarding steps performed (bounds every move counter).
        self._forward_steps = 0
        #: Walks currently travelling, as aligned (walk id, destination) arrays.
        self._transit_ids = _EMPTY
        self._transit_dests = _EMPTY
        #: Walks dropped because they exceeded the move cap.
        self.retired: List[int] = []
        #: Total number of walk moves performed (for diagnostics).
        self.total_moves = 0

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #
    def nodes_with_walks(self) -> np.ndarray:
        """Nodes whose queue currently holds at least one walk (sorted)."""
        hosts = self._host[self._host >= 0]
        return np.unique(hosts)

    def queued_walks(self) -> int:
        """Total number of queued walks (O(1): a maintained counter)."""
        return self._queued

    def walks_in_transit(self) -> int:
        """Number of walks currently travelling to their next host."""
        return int(self._transit_ids.size)

    def is_idle(self) -> bool:
        """True when no walk is queued or in transit."""
        return self._queued == 0 and self._transit_ids.size == 0

    @property
    def in_transit(self) -> List[tuple]:
        """In-transit walks as (walk id, destination) pairs (a copy)."""
        return list(zip(self._transit_ids.tolist(), self._transit_dests.tolist()))

    @property
    def queues(self) -> Dict[int, Deque[int]]:
        """Per-node FIFO queues, materialised from the flat arrays (a copy).

        Only intended for inspection and tests; the hot path works on the
        flat ``host``/``sequence`` arrays directly.
        """
        queued = np.flatnonzero(self._host >= 0)
        order = np.lexsort((self._seq[queued], self._host[queued]))
        result: Dict[int, Deque[int]] = {}
        for walk_id in queued[order].tolist():
            result.setdefault(int(self._host[walk_id]), deque()).append(walk_id)
        return result

    # ------------------------------------------------------------------ #
    # Protocol operations
    # ------------------------------------------------------------------ #
    def send(self, walk_id: int, destination: int) -> None:
        """Put a single walk in transit towards ``destination``."""
        self.send_many(
            np.asarray([walk_id], dtype=np.int64),
            np.asarray([destination], dtype=np.int64),
        )

    def send_many(self, walk_ids: np.ndarray, destinations: np.ndarray) -> None:
        """Put a batch of walks in transit (aligned id/destination arrays)."""
        walk_ids = np.asarray(walk_ids, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if walk_ids.size == 0:
            return
        self._transit_ids = np.concatenate([self._transit_ids, walk_ids])
        self._transit_dests = np.concatenate([self._transit_dests, destinations])

    def deliver(self, knowledge: KnowledgeStorage) -> None:
        """Deliver all in-transit walks to their destinations.

        For every delivered walk ``w`` arriving at node ``v`` (and still under
        the move cap): the walk payload and ``v``'s combined message are
        merged (``q_v.add(m' ∪ m_v)``; ``m_v ← m_v ∪ m'``) and the walk is
        appended to ``v``'s queue.  Walks over the cap are retired without
        touching the node's state, exactly as in the pseudocode, which skips
        them entirely.

        All arrivals of one call are synchronous: each walk merges with the
        node's start-of-delivery knowledge, and the node accumulates the union
        of every arriving payload.  The destination rows are gathered (copied)
        before any write, then the payload pool is scattered into storage via
        :meth:`~repro.engine.knowledge.KnowledgeStorage.scatter_rows` — the
        same snapshot-read / live-write discipline on every storage layout.
        """
        walk_ids = self._transit_ids
        dests = self._transit_dests
        self._transit_ids = _EMPTY
        self._transit_dests = _EMPTY
        if walk_ids.size == 0:
            return
        if self._forward_steps > self.move_cap:
            # A walk's move count is bounded by the number of forwarding
            # steps performed so far, so the cap check is skipped entirely
            # while it cannot possibly trigger.
            over = self.moves[walk_ids] > self.move_cap
            if over.any():
                self.retired.extend(walk_ids[over].tolist())
                walk_ids = walk_ids[~over]
                dests = dests[~over]
        if walk_ids.size == 0:
            return
        # Gather (copy) the destination rows first: the start-of-delivery
        # snapshot every arriving walk merges with.  Payload rows are
        # disjoint storage from the knowledge state, so the node-side union
        # is one order-independent scatter (OR is commutative over duplicate
        # destinations), and the walk-side union reads the pre-delivery rows.
        node_rows = knowledge.rows(dests)
        knowledge.scatter_rows(self.payloads, walk_ids, dests)
        self.payloads[walk_ids] |= node_rows
        # Enqueue in arrival order (FIFO per destination).
        self._host[walk_ids] = dests
        self._seq[walk_ids] = self._next_seq + np.arange(walk_ids.size)
        self._next_seq += int(walk_ids.size)
        self._queued += int(walk_ids.size)

    def forward_step(
        self,
        graph: Adjacency,
        rng: np.random.Generator,
        ledger: TransmissionLedger,
        *,
        alive: Optional[np.ndarray] = None,
    ) -> int:
        """Every node holding walks forwards the oldest one to a random neighbour.

        Returns the number of walks forwarded.  Each forward costs the hosting
        node one channel open and one push packet.
        """
        self._forward_steps += 1
        queued = np.flatnonzero(self._host >= 0)
        if queued.size == 0:
            return 0
        # Oldest queued walk per host: one sort of all queued walks by
        # (host, FIFO sequence); the first entry of every host segment is
        # both the host list (sorted, unique) and its head walk.
        order = np.lexsort((self._seq[queued], self._host[queued]))
        q_sorted = queued[order]
        h_sorted = self._host[q_sorted]
        firsts = np.empty(h_sorted.size, dtype=bool)
        firsts[0] = True
        np.not_equal(h_sorted[1:], h_sorted[:-1], out=firsts[1:])
        head_walks = q_sorted[firsts]
        hosts = h_sorted[firsts]
        if alive is not None:
            healthy = alive[hosts]
            hosts = hosts[healthy]
            head_walks = head_walks[healthy]
            if hosts.size == 0:
                return 0
        destinations = graph.sample_neighbors(hosts, rng)
        valid = destinations >= 0
        if not valid.all():
            hosts = hosts[valid]
            destinations = destinations[valid]
            head_walks = head_walks[valid]
            if hosts.size == 0:
                return 0
        popped = head_walks
        self._host[popped] = -1
        self._queued -= int(popped.size)
        if alive is not None:
            dead = ~alive[destinations]
        else:
            dead = np.zeros(hosts.size, dtype=bool)
        if dead.any():
            # The channel is opened but the failed callee never stores the
            # walk: the walk is lost (crash semantics).
            self.retired.extend(popped[dead].tolist())
        live_walks = popped[~dead]
        self.moves[live_walks] += 1
        self.total_moves += int(live_walks.size)
        self.send_many(live_walks, destinations[~dead])
        ledger.record_opens(hosts)
        ledger.record_pushes(hosts)
        return int(hosts.size)


def start_walks(
    graph: Adjacency,
    knowledge: KnowledgeStorage,
    probability: float,
    move_cap: int,
    rng: np.random.Generator,
    ledger: TransmissionLedger,
    *,
    alive: Optional[np.ndarray] = None,
) -> WalkPool:
    """Start the round's random walks.

    Every (alive) node flips a coin and with ``probability`` starts a walk by
    pushing its combined message to a uniformly random neighbour.  The newly
    created walks are placed in transit in the returned :class:`WalkPool`;
    callers should invoke :meth:`WalkPool.deliver` at the beginning of the
    first forwarding step.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    nodes = np.arange(graph.n, dtype=np.int64)
    if alive is not None:
        nodes = nodes[alive[nodes]]
    coins = rng.random(nodes.size) < probability
    starters = nodes[coins]
    destinations = graph.sample_neighbors(starters, rng)
    ok = destinations >= 0
    if alive is not None and starters.size:
        ok &= np.where(destinations >= 0, alive[np.clip(destinations, 0, None)], False)
    # The channel open and push happen regardless of whether the callee is
    # healthy; only delivery depends on it.
    if starters.size:
        ledger.record_opens(starters)
        ledger.record_pushes(starters)
    starters_ok = starters[ok]
    destinations_ok = destinations[ok]
    payloads = knowledge.rows(starters_ok)
    pool = WalkPool(payloads, move_cap)
    pool.send_many(np.arange(destinations_ok.size, dtype=np.int64), destinations_ok)
    return pool
