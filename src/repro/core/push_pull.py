"""Algorithm 4 — the plain push–pull gossiping baseline.

Every node opens a channel to a uniformly random neighbour in every step and
performs a ``pushpull`` operation: the caller pushes its combined message over
the channel and the callee answers with its own combined message.  The
procedure repeats until every node knows every original message.  This is the
baseline against which the paper's Figure 1 compares the tuned algorithms: its
per-node cost grows with the number of rounds, i.e. ``Theta(log n)``.

Each synchronous round is one
:meth:`~repro.engine.knowledge.KnowledgeMatrix.apply_exchange` batch plus an
incremental :class:`~repro.core.completion.CompletionTracker` update.  Both
dispatch through the active kernel backend (:mod:`repro.engine.backends`), so
the driver is backend-agnostic and its trajectories are bit-identical across
the ``numpy``, ``c`` and ``c-threads`` backends at every thread count
(``REPRO_KERNEL_BACKEND`` / ``REPRO_KERNEL_THREADS``; see
``docs/parallelism.md``).

The protocol also runs under the **event clock**
(:mod:`repro.engine.event_clock`): nodes act on independent Poisson wakeups,
greedily batched into non-colliding groups that replay through the same
``apply_exchange`` kernels — one ``pushpull`` per wakeup instead of one per
node per round.  Event-clock runs optionally take a
:class:`~repro.engine.event_clock.ChurnPlan` of seeded join/leave edits
applied at forced group boundaries (nodes keep their knowledge while away;
completion targets the finally-alive membership).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..engine.channels import open_channels
from ..engine.event_clock import ChurnPlan, EventScheduler
from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.knowledge import adaptive_knowledge
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState
from ..engine.trace import SpreadingTrace
from ..graphs.adjacency import Adjacency
from .completion import CompletionTracker
from .parameters import PushPullParameters
from .protocol import GossipProtocol
from .results import GossipResult

__all__ = ["PushPullGossip"]


class PushPullGossip(GossipProtocol):
    """Plain push–pull gossiping (Algorithm 4 in the paper's appendix).

    Parameters
    ----------
    params:
        Safety limits; the default allows ``8 log n`` rounds which is far more
        than the protocol ever needs on the connected graphs we consider.
    """

    name = "push-pull"
    supported_clocks = ("sync", "event")

    def __init__(self, params: Optional[PushPullParameters] = None) -> None:
        self.params = params or PushPullParameters()

    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
        clock: Optional[str] = None,
        churn: Optional[ChurnPlan] = None,
    ) -> GossipResult:
        clock = self._resolve_clock(clock if clock is not None else self.params.clock)
        generator = self._prepare(graph, rng)
        if not failures.is_empty() and failures.inject_at != "start":
            raise ValueError(
                "PushPullGossip only supports failures injected at 'start'"
            )
        if churn is not None and clock != "event":
            raise ValueError("churn plans require the event clock")
        if clock == "event":
            return self._run_event(
                graph,
                generator,
                failures=failures,
                record_trace=record_trace,
                churn=churn,
            )
        alive = failures.alive_mask(graph.n)
        alive_nodes = np.flatnonzero(alive)

        # Frontier (sparsity-aware) knowledge: early rounds scatter only the
        # words in flight; rows ratchet onto the dense kernels as they fill.
        knowledge = adaptive_knowledge(graph.n)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase("push-pull")

        max_rounds = self.params.max_rounds(graph.n)
        tracker = CompletionTracker(knowledge, alive_nodes)
        completed = False
        # Upper bound on any row's popcount, maintained per round: a receiver
        # ends a round with at most its own row, one pull answer and one push
        # per in-edge (``2 + indegree`` source rows).  While the bound stays
        # below the mask popcount no row can be saturated, so the tracker's
        # early-round full recounts (and the kernel's fused deficit counting)
        # are provably dead work and are skipped — bit-identical, because the
        # saturation filter sees an all-false complete mask either way.
        mask_bits = int(np.bitwise_count(tracker.mask).sum())
        known_bound = 1 if tracker.incomplete and not tracker.complete_rows.any() else mask_bits
        for round_index in range(max_rounds):
            channels = open_channels(graph, generator, participants=alive_nodes, alive=alive)
            # Every alive node opens a channel even if the callee turns out to
            # be failed; count the open per participant.
            ledger.record_opens(alive_nodes)

            if known_bound < mask_bits:
                indeg = np.bincount(channels.targets, minlength=graph.n).max()
                known_bound = min(known_bound * (2 + int(indeg)), mask_bits)
            track = known_bound >= mask_bits

            # One synchronous exchange: push (caller -> callee) and pull
            # (callee -> caller) both read start-of-step state inside the
            # kernel, which also drops transmissions into saturated rows and
            # short-circuits those from saturated senders (bit-exact), so the
            # per-round cost shrinks with the number of incomplete nodes.
            touched, promoted = knowledge.apply_exchange(
                channels.callers,
                channels.targets,
                complete=tracker.complete_rows if track else None,
                complete_row=tracker.mask if track else None,
                deficit_mask=tracker.mask if track else None,
                deficits_out=tracker.deficits if track else None,
            )
            ledger.record_pushes(channels.callers)
            ledger.record_pulls(channels.targets)

            ledger.end_round()
            trace.record(round_index, "push-pull", knowledge)

            if track:
                if knowledge.fused_deficits:
                    # The swap-form kernel already recounted every row it
                    # changed straight into the tracker's deficits.
                    tracker.refresh()
                else:
                    tracker.update(touched)
                    tracker.mark_promoted(promoted)
                if tracker.is_complete():
                    completed = True
                    break

        ledger.end_phase()
        return GossipResult(
            protocol=self.name,
            n_nodes=graph.n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=knowledge,
            trace=trace if record_trace else None,
            extras={"clock": "sync", "alive_nodes": int(alive_nodes.size)},
        )

    # ------------------------------------------------------------------ #
    # Event clock
    # ------------------------------------------------------------------ #
    def _run_event(
        self,
        graph: Adjacency,
        generator: np.random.Generator,
        *,
        failures: FailurePlan,
        record_trace: bool,
        churn: Optional[ChurnPlan],
    ) -> GossipResult:
        """Continuous-time run: Poisson wakeups in non-colliding batches.

        Each emitted :class:`~repro.engine.event_clock.EventGroup` replays
        through one ``apply_exchange`` call — bit-identical to applying its
        wakeups one at a time, because all endpoints within a group are
        pairwise distinct.  One ledger round is one non-empty group, so
        ``rounds`` counts event groups here.

        Without churn the saturation filter runs exactly as in the
        synchronous driver.  With churn it is disabled: a node that leaves
        for good may already have spread its message, so live rows are no
        longer guaranteed subsets of the completion row and the filter's
        promotion shortcut would not be bit-exact.  Completion then targets
        the finally-alive membership (knowledge survives absences).
        """
        alive = failures.alive_mask(graph.n)
        final_alive = churn.final_alive(alive) if churn is not None else alive
        knowledge = adaptive_knowledge(graph.n)
        ledger = TransmissionLedger(graph.n)
        trace = SpreadingTrace(enabled=record_trace)
        ledger.begin_phase("push-pull")

        tracker = CompletionTracker(knowledge, np.flatnonzero(final_alive))
        use_filter = churn is None
        scheduler = EventScheduler(
            graph,
            generator,
            max_events=self.params.max_events(graph.n),
            alive=alive,
            breaks=churn.breaks if churn is not None else None,
        )
        churn_ptr = 0
        completed = False
        group_index = 0
        for group in scheduler.groups():
            if group.openers.size:
                ledger.record_opens(group.openers)
            if group.size:
                # Fused deficit counting is safe even with churn (the count
                # ``popcount(mask & ~row)`` is exact regardless of the subset
                # invariant; ``refresh`` clamps not-finally-alive rows), so it
                # is passed unconditionally — unlike the saturation filter.
                touched, promoted = knowledge.apply_exchange(
                    group.callers,
                    group.targets,
                    complete=tracker.complete_rows if use_filter else None,
                    complete_row=tracker.mask if use_filter else None,
                    deficit_mask=tracker.mask,
                    deficits_out=tracker.deficits,
                )
                ledger.record_pushes(group.callers)
                ledger.record_pulls(group.targets)
                ledger.end_round()
                trace.record(group_index, "push-pull", knowledge)
                group_index += 1
                if knowledge.fused_deficits:
                    tracker.refresh()
                else:
                    tracker.update(touched)
                    tracker.mark_promoted(promoted)
                if tracker.is_complete():
                    completed = True
                    break
            if churn is not None:
                while (
                    churn_ptr < len(churn)
                    and churn.indices[churn_ptr] <= scheduler.events
                ):
                    scheduler.set_alive(
                        int(churn.nodes[churn_ptr]), bool(churn.joins[churn_ptr])
                    )
                    churn_ptr += 1

        ledger.end_phase()
        extras = {
            "clock": "event",
            "events": scheduler.events,
            "sim_time": scheduler.time,
            "alive_nodes": int(final_alive.sum()),
        }
        if churn is not None:
            extras["churn_ops"] = len(churn)
        return GossipResult(
            protocol=self.name,
            n_nodes=graph.n,
            completed=completed,
            rounds=ledger.rounds,
            ledger=ledger,
            knowledge=knowledge,
            trace=trace if record_trace else None,
            extras=extras,
        )
