"""Protocol parameters, including the tuned constants of the paper's Table 1.

Both gossiping algorithms are organised in phases whose lengths are functions
of the network size ``n``.  The analysis sections use generous constants (for
example ``12 log n / log log n`` distribution steps); the empirical section
tunes much smaller constants, listed in Table 1, "The actual constants used in
our simulation".  This module provides both presets as frozen dataclasses so
every experiment states explicitly which schedule it runs, and so ablation
studies can vary individual fields.

All logarithms are base 2, following the paper's convention (footnote 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = [
    "log2",
    "loglog2",
    "FastGossipingSchedule",
    "FastGossipingParameters",
    "MemoryGossipingSchedule",
    "MemoryGossipingParameters",
    "LeaderElectionParameters",
    "PushPullParameters",
    "tuned_fast_gossiping",
    "theory_fast_gossiping",
    "tuned_memory_gossiping",
    "table1_rows",
]


def log2(n: float) -> float:
    """Base-2 logarithm, guarded for tiny inputs."""
    return math.log2(max(float(n), 2.0))


def loglog2(n: float) -> float:
    """``log2(log2(n))``, guarded so it is always at least 1."""
    return max(1.0, math.log2(max(log2(n), 2.0)))


# --------------------------------------------------------------------------- #
# Algorithm 1 — fast-gossiping
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FastGossipingParameters:
    """Tunable constants of Algorithm 1 (fast-gossiping).

    The fields mirror Table 1 of the paper; the concrete per-``n`` schedule is
    obtained with :meth:`resolve`.

    Attributes
    ----------
    distribution_steps_factor:
        Phase I runs ``ceil(distribution_steps_factor * log log n)`` push
        steps under the tuned preset, or
        ``ceil(distribution_steps_factor * log n / log log n)`` under the
        theory preset (controlled by ``distribution_uses_loglog``).
    distribution_uses_loglog:
        Selects between the two Phase I schedules above.
    rounds_factor:
        Phase II runs ``ceil(rounds_factor * log n / log log n)`` rounds.
    walk_probability_factor:
        Each node starts a random walk per round with probability
        ``walk_probability_factor / log n``.
    walk_steps_factor / walk_steps_offset:
        Each round performs ``ceil(walk_steps_factor * log n / log log n +
        walk_steps_offset)`` random-walk forwarding steps.
    walk_move_cap_factor:
        Walks stop being forwarded after ``ceil(walk_move_cap_factor * log n)``
        moves (the ``c_moves`` cap from the paper).
    broadcast_steps_factor:
        Each round ends with ``ceil(broadcast_steps_factor * log log n)``
        local push-broadcast steps by the nodes that hold walks.
    finish_steps_factor:
        Nominal Phase III length, ``ceil(finish_steps_factor * log n /
        log log n)`` steps.  Diagnostics-only since completion checking
        became an O(1)-per-round incremental test: Phase III simply runs
        until gossiping completes (matching the paper, which runs the last
        phase "until the entire graph was informed"), bounded by
        ``max_extra_rounds``.  The resolved value is still reported in
        schedule dumps for comparison against the paper's constants.
    max_extra_rounds:
        Safety bound on the total number of Phase III steps.
    """

    distribution_steps_factor: float = 1.2
    distribution_uses_loglog: bool = True
    rounds_factor: float = 1.0
    walk_probability_factor: float = 1.0
    walk_steps_factor: float = 1.0
    walk_steps_offset: float = 2.0
    walk_move_cap_factor: float = 1.0
    broadcast_steps_factor: float = 0.5
    finish_steps_factor: float = 8.0
    max_extra_rounds: int = 4096

    def resolve(self, n: int) -> "FastGossipingSchedule":
        """Resolve the per-``n`` schedule (number of steps in each phase)."""
        ln = log2(n)
        lln = loglog2(n)
        if self.distribution_uses_loglog:
            distribution_steps = math.ceil(self.distribution_steps_factor * lln)
        else:
            distribution_steps = math.ceil(self.distribution_steps_factor * ln / lln)
        return FastGossipingSchedule(
            n=n,
            distribution_steps=max(1, distribution_steps),
            rounds=max(1, math.ceil(self.rounds_factor * ln / lln)),
            walk_probability=min(1.0, self.walk_probability_factor / ln),
            walk_steps=max(1, math.ceil(self.walk_steps_factor * ln / lln + self.walk_steps_offset)),
            walk_move_cap=max(1, math.ceil(self.walk_move_cap_factor * ln)),
            broadcast_steps=max(1, math.ceil(self.broadcast_steps_factor * lln)),
            finish_steps=max(1, math.ceil(self.finish_steps_factor * ln / lln)),
            max_extra_rounds=self.max_extra_rounds,
        )

    def with_overrides(self, **kwargs) -> "FastGossipingParameters":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class FastGossipingSchedule:
    """Concrete per-``n`` phase lengths of Algorithm 1."""

    n: int
    distribution_steps: int
    rounds: int
    walk_probability: float
    walk_steps: int
    walk_move_cap: int
    broadcast_steps: int
    finish_steps: int
    max_extra_rounds: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used by the Table 1 experiment)."""
        return {
            "n": self.n,
            "phase1_distribution_steps": self.distribution_steps,
            "phase2_rounds": self.rounds,
            "phase2_walk_probability": self.walk_probability,
            "phase2_walk_steps": self.walk_steps,
            "phase2_walk_move_cap": self.walk_move_cap,
            "phase2_broadcast_steps": self.broadcast_steps,
            "phase3_finish_steps": self.finish_steps,
        }


def tuned_fast_gossiping() -> FastGossipingParameters:
    """The constants of Table 1 (simulation-tuned schedule)."""
    return FastGossipingParameters(
        distribution_steps_factor=1.2,
        distribution_uses_loglog=True,
        rounds_factor=1.0,
        walk_probability_factor=1.0,
        walk_steps_factor=1.0,
        walk_steps_offset=2.0,
        broadcast_steps_factor=0.5,
    )


def theory_fast_gossiping() -> FastGossipingParameters:
    """Constants following the analysis section (Algorithm 1 as stated)."""
    return FastGossipingParameters(
        distribution_steps_factor=12.0,
        distribution_uses_loglog=False,
        rounds_factor=4.0,
        walk_probability_factor=2.0,
        walk_steps_factor=2.0,
        walk_steps_offset=0.0,
        broadcast_steps_factor=0.5,
        finish_steps_factor=8.0,
    )


# --------------------------------------------------------------------------- #
# Algorithm 2 — memory model
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MemoryGossipingParameters:
    """Tunable constants of Algorithm 2 (memory-model gossiping).

    Attributes
    ----------
    push_longsteps_factor:
        Phase I builds the tree with ``ceil(push_longsteps_factor * log n)``
        push *steps*, rounded up to a multiple of ``fanout`` (Table 1:
        ``2.0 * log n`` rounded to a multiple of 4).
    pull_longsteps_factor:
        The pull part of Phase I runs ``floor(pull_longsteps_factor *
        log log n)`` long-steps.
    fanout:
        Number of distinct neighbours contacted per long-step (the memory
        size; 4 in the paper).
    broadcast_steps_factor:
        Phase III push steps: ``floor(broadcast_steps_factor * log n)``.
    num_trees:
        Number of independently constructed communication trees (the
        robustness simulation in the paper builds 3).
    run_pull_until_complete:
        Keep running extra pull long-steps until every node holds the
        leader's message (the paper runs the last phase of each algorithm
        "until the entire graph was informed").
    max_extra_longsteps:
        Safety bound on those extra long-steps.
    gather_contacts:
        Which recorded contacts Phase II (and the Phase III replay) uses:
        ``"all"`` re-contacts every neighbour stored during Phase I — the
        literal reading of Algorithm 2, which gives each message several
        disjoint paths to the root; ``"first"`` restricts the structure to the
        contact that first informed each node, i.e. a strict tree — the
        least-redundant interpretation, used by the redundancy ablation.
    """

    push_longsteps_factor: float = 2.0
    pull_longsteps_factor: float = 2.0
    fanout: int = 4
    broadcast_steps_factor: float = 1.0
    num_trees: int = 1
    run_pull_until_complete: bool = True
    max_extra_longsteps: int = 512
    gather_contacts: str = "all"

    def resolve(self, n: int) -> "MemoryGossipingSchedule":
        """Resolve the per-``n`` schedule of Algorithm 2."""
        if self.gather_contacts not in ("all", "first"):
            raise ValueError(
                f"gather_contacts must be 'all' or 'first', got {self.gather_contacts!r}"
            )
        ln = log2(n)
        lln = loglog2(n)
        push_steps = math.ceil(self.push_longsteps_factor * ln)
        remainder = push_steps % self.fanout
        if remainder:
            push_steps += self.fanout - remainder
        return MemoryGossipingSchedule(
            n=n,
            fanout=self.fanout,
            push_longsteps=max(1, push_steps // self.fanout),
            pull_longsteps=max(1, int(self.pull_longsteps_factor * lln)),
            broadcast_steps=max(1, int(self.broadcast_steps_factor * ln)),
            num_trees=self.num_trees,
            run_pull_until_complete=self.run_pull_until_complete,
            max_extra_longsteps=self.max_extra_longsteps,
            gather_contacts=self.gather_contacts,
        )

    def with_overrides(self, **kwargs) -> "MemoryGossipingParameters":
        """Return a copy with the given fields replaced (ablation helper)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class MemoryGossipingSchedule:
    """Concrete per-``n`` phase lengths of Algorithm 2."""

    n: int
    fanout: int
    push_longsteps: int
    pull_longsteps: int
    broadcast_steps: int
    num_trees: int
    run_pull_until_complete: bool
    max_extra_longsteps: int
    gather_contacts: str = "all"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used by the Table 1 experiment)."""
        return {
            "n": self.n,
            "fanout": self.fanout,
            "phase1_push_longsteps": self.push_longsteps,
            "phase1_push_steps": self.push_longsteps * self.fanout,
            "phase1_pull_longsteps": self.pull_longsteps,
            "phase3_broadcast_steps": self.broadcast_steps,
            "num_trees": self.num_trees,
            "gather_contacts": self.gather_contacts,
        }


def tuned_memory_gossiping() -> MemoryGossipingParameters:
    """The constants of Table 1 for Algorithm 2."""
    return MemoryGossipingParameters(
        push_longsteps_factor=2.0,
        pull_longsteps_factor=2.0,
        fanout=4,
        broadcast_steps_factor=1.0,
    )


# --------------------------------------------------------------------------- #
# Algorithm 3 — leader election, and the push–pull baseline
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LeaderElectionParameters:
    """Constants of Algorithm 3 (leader election in the memory model).

    Attributes
    ----------
    candidate_probability_factor:
        A node becomes a possible leader with probability
        ``candidate_probability_factor * log^2 n / n``.
    push_steps_rho:
        Number of push steps is ``log n + push_steps_rho * log log n``.
    pull_steps_rho:
        Number of pull steps is ``pull_steps_rho * log log n``.
    memory_size:
        Number of recently contacted neighbours avoided by ``open-avoid``.
    """

    candidate_probability_factor: float = 1.0
    push_steps_rho: float = 2.0
    pull_steps_rho: float = 2.0
    memory_size: int = 4

    def candidate_probability(self, n: int) -> float:
        """Probability that a node declares itself a possible leader."""
        return min(1.0, self.candidate_probability_factor * log2(n) ** 2 / max(n, 2))

    def push_steps(self, n: int) -> int:
        """Number of push steps for network size ``n``."""
        return max(1, math.ceil(log2(n) + self.push_steps_rho * loglog2(n)))

    def pull_steps(self, n: int) -> int:
        """Number of pull steps for network size ``n``."""
        return max(1, math.ceil(self.pull_steps_rho * loglog2(n)))


@dataclass(frozen=True)
class PushPullParameters:
    """Constants of the plain push–pull baseline (Algorithm 4).

    Attributes
    ----------
    max_rounds_factor:
        Safety limit: the protocol aborts after
        ``ceil(max_rounds_factor * log n)`` rounds even if gossiping has not
        completed (it normally completes well before).  Under the event
        clock the same factor bounds the wakeup budget at
        ``max_rounds(n) * n`` (one synchronous round ≈ ``n`` wakeups).
    clock:
        Default execution clock, ``"sync"`` or ``"event"``
        (:data:`repro.core.protocol.CLOCKS`); an explicit ``run(clock=...)``
        argument overrides it.
    """

    max_rounds_factor: float = 8.0
    clock: str = "sync"

    def max_rounds(self, n: int) -> int:
        """Maximum number of rounds for network size ``n``."""
        return max(4, math.ceil(self.max_rounds_factor * log2(n)))

    def max_events(self, n: int) -> int:
        """Event-clock wakeup budget: ``max_rounds(n)`` rounds' worth."""
        return self.max_rounds(n) * max(1, n)


# --------------------------------------------------------------------------- #
# Table 1 reproduction helper
# --------------------------------------------------------------------------- #
def table1_rows(n: int) -> Dict[str, Dict[str, object]]:
    """Resolve the Table 1 constants for a concrete ``n``.

    Returns a mapping with one entry per algorithm containing the resolved
    phase lengths, mirroring the layout of Table 1 in the paper.
    """
    fast = tuned_fast_gossiping().resolve(n)
    memory = tuned_memory_gossiping().resolve(n)
    return {
        "algorithm1_fast_gossiping": fast.as_dict(),
        "algorithm2_memory_model": memory.as_dict(),
    }
