"""Algorithm 3 — randomized leader election in the memory model.

Each node independently declares itself a *possible leader* with probability
``log^2 n / n`` and starts broadcasting its identifier.  Nodes forward the
smallest identifier they have heard so far using push transmissions with the
``open-avoid`` operation (avoiding the last few contacted neighbours), for
``log n + rho * log log n`` steps, followed by ``rho * log log n`` pull steps.
A node that never hears an identifier smaller than its own becomes the leader;
with high probability exactly the candidate with the globally smallest
identifier survives.

The module also exposes the election result in a small dataclass so the
memory-model gossiping protocol (Algorithm 2) and the robustness experiments
can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..graphs.adjacency import Adjacency
from .node_memory import NodeMemory, open_avoid_one
from .parameters import LeaderElectionParameters

__all__ = ["LeaderElectionResult", "LeaderElection"]


@dataclass
class LeaderElectionResult:
    """Outcome of one leader-election run.

    Attributes
    ----------
    leaders:
        Nodes that consider themselves leaders at the end.  A correct run has
        exactly one entry; the high-probability analysis allows rare runs with
        more.
    candidates:
        Nodes that declared themselves possible leaders.
    rounds:
        Number of synchronous steps used.
    ledger:
        Communication-cost accounting of the election.
    aware_of_leader:
        Boolean mask of nodes that know the winning identifier.
    """

    leaders: np.ndarray
    candidates: np.ndarray
    rounds: int
    ledger: TransmissionLedger
    aware_of_leader: np.ndarray

    @property
    def leader(self) -> int:
        """The elected leader (smallest identifier among self-declared leaders)."""
        if self.leaders.size == 0:
            raise RuntimeError("no node considers itself the leader")
        return int(self.leaders.min())

    @property
    def unique(self) -> bool:
        """Whether exactly one node considers itself the leader."""
        return self.leaders.size == 1

    def messages_per_node(self) -> float:
        """Average packets per node spent on the election."""
        return self.ledger.average_per_node()


class LeaderElection:
    """Randomized leader election with constant-size memory (Algorithm 3).

    Parameters
    ----------
    params:
        Election constants (candidate probability, step counts, memory size).
    active_push_limit:
        Optional cap on the number of push steps a node performs after it
        becomes active.  ``None`` (default) reproduces the pseudocode exactly
        (active nodes push in every remaining step); a small cap reproduces
        the ``O(n log log n)`` transmission bound discussed in the paper by
        letting nodes go quiet a few steps after activation (the cap is reset
        whenever a node learns a strictly smaller identifier, which preserves
        correctness).
    """

    def __init__(
        self,
        params: Optional[LeaderElectionParameters] = None,
        *,
        active_push_limit: Optional[int] = None,
    ) -> None:
        self.params = params or LeaderElectionParameters()
        self.active_push_limit = active_push_limit

    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
    ) -> LeaderElectionResult:
        """Run the election on ``graph`` and return the result."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("leader election requires at least two nodes")
        alive = failures.alive_mask(graph.n)
        if not failures.is_empty() and failures.inject_at != "start":
            raise ValueError("LeaderElection only supports failures injected at 'start'")

        n = graph.n
        params = self.params
        ledger = TransmissionLedger(n)
        ledger.begin_phase("leader-election")

        # Candidate sampling.
        probability = params.candidate_probability(n)
        candidate_mask = (generator.random(n) < probability) & alive
        if not candidate_mask.any():
            # Degenerate case (only relevant for very small n): promote one
            # alive node so the election always terminates with a leader.
            alive_nodes = np.flatnonzero(alive)
            candidate_mask[generator.choice(alive_nodes)] = True
        candidates = np.flatnonzero(candidate_mask)

        # best_id[v]: smallest identifier node v has heard (inf = none).
        best_id = np.full(n, np.inf, dtype=np.float64)
        best_id[candidates] = candidates.astype(np.float64)
        active = candidate_mask.copy()
        push_budget = np.full(n, -1, dtype=np.int64)
        if self.active_push_limit is not None:
            push_budget[candidates] = int(self.active_push_limit)

        memory = NodeMemory(n, params.memory_size)

        rounds = 0
        # ---------------------------- push steps ------------------------- #
        # All senders open their channels in one batched open-avoid pass and
        # the smallest identifier per callee is propagated with a single
        # scatter-min.  A node whose memory blocks every neighbour retries
        # uniformly; only nodes that actually opened a channel are charged an
        # open and a push packet (an isolated node cannot transmit at all).
        for _ in range(params.push_steps(n)):
            senders = np.flatnonzero(active & alive)
            if self.active_push_limit is not None and senders.size:
                senders = senders[push_budget[senders] != 0]
            targets = open_avoid_one(graph, senders, memory, generator)
            opened = targets >= 0
            openers = senders[opened]
            callees = targets[opened]
            new_best = best_id.copy()
            if openers.size:
                ledger.record_opens(openers)
                ledger.record_pushes(openers)
                if self.active_push_limit is not None:
                    push_budget[openers] = np.maximum(push_budget[openers] - 1, 0)
                delivered = alive[callees]  # crashed callees drop the packet
                np.minimum.at(new_best, callees[delivered], best_id[openers[delivered]])
            improved = new_best < best_id
            if self.active_push_limit is not None and improved.any():
                # Learning a strictly smaller identifier refills the budget
                # (this also covers newly activated nodes).
                push_budget[improved] = int(self.active_push_limit)
            active |= improved
            best_id = new_best
            rounds += 1
            ledger.end_round()

        # ---------------------------- pull steps ------------------------- #
        for _ in range(params.pull_steps(n)):
            callers = np.flatnonzero(alive)
            targets = open_avoid_one(graph, callers, memory, generator)
            opened = targets >= 0
            openers = callers[opened]
            callees = targets[opened]
            if openers.size:
                ledger.record_opens(openers)
            answering = alive[callees] & np.isfinite(best_id[callees])
            pullers = callees[answering]
            if pullers.size:
                ledger.record_pulls(pullers)
                receivers = openers[answering]
                best_id[receivers] = np.minimum(
                    best_id[receivers], best_id[pullers]
                )
            rounds += 1
            ledger.end_round()

        ledger.end_phase()
        own_ids = np.arange(n, dtype=np.float64)
        leaders = np.flatnonzero(candidate_mask & (best_id == own_ids) & alive)
        aware = np.isfinite(best_id) & (best_id == float(leaders.min())) if leaders.size else np.zeros(n, dtype=bool)
        return LeaderElectionResult(
            leaders=leaders,
            candidates=candidates,
            rounds=rounds,
            ledger=ledger,
            aware_of_leader=aware,
        )
