"""Algorithm 3 — randomized leader election in the memory model.

Each node independently declares itself a *possible leader* with probability
``log^2 n / n`` and starts broadcasting its identifier.  Nodes forward the
smallest identifier they have heard so far using push transmissions with the
``open-avoid`` operation (avoiding the last few contacted neighbours), for
``log n + rho * log log n`` steps, followed by ``rho * log log n`` pull steps.
A node that never hears an identifier smaller than its own becomes the leader;
with high probability exactly the candidate with the globally smallest
identifier survives.

The module also exposes the election result in a small dataclass so the
memory-model gossiping protocol (Algorithm 2) and the robustness experiments
can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.metrics import TransmissionLedger
from ..engine.rng import RandomState, make_rng
from ..graphs.adjacency import Adjacency
from .parameters import LeaderElectionParameters

__all__ = ["LeaderElectionResult", "LeaderElection"]


@dataclass
class LeaderElectionResult:
    """Outcome of one leader-election run.

    Attributes
    ----------
    leaders:
        Nodes that consider themselves leaders at the end.  A correct run has
        exactly one entry; the high-probability analysis allows rare runs with
        more.
    candidates:
        Nodes that declared themselves possible leaders.
    rounds:
        Number of synchronous steps used.
    ledger:
        Communication-cost accounting of the election.
    aware_of_leader:
        Boolean mask of nodes that know the winning identifier.
    """

    leaders: np.ndarray
    candidates: np.ndarray
    rounds: int
    ledger: TransmissionLedger
    aware_of_leader: np.ndarray

    @property
    def leader(self) -> int:
        """The elected leader (smallest identifier among self-declared leaders)."""
        if self.leaders.size == 0:
            raise RuntimeError("no node considers itself the leader")
        return int(self.leaders.min())

    @property
    def unique(self) -> bool:
        """Whether exactly one node considers itself the leader."""
        return self.leaders.size == 1

    def messages_per_node(self) -> float:
        """Average packets per node spent on the election."""
        return self.ledger.average_per_node()


class LeaderElection:
    """Randomized leader election with constant-size memory (Algorithm 3).

    Parameters
    ----------
    params:
        Election constants (candidate probability, step counts, memory size).
    active_push_limit:
        Optional cap on the number of push steps a node performs after it
        becomes active.  ``None`` (default) reproduces the pseudocode exactly
        (active nodes push in every remaining step); a small cap reproduces
        the ``O(n log log n)`` transmission bound discussed in the paper by
        letting nodes go quiet a few steps after activation (the cap is reset
        whenever a node learns a strictly smaller identifier, which preserves
        correctness).
    """

    def __init__(
        self,
        params: Optional[LeaderElectionParameters] = None,
        *,
        active_push_limit: Optional[int] = None,
    ) -> None:
        self.params = params or LeaderElectionParameters()
        self.active_push_limit = active_push_limit

    # ------------------------------------------------------------------ #
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
    ) -> LeaderElectionResult:
        """Run the election on ``graph`` and return the result."""
        generator = make_rng(rng)
        if graph.n < 2:
            raise ValueError("leader election requires at least two nodes")
        alive = failures.alive_mask(graph.n)
        if not failures.is_empty() and failures.inject_at != "start":
            raise ValueError("LeaderElection only supports failures injected at 'start'")

        n = graph.n
        params = self.params
        ledger = TransmissionLedger(n)
        ledger.begin_phase("leader-election")

        # Candidate sampling.
        probability = params.candidate_probability(n)
        candidate_mask = (generator.random(n) < probability) & alive
        if not candidate_mask.any():
            # Degenerate case (only relevant for very small n): promote one
            # alive node so the election always terminates with a leader.
            alive_nodes = np.flatnonzero(alive)
            candidate_mask[generator.choice(alive_nodes)] = True
        candidates = np.flatnonzero(candidate_mask)

        # best_id[v]: smallest identifier node v has heard (inf = none).
        best_id = np.full(n, np.inf, dtype=np.float64)
        best_id[candidates] = candidates.astype(np.float64)
        active = candidate_mask.copy()
        push_budget = np.full(n, -1, dtype=np.int64)
        if self.active_push_limit is not None:
            push_budget[candidates] = int(self.active_push_limit)

        memory = np.full((n, params.memory_size), -1, dtype=np.int64)
        memory_ptr = np.zeros(n, dtype=np.int64)

        def open_avoid(node: int) -> int:
            """The memory model's open-avoid: a random neighbour not in memory."""
            picked = graph.sample_neighbors_avoiding(
                node, generator, avoid=memory[node][memory[node] >= 0], count=1
            )
            if picked.size == 0:
                picked = graph.sample_neighbors_avoiding(node, generator, count=1)
            if picked.size == 0:
                return -1
            target = int(picked[0])
            memory[node, memory_ptr[node] % params.memory_size] = target
            memory_ptr[node] += 1
            return target

        rounds = 0
        # ---------------------------- push steps ------------------------- #
        for _ in range(params.push_steps(n)):
            senders = np.flatnonzero(active & alive)
            if self.active_push_limit is not None and senders.size:
                senders = senders[push_budget[senders] != 0]
            new_best = best_id.copy()
            opens: List[int] = []
            for v in senders.tolist():
                target = open_avoid(v)
                opens.append(v)
                if target < 0 or not alive[target]:
                    continue
                if best_id[v] < new_best[target]:
                    new_best[target] = best_id[v]
            if opens:
                arr = np.asarray(opens, dtype=np.int64)
                ledger.record_opens(arr)
                ledger.record_pushes(arr)
                if self.active_push_limit is not None:
                    push_budget[arr] = np.maximum(push_budget[arr] - 1, 0)
            improved = new_best < best_id
            if self.active_push_limit is not None and improved.any():
                push_budget[improved] = int(self.active_push_limit)
            newly_active = improved & ~active
            active |= improved
            best_id = new_best
            rounds += 1
            ledger.end_round()
            if self.active_push_limit is not None and newly_active.any():
                push_budget[newly_active] = int(self.active_push_limit)

        # ---------------------------- pull steps ------------------------- #
        for _ in range(params.pull_steps(n)):
            callers = np.flatnonzero(alive)
            opens = []
            pulls = []
            new_best = best_id.copy()
            for v in callers.tolist():
                target = open_avoid(v)
                opens.append(v)
                if target < 0 or not alive[target]:
                    continue
                if np.isfinite(best_id[target]):
                    pulls.append(target)
                    if best_id[target] < new_best[v]:
                        new_best[v] = best_id[target]
            if opens:
                ledger.record_opens(np.asarray(opens, dtype=np.int64))
            if pulls:
                ledger.record_pulls(np.asarray(pulls, dtype=np.int64))
            best_id = new_best
            rounds += 1
            ledger.end_round()

        ledger.end_phase()
        own_ids = np.arange(n, dtype=np.float64)
        leaders = np.flatnonzero(candidate_mask & (best_id == own_ids) & alive)
        aware = np.isfinite(best_id) & (best_id == float(leaders.min())) if leaders.size else np.zeros(n, dtype=bool)
        return LeaderElectionResult(
            leaders=leaders,
            candidates=candidates,
            rounds=rounds,
            ledger=ledger,
            aware_of_leader=aware,
        )
