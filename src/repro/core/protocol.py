"""Abstract base class shared by all gossiping protocols.

A protocol object is a *description* of an algorithm together with its tuned
parameters; it holds no per-run state.  Calling :meth:`GossipProtocol.run`
executes the algorithm on a concrete graph with a concrete randomness source
and optional failure plan, and returns a :class:`~repro.core.results.GossipResult`.
Keeping protocols stateless makes them trivially reusable across parameter
sweeps and process pools.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..engine.failures import NO_FAILURES, FailurePlan
from ..engine.rng import RandomState, make_rng
from ..graphs.adjacency import Adjacency
from .results import GossipResult

__all__ = ["CLOCKS", "GossipProtocol"]

#: Execution clocks a protocol may run under.  ``sync`` is the classic
#: synchronous-rounds random phone call model; ``event`` is the
#: continuous-time model of :mod:`repro.engine.event_clock`, where nodes act
#: on independent Poisson wakeups batched into non-colliding groups.
CLOCKS = ("sync", "event")


class GossipProtocol(abc.ABC):
    """Common interface of all gossiping algorithms in this library."""

    #: Human-readable protocol name used in reports and plots.
    name: str = "gossip"

    #: Clocks this protocol implements; ``run(clock=...)`` rejects others.
    supported_clocks: "tuple[str, ...]" = ("sync",)

    @abc.abstractmethod
    def run(
        self,
        graph: Adjacency,
        *,
        rng: RandomState = None,
        failures: FailurePlan = NO_FAILURES,
        record_trace: bool = False,
    ) -> GossipResult:
        """Execute the protocol on ``graph``.

        Parameters
        ----------
        graph:
            The communication network.
        rng:
            Randomness source (seed, generator, or ``None`` for OS entropy).
        failures:
            Crash-failure plan.  Protocols that do not support a given
            injection point raise ``ValueError`` rather than silently ignoring
            the failures.
        record_trace:
            When true the result carries a per-round
            :class:`~repro.engine.trace.SpreadingTrace`.
        """

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _resolve_clock(self, clock: Optional[str]) -> str:
        """Validate a requested execution clock against :data:`CLOCKS`.

        ``None`` resolves to the protocol's default (the first supported
        clock); unknown or unsupported clocks raise ``ValueError`` rather
        than silently falling back to synchronous rounds.
        """
        if clock is None:
            return self.supported_clocks[0]
        clock = str(clock).lower()
        if clock not in CLOCKS:
            raise ValueError(f"unknown clock {clock!r} (expected one of {CLOCKS})")
        if clock not in self.supported_clocks:
            raise ValueError(
                f"protocol {self.name!r} does not support the {clock!r} clock "
                f"(supported: {self.supported_clocks})"
            )
        return clock

    def _prepare(self, graph: Adjacency, rng: RandomState):
        """Validate the graph and normalise the randomness source."""
        if graph.n < 2:
            raise ValueError("gossiping requires at least two nodes")
        if graph.min_degree() == 0:
            raise ValueError(
                "graph has isolated nodes; gossiping cannot complete "
                "(sample with require_connected=True)"
            )
        return make_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
